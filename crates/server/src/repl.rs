//! The replica side of WAL-shipping replication: a background runner
//! that connects to an upstream, issues [`Command::Replicate`], and
//! tails the stream.
//!
//! ## Exactly-once
//!
//! Every shipped record carries its LSN and its CRC32 frame bytes; the
//! runner verifies the checksum end to end and hands the record to an
//! [`ode_db::replication::Applier`], which skips LSNs it has already
//! applied and refuses LSNs beyond its cursor. Any damage — a frame
//! that fails its checksum, a torn hex blob, an LSN gap, a dead socket
//! — collapses to one recovery action: drop the connection and
//! reconnect with `from_lsn = next unapplied LSN` under the client's
//! capped-jitter backoff. Retransmitted records are duplicates by LSN
//! and are skipped, so faults can reorder *delivery attempts* but never
//! the applied history.
//!
//! ## Cascading trees and re-parenting
//!
//! The upstream need not be the primary: any WAL-backed node re-logs
//! what it applies, so its own durable sink re-ships the stream to
//! *its* replicas, durable-watermark-gated exactly like the primary's.
//! The primary therefore holds O(1) streams regardless of tree width.
//! `sources` is an ordered upstream list: when the current upstream
//! dies, stops heartbeating for more than three intervals, or proves
//! stale, the runner rotates to the next entry under the same
//! capped-jitter backoff (re-parenting).
//!
//! ## Epochs and fork healing
//!
//! The handshake claims the replica's *history epoch* (the highest
//! `EpochBump` its own log holds); the upstream fences a claim whose
//! cursor runs past a bump it hasn't seen — the definition of holding
//! a deposed fork — by answering a `ReplSnapshot` with `fence_lsn`
//! set, upon which the runner discards the shard's entire local
//! history (engine, applier, local WAL, epoch-table entries) and
//! re-replicates it from zero. The same invariant is enforced
//! receiver-side: **an epoch bump is never a duplicate** — a bump
//! arriving *below* the cursor with an epoch above our history proves
//! the records we hold past it are fork debris (the upstream healed
//! underneath us), so the shard resets without waiting to be fenced.
//!
//! ## Catch-up and promotion
//!
//! Applied ops flow through the replica engine's own log sink into its
//! local WAL (when one is configured), so a restarted replica
//! bootstraps from its own directory and resumes the stream from where
//! its local log ends. `Promote` sets the stop flag; the runner drains
//! whatever the socket already holds, aborts transactions the stream
//! left open, and parks — after which the server durably bumps the
//! epoch and accepts writes.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ode_db::durability::archive::decode_archive_bytes;
use ode_db::durability::frame;
use ode_db::replication::{Applier, ApplyError};
use ode_db::{Database, LogOp, Snapshot};
use parking_lot::Mutex;

use crate::client::backoff_delay;
use crate::codec::{LineEvent, LineReader};
use crate::conn::Conn;
use crate::protocol::{hex_decode, Command, Reply, ReplyResult, Request, ServerMsg};
use crate::server::{append_schema, load_schema, Shared};
use crate::spec::{compile_class, ClassSpec};

/// A snapshot message must fit in one line; segments cap op frames far
/// below this.
const MAX_STREAM_LINE: usize = 256 * 1024 * 1024;

/// How often a serving session reports its durable heads to a
/// replication stream. The runner treats an upstream silent for more
/// than three intervals as dead and reconnects (possibly to the next
/// upstream on its list).
pub(crate) const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Where a replica finds its upstream (the primary, or — in a
/// cascading tree — another replica).
#[derive(Clone, Debug)]
pub enum ReplSource {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ReplSource {
    /// Parse a `--replicate-from` operand: a leading `/` or `.` means a
    /// Unix socket path, anything else a TCP address.
    pub fn parse(s: &str) -> ReplSource {
        if s.starts_with('/') || s.starts_with('.') {
            ReplSource::Unix(PathBuf::from(s))
        } else {
            ReplSource::Tcp(s.to_string())
        }
    }

    fn connect(&self) -> std::io::Result<Conn> {
        match self {
            ReplSource::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                let _ = s.set_nodelay(true);
                Ok(Conn::Tcp(s))
            }
            ReplSource::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// A deterministic fault injected into the replication stream — the
/// network analogue of [`ode_db::FaultyIo`]'s disk faults. A plan maps
/// *received `ReplOp` count* (0-based, counted across reconnects) to
/// the fault to inject when that record arrives; tests use it to prove
/// the exactly-once property under damage.
#[derive(Clone, Copy, Debug)]
pub enum StreamFault {
    /// Drop the connection before applying the record (it retransmits
    /// after reconnect).
    Disconnect,
    /// Apply the record twice (the second apply must be a no-op).
    Duplicate,
    /// Flip a byte in the frame so the checksum fails.
    CorruptFrame,
    /// Truncate the frame mid-record, like a torn tail.
    TornFrame,
    /// Drop the connection *and refuse to reconnect* until shutdown or
    /// `Promote` — a network partition with a deterministic fork
    /// point: the replica holds exactly the records received before
    /// this one, however far ahead the upstream runs.
    Partition,
}

/// Shared replica status, read by `Stats` and flipped by `Promote`.
/// LSN cursors are per shard stream; `Stats` reports their sums (a
/// record count across the whole partitioned log).
pub(crate) struct ReplicaState {
    /// Per shard: one past the last applied LSN.
    pub(crate) applied: Vec<AtomicU64>,
    /// Per shard: the upstream's head LSN as last reported (ship or
    /// heartbeat).
    pub(crate) head: Vec<AtomicU64>,
    /// Whether the stream is currently established.
    pub(crate) connected: AtomicBool,
    /// Set by `Promote` before it takes effect.
    pub(crate) promoted: AtomicBool,
    /// Tells the runner to drain and park (promotion).
    pub(crate) stop: AtomicBool,
    /// Set once the runner has parked; `Promote` waits on it.
    pub(crate) finished: AtomicBool,
    /// When the runner last heard *anything* from its upstream —
    /// handshake reply, heartbeat, snapshot, or shipped record.
    last_contact: Mutex<Option<Instant>>,
}

impl ReplicaState {
    pub(crate) fn new(applied: Vec<u64>) -> ReplicaState {
        ReplicaState {
            head: applied.iter().map(|&a| AtomicU64::new(a)).collect(),
            applied: applied.into_iter().map(AtomicU64::new).collect(),
            connected: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            last_contact: Mutex::new(None),
        }
    }

    /// Total records applied across every shard stream.
    pub(crate) fn applied_sum(&self) -> u64 {
        self.applied.iter().map(|a| a.load(Ordering::SeqCst)).sum()
    }

    /// Total reported head across every shard stream.
    pub(crate) fn head_sum(&self) -> u64 {
        self.head
            .iter()
            .zip(&self.applied)
            .map(|(h, a)| h.load(Ordering::SeqCst).max(a.load(Ordering::SeqCst)))
            .sum()
    }

    fn note_contact(&self) {
        *self.last_contact.lock() = Some(Instant::now());
    }

    fn contact_age(&self) -> Option<Duration> {
        self.last_contact.lock().map(|t| t.elapsed())
    }

    /// Milliseconds since the upstream was last heard from, for
    /// `Stats`. `None` before first contact and after promotion (a
    /// primary has no upstream).
    pub(crate) fn heartbeat_age_ms(&self) -> Option<u64> {
        if self.promoted.load(Ordering::SeqCst) {
            return None;
        }
        self.contact_age().map(|d| d.as_millis() as u64)
    }
}

enum Flow {
    /// Keep reading the stream.
    Continue,
    /// Drop the connection and resync from the applier's cursor.
    Resync,
    /// The histories diverged (or shutdown); stop replicating for good.
    Fatal,
}

/// The replica runner thread: connect → handshake → tail, forever,
/// until shutdown or promotion. `sources` is the ordered upstream
/// list; the runner sticks with a working entry and rotates to the
/// next on every failed connect or broken stream.
pub(crate) fn run_replica(
    inner: Arc<Shared>,
    sources: Vec<ReplSource>,
    mut appliers: Vec<Applier>,
    plan: HashMap<u64, StreamFault>,
) {
    let rs = Arc::clone(inner.repl.as_ref().expect("replica state"));
    let mut attempt: u32 = 0;
    let mut ops_seen: u64 = 0;
    let mut src_idx: usize = 0;
    'outer: loop {
        if inner.shutdown.load(Ordering::SeqCst) || rs.stop.load(Ordering::SeqCst) {
            break;
        }
        let source = &sources[src_idx % sources.len()];
        let mut conn = match source.connect() {
            Ok(c) => c,
            Err(_) => {
                // Re-parent: this upstream is unreachable, try the
                // next on the list after one backoff step.
                src_idx += 1;
                if !sleep_backoff(&inner, &rs, &mut attempt) {
                    break 'outer;
                }
                continue;
            }
        };
        let _ = conn.set_blocking();
        let _ = conn.set_read_timeout(Some(inner.config.poll_interval));
        let mut lines = LineReader::new(MAX_STREAM_LINE);
        let req = Request {
            id: 1,
            cmd: Command::Replicate {
                from_lsns: appliers.iter().map(|a| a.next_lsn()).collect(),
                epoch: inner.epochs.history_epoch(),
            },
        };
        let handshake = serde_json::to_string(&req).expect("request encodes") + "\n";
        if conn.write_all(handshake.as_bytes()).is_err() {
            src_idx += 1;
            if !sleep_backoff(&inner, &rs, &mut attempt) {
                break 'outer;
            }
            continue;
        }
        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                break 'outer;
            }
            match lines.read_event(&mut conn) {
                Ok(LineEvent::Line(line)) => {
                    let Ok(msg) = serde_json::from_str::<ServerMsg>(&line) else {
                        break;
                    };
                    match handle_msg(
                        &inner,
                        &rs,
                        &mut appliers,
                        &plan,
                        &mut ops_seen,
                        &mut attempt,
                        msg,
                    ) {
                        Flow::Continue => {}
                        Flow::Resync => break,
                        Flow::Fatal => break 'outer,
                    }
                }
                // A tick means the socket has nothing buffered: if a
                // promotion is pending, the stream is drained.
                Ok(LineEvent::Tick) => {
                    if rs.stop.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                    // Heartbeat staleness: a wedged upstream (half-open
                    // TCP, stalled flusher) goes silent long before the
                    // socket errors. Drop the link proactively — the
                    // reconnect may land on the next upstream.
                    if rs.connected.load(Ordering::SeqCst)
                        && rs
                            .contact_age()
                            .is_some_and(|age| age > 3 * HEARTBEAT_INTERVAL)
                    {
                        break;
                    }
                }
                Ok(LineEvent::Overlong) | Ok(LineEvent::Eof) | Err(_) => break,
            }
        }
        rs.connected.store(false, Ordering::SeqCst);
        conn.shutdown_both();
        // A broken or stale stream also rotates: if the upstream is
        // merely restarting we come back to it one backoff later.
        src_idx += 1;
        if !sleep_backoff(&inner, &rs, &mut attempt) {
            break 'outer;
        }
    }
    rs.connected.store(false, Ordering::SeqCst);
    // Transactions the stream left open will never see their commits;
    // release their locks before the server (if promoted) takes writes.
    for (s, applier) in appliers.iter_mut().enumerate() {
        inner.db.shard(s).with(|db| applier.abort_open(db));
    }
    rs.finished.store(true, Ordering::SeqCst);
}

/// Sleep one backoff step, polling for shutdown/stop. Returns `false`
/// when the runner should park instead of retrying.
fn sleep_backoff(inner: &Shared, rs: &ReplicaState, attempt: &mut u32) -> bool {
    *attempt += 1;
    let d = backoff_delay(
        *attempt,
        Duration::from_millis(10),
        Duration::from_millis(500),
        0xde13,
    );
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        if inner.shutdown.load(Ordering::SeqCst) || rs.stop.load(Ordering::SeqCst) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    !(inner.shutdown.load(Ordering::SeqCst) || rs.stop.load(Ordering::SeqCst))
}

fn handle_msg(
    inner: &Arc<Shared>,
    rs: &ReplicaState,
    appliers: &mut [Applier],
    plan: &HashMap<u64, StreamFault>,
    ops_seen: &mut u64,
    attempt: &mut u32,
    msg: ServerMsg,
) -> Flow {
    match msg {
        ServerMsg::Reply {
            result: ReplyResult::Ok(Reply::Replicating { epoch, .. }),
            ..
        } => {
            if epoch < inner.epochs.history_epoch() {
                // The upstream's history is behind ours; following it
                // would rewind. Rotate to the next upstream.
                inner
                    .epochs
                    .stale_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Flow::Resync;
            }
            rs.note_contact();
            rs.connected.store(true, Ordering::SeqCst);
            *attempt = 0;
            Flow::Continue
        }
        ServerMsg::Reply {
            result: ReplyResult::Err(_),
            ..
        } => Flow::Resync,
        ServerMsg::Reply { .. } | ServerMsg::Firing(_) | ServerMsg::Rows { .. } => Flow::Continue,
        ServerMsg::ReplHeartbeat { shard, head, epoch } => {
            rs.note_contact();
            let Some(h) = rs.head.get(shard as usize) else {
                return Flow::Fatal;
            };
            h.store(head, Ordering::SeqCst);
            let mine = inner.epochs.history_epoch();
            if epoch > mine {
                // A newer primary exists up the tree. Latch the
                // observation (deposing any local write authority);
                // the bump record itself arrives in-band and clears
                // the latch by raising our history.
                if inner.epochs.observe(epoch).is_err() {
                    return Flow::Fatal;
                }
                Flow::Continue
            } else if epoch < mine {
                // A heartbeat from a deposed lineage: stop following.
                inner
                    .epochs
                    .stale_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Flow::Resync
            } else {
                Flow::Continue
            }
        }
        ServerMsg::ReplSchema(spec) => {
            rs.note_contact();
            let flow = define_spec(inner, &spec);
            // Cascade: re-ship the class to our own downstream
            // replicas (idempotent at the receiver) before any op
            // referencing it can flow through our durable sink —
            // mirroring the primary's DefineClass ordering.
            if matches!(flow, Flow::Continue) {
                if let Some(ws) = &inner.wal {
                    for s in 0..ws.wal.shard_count() {
                        ws.wal.wal(s).frozen(|_| {
                            for rtx in ws.repl_subs[s].lock().values() {
                                let _ = rtx.send(ServerMsg::ReplSchema(spec.clone()));
                            }
                        });
                    }
                }
            }
            flow
        }
        ServerMsg::ReplSnapshot {
            shard,
            lsn,
            schema,
            snapshot,
            epoch: _,
            fence_lsn,
        } => {
            rs.note_contact();
            let s = shard as usize;
            if s >= appliers.len() {
                return Flow::Fatal;
            }
            for spec in &schema {
                if let Flow::Fatal = define_spec(inner, spec) {
                    return Flow::Fatal;
                }
            }
            if fence_lsn.is_some() {
                // The upstream proved our cursor runs past an epoch
                // bump we never applied: everything this shard holds
                // beyond the fence is debris from a deposed lineage.
                // Discard the shard wholesale and re-replicate from
                // zero — the records up to the fence are re-shipped
                // identically, the fork's tail is not.
                return reset_shard(inner, rs, appliers, s);
            }
            if lsn <= appliers[s].next_lsn() {
                // Pure log catch-up: this shard's stream continues from
                // where the replica already is.
                return Flow::Continue;
            }
            // Snapshot jump: the upstream no longer retains this
            // shard's records between our cursor and `lsn`. Rebuild
            // *that shard's* engine from the shipped snapshot
            // (`restore` needs an empty store); the other shards'
            // streams are negotiated independently and are not
            // disturbed.
            let Some(json) = snapshot else {
                return Flow::Resync;
            };
            let Ok(snap) = Snapshot::from_json(&json) else {
                return Flow::Fatal;
            };
            let applier = &mut appliers[s];
            let rebuilt = inner.db.shard(s).with(|db| -> Result<Applier, String> {
                applier.abort_open(db);
                let mut fresh = Database::new();
                for spec in &schema {
                    let def = compile_class(spec).map_err(|e| e.to_string())?;
                    fresh.define_class(def).map_err(|e| e.to_string())?;
                }
                fresh.restore(&snap).map_err(|e| e.to_string())?;
                fresh.take_output();
                fresh.set_firing_sink(inner.firing_sinks.get(s).cloned());
                fresh.set_log_sink(inner.log_sinks.get(s).cloned());
                fresh.set_event_tap(inner.event_taps.get(s).cloned());
                let next = Applier::resume(&fresh, lsn);
                *db = fresh;
                Ok(next)
            });
            match rebuilt {
                Ok(mut next) => {
                    if let Some(ws) = &inner.wal {
                        // Persist the jump so a restart resumes this
                        // shard from `lsn` instead of a stale local
                        // head.
                        let _ = ws.wal.wal(s).checkpoint_at(&snap, lsn);
                    }
                    // The jump carried us across any bumps in the
                    // skipped range; adopt the node's fencing floor so
                    // the fresh cursor doesn't accept stale stamps.
                    next.set_epoch(inner.epochs.history_epoch());
                    *applier = next;
                    rs.applied[s].store(lsn, Ordering::SeqCst);
                    Flow::Continue
                }
                Err(_) => Flow::Fatal,
            }
        }
        ServerMsg::ReplOp {
            shard,
            lsn,
            head,
            frame,
            epoch,
        } => {
            rs.note_contact();
            let s = shard as usize;
            if s >= appliers.len() {
                return Flow::Fatal;
            }
            rs.head[s].store(head, Ordering::SeqCst);
            if epoch < inner.epochs.history_epoch() {
                // A frame stamped from a deposed lineage; refuse it
                // before it touches the engine and re-negotiate.
                inner
                    .epochs
                    .stale_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Flow::Resync;
            }
            let fault = plan.get(ops_seen).copied();
            *ops_seen += 1;
            if let Some(StreamFault::Disconnect) = fault {
                return Flow::Resync;
            }
            if let Some(StreamFault::Partition) = fault {
                // A simulated network partition: drop the link and
                // refuse to reconnect until shutdown or promotion.
                // The record itself is never applied — it is the
                // first write the partition loses, pinning the fork
                // point exactly.
                rs.connected.store(false, Ordering::SeqCst);
                loop {
                    if inner.shutdown.load(Ordering::SeqCst) || rs.stop.load(Ordering::SeqCst) {
                        return Flow::Fatal;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            let Some(mut bytes) = hex_decode(&frame) else {
                return Flow::Resync;
            };
            match fault {
                Some(StreamFault::CorruptFrame) => {
                    if let Some(b) = bytes.last_mut() {
                        *b ^= 0xFF;
                    }
                }
                Some(StreamFault::TornFrame) => {
                    bytes.truncate(bytes.len().saturating_sub(3));
                }
                _ => {}
            }
            // End-to-end integrity: the frame must decode to exactly
            // one clean record, or the link resyncs.
            let Ok((payloads, tail)) = frame::decode_all(&bytes) else {
                return Flow::Resync;
            };
            if tail != frame::Tail::Clean || payloads.len() != 1 {
                return Flow::Resync;
            }
            let Ok(text) = std::str::from_utf8(&payloads[0]) else {
                return Flow::Fatal;
            };
            let Ok(op) = LogOp::from_json_line(text) else {
                return Flow::Fatal;
            };
            // Receiver-side fork detection: an epoch bump is never a
            // duplicate. One landing below our cursor with an epoch
            // above our history proves the records we hold past it
            // belong to a deposed lineage (the upstream healed or was
            // replaced underneath us while our cursor let its rebuilt
            // records duplicate-skip by). Discard the shard.
            if let LogOp::EpochBump { epoch: bump } = &op {
                if *bump > inner.epochs.history_epoch() && lsn < appliers[s].next_lsn() {
                    inner
                        .epochs
                        .stale_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    return reset_shard(inner, rs, appliers, s);
                }
            }
            let applies = if matches!(fault, Some(StreamFault::Duplicate)) {
                2
            } else {
                1
            };
            let applier = &mut appliers[s];
            let fresh = lsn == applier.next_lsn();
            for _ in 0..applies {
                match inner.db.shard(s).with(|db| applier.apply(db, lsn, &op)) {
                    Ok(_) => {}
                    Err(ApplyError::Gap { .. }) => return Flow::Resync,
                    Err(_) => return Flow::Fatal,
                }
            }
            rs.applied[s].store(applier.next_lsn(), Ordering::SeqCst);
            if fresh {
                if let LogOp::EpochBump { epoch: bump } = &op {
                    // The engine no-ops a bump, so the log sink never
                    // re-logs it. Append it by hand to keep the local
                    // log record-for-record identical with the
                    // upstream's — the downstream tree depends on
                    // that 1:1 LSN alignment — then record the
                    // durable start in the epoch table.
                    if let Some(ws) = &inner.wal {
                        match ws.wal.wal(s).append(&op) {
                            Ok(got) if got == lsn => {}
                            _ => return Flow::Fatal,
                        }
                    }
                    if inner.epochs.note_start(*bump, shard, lsn).is_err() {
                        return Flow::Fatal;
                    }
                }
            }
            Flow::Continue
        }
        ServerMsg::ReplArchive {
            shard,
            base_lsn,
            records,
            data,
            epoch,
        } => {
            rs.note_contact();
            let s = shard as usize;
            if s >= appliers.len() {
                return Flow::Fatal;
            }
            if epoch < inner.epochs.history_epoch() {
                inner
                    .epochs
                    .stale_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Flow::Resync;
            }
            let Some(bytes) = hex_decode(&data) else {
                return Flow::Resync;
            };
            // Full end-to-end validation before anything touches the
            // engine: archive frame CRCs, decompression, the recorded
            // raw length/CRC, and the record count must all line up,
            // or the link resyncs (the retransmit re-negotiates).
            let Ok(seg) = decode_archive_bytes(&bytes) else {
                return Flow::Resync;
            };
            if seg.meta.base_lsn != base_lsn || seg.meta.records != records {
                return Flow::Resync;
            }
            for (i, payload) in seg.records.iter().enumerate() {
                let lsn = base_lsn + i as u64;
                let Ok(text) = std::str::from_utf8(payload) else {
                    return Flow::Fatal;
                };
                let Ok(op) = LogOp::from_json_line(text) else {
                    return Flow::Fatal;
                };
                match apply_replayed(inner, rs, appliers, s, shard, lsn, &op) {
                    Flow::Continue => {}
                    other => return other,
                }
            }
            Flow::Continue
        }
    }
}

/// Apply one record replayed out of a shipped archive — the same tail
/// as a live `ReplOp`: duplicate LSNs skip, a gap resyncs, and a fresh
/// epoch bump is re-appended to the local log (the engine no-ops it,
/// so the log sink never would) and recorded in the epoch table.
fn apply_replayed(
    inner: &Arc<Shared>,
    rs: &ReplicaState,
    appliers: &mut [Applier],
    s: usize,
    shard: u64,
    lsn: u64,
    op: &LogOp,
) -> Flow {
    if let LogOp::EpochBump { epoch: bump } = op {
        if *bump > inner.epochs.history_epoch() && lsn < appliers[s].next_lsn() {
            inner
                .epochs
                .stale_rejections
                .fetch_add(1, Ordering::Relaxed);
            return reset_shard(inner, rs, appliers, s);
        }
    }
    let applier = &mut appliers[s];
    let fresh = lsn == applier.next_lsn();
    match inner.db.shard(s).with(|db| applier.apply(db, lsn, op)) {
        Ok(_) => {}
        Err(ApplyError::Gap { .. }) => return Flow::Resync,
        Err(_) => return Flow::Fatal,
    }
    rs.applied[s].store(applier.next_lsn(), Ordering::SeqCst);
    if fresh {
        if let LogOp::EpochBump { epoch: bump } = op {
            if let Some(ws) = &inner.wal {
                match ws.wal.wal(s).append(op) {
                    Ok(got) if got == lsn => {}
                    _ => return Flow::Fatal,
                }
            }
            if inner.epochs.note_start(*bump, shard, lsn).is_err() {
                return Flow::Fatal;
            }
        }
    }
    Flow::Continue
}

/// Fork healing: discard shard `s`'s entire local history — engine,
/// applier, local WAL (durable watermark rewound to zero), and
/// epoch-table entries — so the next connect re-replicates the shard
/// from LSN 0. Classes survive: they are re-defined from the local
/// schema log (shared across shards), and the upstream re-ships them
/// on reconnect anyway.
fn reset_shard(inner: &Arc<Shared>, rs: &ReplicaState, appliers: &mut [Applier], s: usize) -> Flow {
    let mut specs: Vec<ClassSpec> = Vec::new();
    if let Some(ws) = &inner.wal {
        match load_schema(&ws.io, &ws.schema_path) {
            Ok(loaded) => specs = loaded,
            Err(_) => return Flow::Fatal,
        }
    }
    let applier = &mut appliers[s];
    let rebuilt = inner.db.shard(s).with(|db| -> Result<(), String> {
        applier.abort_open(db);
        let mut fresh = Database::new();
        for spec in &specs {
            let def = compile_class(spec).map_err(|e| e.to_string())?;
            fresh.define_class(def).map_err(|e| e.to_string())?;
        }
        fresh.take_output();
        fresh.set_firing_sink(inner.firing_sinks.get(s).cloned());
        fresh.set_log_sink(inner.log_sinks.get(s).cloned());
        fresh.set_event_tap(inner.event_taps.get(s).cloned());
        *db = fresh;
        Ok(())
    });
    if rebuilt.is_err() {
        return Flow::Fatal;
    }
    *applier = Applier::new();
    if let Some(ws) = &inner.wal {
        let empty = Database::new();
        let Ok(snap) = empty.snapshot() else {
            return Flow::Fatal;
        };
        if ws.wal.wal(s).reset_to(&snap, 0).is_err() {
            return Flow::Fatal;
        }
    }
    if inner.epochs.note_reset(s as u64).is_err() {
        return Flow::Fatal;
    }
    rs.applied[s].store(0, Ordering::SeqCst);
    rs.head[s].store(0, Ordering::SeqCst);
    Flow::Resync
}

/// Define a shipped class on every shard engine (classes exist on all
/// shards in lockstep) if this replica doesn't have it yet, and record
/// it in the local `schema.wal` so a restart recovers it before the op
/// logs replay.
fn define_spec(inner: &Arc<Shared>, spec: &ClassSpec) -> Flow {
    let Ok(def) = compile_class(spec) else {
        return Flow::Fatal;
    };
    let mut fresh = false;
    for shard in inner.db.shards() {
        let flow = shard.with(|db| {
            match db.define_class(def.clone()) {
                Ok(_) => {
                    fresh = true;
                    Flow::Continue
                }
                // Already defined (schema catch-up re-ships everything).
                Err(ode_db::OdeError::ClassExists(_)) => Flow::Continue,
                Err(_) => Flow::Fatal,
            }
        });
        if let Flow::Fatal = flow {
            return Flow::Fatal;
        }
    }
    if fresh {
        if let Some(ws) = &inner.wal {
            let _ = append_schema(&ws.io, &ws.schema_path, spec);
        }
    }
    Flow::Continue
}
