//! `ode-server` — a wire-protocol network front end for the active
//! object-oriented database, with live trigger subscriptions.
//!
//! The server speaks newline-delimited JSON over TCP and Unix-domain
//! sockets, one session (and one optional open transaction) per
//! connection, served by a poll-driven [`reactor`] — one event-loop
//! thread owning every socket plus a worker pool — over a shared
//! [`ode_db::SharedDatabase`]. Classes — including their trigger
//! events, written in the paper's §3 composite-event syntax — are
//! defined over the wire from a declarative [`spec::ClassSpec`].
//! Sessions that `subscribe` receive a push notification for every
//! trigger firing in the database, produced by the engine's firing
//! sink ([`ode_db::FiringSink`]) and fanned out without blocking the
//! engine.
//!
//! See `DESIGN.md` ("The network front end") for the protocol grammar
//! and session model, and `examples/ode_server.rs` /
//! `examples/ode_client.rs` for a runnable pair.

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod conn;
pub mod protocol;
pub mod reactor;
pub mod repl;
pub mod server;
pub mod spec;

pub use client::{backoff_delay, Client, ClientError, QueryOutcome, QuerySpec};
pub use protocol::{
    CapturedEvent, Command, Firing, Reply, ReplyResult, Request, ServerMsg, WireError, WireRow,
    WireStats,
};
pub use repl::{ReplSource, StreamFault};
pub use server::{load_schema, Server, ServerBuilder, ServerConfig};
pub use spec::{ActionSpec, ClassSpec, FieldSpec, MaskFnSpec, MethodOp, MethodSpec, TriggerSpec};
