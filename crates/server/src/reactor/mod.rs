//! The reactor subsystem: a poll/epoll-driven event loop over
//! non-blocking sockets, replacing thread-per-connection sessions.
//!
//! Layout:
//!
//! * [`poller`] — readiness polling (epoll on Linux, poll(2) on other
//!   unix) plus the cross-thread [`poller::Waker`], declared as direct
//!   FFI since the workspace carries no libc/mio dependency.
//! * [`outbox`] — per-connection outbox rings, the fan-out
//!   [`outbox::Sink`] both server modes share, and one-time frame
//!   encoding for broadcasts.
//! * [`event_loop`] — the loop itself: accept, framed non-blocking
//!   reads with partial-line carry, write-interest-driven flushing,
//!   replication heartbeats, idle-transaction expiry, the command
//!   worker pool, and the single connection-teardown path.
//!
//! The legacy thread-per-connection path is retained behind
//! [`crate::server::ServerConfig::thread_per_conn`] as a baseline for
//! the `e18_evloop` bench; the reactor is the default.

pub(crate) mod event_loop;
pub(crate) mod outbox;
pub mod poller;

pub use poller::raise_nofile_limit;
