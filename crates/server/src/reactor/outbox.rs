//! Per-connection outbox rings and the [`Sink`] abstraction over them.
//!
//! A [`ConnOutbox`] is the reactor-mode replacement for the legacy
//! per-connection writer thread + mpsc channel: producers (worker
//! threads answering commands, the engine's firing sink running under
//! the engine lock, each shard WAL's durable sink) enqueue *pre-
//! serialized* frames; the event loop drains them to the socket with
//! write-interest-driven flushing. Fan-out paths serialize a message
//! **once** and enqueue the same `Arc<[u8]>` into every subscriber's
//! ring, so a firing's cost under the engine lock is one JSON encode
//! plus N pointer pushes — not N encodes and no socket I/O at all.
//!
//! The ring is unbounded, matching the legacy unbounded channel: every
//! accepted message is eventually written or accounted. The only
//! messages ever *dropped* are [`ServerMsg::Firing`] notifications
//! enqueued after the connection closed (or stranded in the ring when
//! it dies) — exactly the cases the legacy writer counted in
//! `subscriber_drops`.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::Mutex;

use super::poller::Waker;
use crate::protocol::ServerMsg;

/// One wire frame: a full serialized line (newline included).
pub(crate) struct Frame {
    pub(crate) bytes: Arc<[u8]>,
    /// Firing notifications are the droppable class — when they can't
    /// be delivered they count in `subscriber_drops` instead of
    /// erroring.
    pub(crate) firing: bool,
}

pub(crate) struct OutboxInner {
    pub(crate) queue: VecDeque<Frame>,
    /// Byte offset already written of the front frame (partial-write
    /// carry).
    pub(crate) front_off: usize,
    /// The loop has been told about pending output and hasn't drained
    /// to empty yet; pushes while set skip the redundant wake.
    pub(crate) scheduled: bool,
    /// Closed by teardown: further pushes are refused.
    pub(crate) closed: bool,
}

/// Cross-thread doorbell for the event loop: connections with freshly
/// dirty state (new output, a finished command batch) plus the waker
/// that interrupts `Poller::wait`.
pub(crate) struct Notify {
    dirty: Mutex<Vec<u64>>,
    pub(crate) waker: Waker,
}

impl Notify {
    pub(crate) fn new() -> std::io::Result<Notify> {
        Ok(Notify {
            dirty: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    /// Mark `conn_id` dirty and wake the loop.
    pub(crate) fn mark(&self, conn_id: u64) {
        self.dirty.lock().push(conn_id);
        self.waker.wake();
    }

    /// Take the dirty list (loop side).
    pub(crate) fn take(&self) -> Vec<u64> {
        std::mem::take(&mut *self.dirty.lock())
    }
}

/// A connection's outbox ring. Shared between the producers and the
/// event loop; the loop is the only consumer.
pub(crate) struct ConnOutbox {
    pub(crate) conn_id: u64,
    notify: Arc<Notify>,
    pub(crate) inner: Mutex<OutboxInner>,
}

impl ConnOutbox {
    pub(crate) fn new(conn_id: u64, notify: Arc<Notify>) -> ConnOutbox {
        ConnOutbox {
            conn_id,
            notify,
            inner: Mutex::new(OutboxInner {
                queue: VecDeque::new(),
                front_off: 0,
                scheduled: false,
                closed: false,
            }),
        }
    }

    /// Enqueue a frame; `Err(())` if the ring is closed (the caller
    /// counts a drop if the message was a firing).
    pub(crate) fn push(&self, bytes: Arc<[u8]>, firing: bool) -> Result<(), ()> {
        let wake = {
            let mut g = self.inner.lock();
            if g.closed {
                return Err(());
            }
            g.queue.push_back(Frame { bytes, firing });
            if g.scheduled {
                false
            } else {
                g.scheduled = true;
                true
            }
        };
        if wake {
            self.notify.mark(self.conn_id);
        }
        Ok(())
    }

    /// Close the ring (teardown): refuse future pushes and return how
    /// many queued firing notifications were stranded — they'll never
    /// reach the peer, so they count as subscriber drops.
    pub(crate) fn close(&self) -> u64 {
        let mut g = self.inner.lock();
        g.closed = true;
        let stranded = g.queue.iter().filter(|f| f.firing).count() as u64;
        g.queue.clear();
        g.front_off = 0;
        stranded
    }
}

/// Serialize a message as one wire frame (line + newline). `None` if
/// serialization fails — the legacy writer skipped such messages too.
pub(crate) fn encode_frame(msg: &ServerMsg) -> Option<Arc<[u8]>> {
    let mut line = serde_json::to_string(msg).ok()?;
    line.push('\n');
    Some(Arc::from(line.into_bytes().into_boxed_slice()))
}

/// Where a session's outgoing messages go: the legacy writer-thread
/// channel, or a reactor outbox ring. Every delivery path
/// (`execute`, the firing sink, the replication sinks) speaks this,
/// so both server modes share one command layer.
#[derive(Clone)]
pub(crate) enum Sink {
    /// Thread-per-connection mode: an unbounded channel drained by the
    /// connection's writer thread.
    Channel(mpsc::Sender<ServerMsg>),
    /// Reactor mode: a shared outbox ring drained by the event loop.
    Ring(Arc<ConnOutbox>),
}

impl Sink {
    /// Deliver one message to this connection. `Err(())` means the
    /// connection is gone (channel receiver dropped / ring closed).
    pub(crate) fn send(&self, msg: ServerMsg) -> Result<(), ()> {
        match self {
            Sink::Channel(tx) => tx.send(msg).map_err(|_| ()),
            Sink::Ring(ring) => {
                let firing = matches!(msg, ServerMsg::Firing(_));
                match encode_frame(&msg) {
                    Some(bytes) => ring.push(bytes, firing),
                    None => Ok(()),
                }
            }
        }
    }

    /// Fan-out delivery: ring recipients share `frame`'s one-time
    /// encoding; channel recipients take a message clone (their writer
    /// thread serializes).
    pub(crate) fn send_shared(&self, msg: &ServerMsg, frame: &SharedFrame) -> Result<(), ()> {
        match self {
            Sink::Channel(tx) => tx.send(msg.clone()).map_err(|_| ()),
            Sink::Ring(ring) => match frame.get(msg) {
                Some(bytes) => ring.push(bytes, matches!(msg, ServerMsg::Firing(_))),
                None => Ok(()),
            },
        }
    }
}

/// Lazily-encoded shared frame for fan-out: encoded at most once no
/// matter how many ring subscribers the broadcast reaches, and not at
/// all when every subscriber is a channel.
#[derive(Default)]
pub(crate) struct SharedFrame {
    cell: std::cell::OnceCell<Option<Arc<[u8]>>>,
}

impl SharedFrame {
    pub(crate) fn new() -> SharedFrame {
        SharedFrame::default()
    }

    fn get(&self, msg: &ServerMsg) -> Option<Arc<[u8]>> {
        self.cell.get_or_init(|| encode_frame(msg)).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_close_strands_firings_only() {
        let notify = Arc::new(Notify::new().unwrap());
        let ring = ConnOutbox::new(7, Arc::clone(&notify));
        let frame: Arc<[u8]> = Arc::from(&b"x\n"[..]);
        ring.push(Arc::clone(&frame), false).unwrap();
        ring.push(Arc::clone(&frame), true).unwrap();
        ring.push(Arc::clone(&frame), true).unwrap();
        assert_eq!(notify.take(), vec![7], "one wake per scheduling edge");
        assert_eq!(ring.close(), 2, "two stranded firings");
        assert!(ring.push(frame, true).is_err(), "closed ring refuses");
    }

    #[test]
    fn shared_frame_encodes_once_and_matches_send() {
        let msg = ServerMsg::Reply {
            id: 3,
            result: crate::protocol::ReplyResult::Ok(crate::protocol::Reply::Pong),
        };
        let shared = SharedFrame::new();
        let a = shared.get(&msg).unwrap();
        let b = shared.get(&msg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, &*encode_frame(&msg).unwrap());
        assert_eq!(a.last(), Some(&b'\n'));
    }
}
