//! The reactor event loop and its command worker pool.
//!
//! One loop thread owns every socket: it accepts, reads framed lines
//! (partial lines carried across readiness events by
//! [`crate::codec::LineReader`]), drains outbox rings with
//! write-interest-driven flushing, emits replication heartbeats, and
//! expires idle transactions. It never executes a command and never
//! blocks on anything but the poller — commands run on a small worker
//! pool, because `Commit` blocks on the WAL's group-commit fsync and
//! `Promote` can wait seconds for the stream to drain.
//!
//! ## Per-connection command FIFO
//!
//! Lines parsed by the loop are queued per connection; a connection is
//! *dispatched* to the pool only when it isn't already running there,
//! so one connection's commands always execute in arrival order (the
//! session contract) while distinct connections interleave freely. If
//! a client pipelines past a high-water mark the loop gates that
//! socket's read interest **off** (level-triggered pollers would
//! otherwise spin on the un-consumed readiness) and re-arms it when
//! the worker drains the queue.
//!
//! ## One teardown path
//!
//! Shutdown, peer disconnect, and socket errors all converge on
//! [`EventLoop::teardown`]: deregister, close the outbox ring
//! (counting stranded firings as `subscriber_drops`), drop the
//! subscription and replication-stream registrations, decrement
//! `conns_open`, and release the session's open transaction — either
//! inline, or deferred to the worker mid-command via the
//! `closed`/`running` handshake so a lock is never leaked and never
//! double-aborted. A clean EOF with queued work or unflushed replies
//! defers teardown until both drain, so half-closing clients still
//! receive every answer (the legacy writer thread behaved the same
//! way).

use std::collections::HashMap;
use std::net::TcpListener;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use parking_lot::Mutex;

use super::outbox::{encode_frame, ConnOutbox, Notify, Sink};
use super::poller::{Event, Interest, Poller};
use crate::codec::{LineEvent, LineReader};
use crate::conn::Conn;
use crate::protocol::{ReplyResult, ServerMsg, WireError};
use crate::repl::HEARTBEAT_INTERVAL;
use crate::server::{handle_line, notice, release_session, Shared};
use ode_db::TxnId;

/// A bound listener handed to the loop.
pub(crate) enum ListenSocket {
    /// TCP listener (non-blocking).
    Tcp(TcpListener),
    /// Unix-domain listener (non-blocking).
    Unix(UnixListener),
}

impl ListenSocket {
    fn raw_fd(&self) -> RawFd {
        match self {
            ListenSocket::Tcp(l) => l.as_raw_fd(),
            ListenSocket::Unix(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            ListenSocket::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            ListenSocket::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// Session state a worker mutates while holding the lock: the open
/// transaction and the replication flag `execute` toggles.
pub(crate) struct SessionCore {
    pub(crate) open_txn: Option<TxnId>,
    pub(crate) replicating: bool,
}

/// The per-connection command FIFO and its dispatch latch.
struct CmdQueue {
    lines: std::collections::VecDeque<String>,
    /// A worker currently owns this connection's session (it is either
    /// executing a command or about to re-check the queue).
    running: bool,
}

/// State shared between the loop and the workers for one connection.
pub(crate) struct ConnState {
    pub(crate) conn_id: u64,
    pub(crate) outbox: Arc<ConnOutbox>,
    /// Teardown has begun: workers stop executing queued lines and the
    /// survivor of the `closed`/`running` handshake releases the
    /// session.
    closed: AtomicBool,
    /// The session's transaction has been released (idempotence guard
    /// for the reap race — both sides of the handshake may qualify).
    reaped: AtomicBool,
    /// Mirror of `SessionCore::replicating` for the loop's lock-free
    /// heartbeat sweep.
    replicating: AtomicBool,
    session: Mutex<SessionCore>,
    queue: Mutex<CmdQueue>,
}

/// Release the session's transaction exactly once, from whichever side
/// of the teardown handshake ran last. A no-op while a worker still
/// owns the session — that worker calls back in when its batch ends.
fn try_reap(inner: &Shared, st: &ConnState) {
    if st.queue.lock().running {
        return;
    }
    if st.reaped.swap(true, Ordering::SeqCst) {
        return;
    }
    let txn = st.session.lock().open_txn.take();
    if let Some(t) = txn {
        let _ = inner.db.abort(t);
    }
}

fn worker_loop(
    inner: Arc<Shared>,
    notify: Arc<Notify>,
    rx: Arc<Mutex<mpsc::Receiver<Arc<ConnState>>>>,
) {
    loop {
        let st = {
            let g = rx.lock();
            match g.recv() {
                Ok(s) => s,
                Err(_) => break,
            }
        };
        run_batch(&inner, &st);
        // Wake the loop: flush whatever the batch wrote, re-arm a
        // gated read, finalize a deferred EOF teardown.
        notify.mark(st.conn_id);
    }
}

/// Execute this connection's queued lines until the queue is empty,
/// then hand the dispatch latch back.
fn run_batch(inner: &Arc<Shared>, st: &ConnState) {
    loop {
        let line = {
            let mut q = st.queue.lock();
            match q.lines.pop_front() {
                Some(l) => l,
                None => {
                    q.running = false;
                    break;
                }
            }
        };
        if st.closed.load(Ordering::SeqCst) {
            continue; // drain and drop: the peer is gone
        }
        let sink = Sink::Ring(Arc::clone(&st.outbox));
        let mut s = st.session.lock();
        let mut open_txn = s.open_txn;
        let mut replicating = s.replicating;
        handle_line(
            inner,
            st.conn_id,
            &line,
            &mut open_txn,
            &sink,
            &mut replicating,
        );
        s.open_txn = open_txn;
        s.replicating = replicating;
        drop(s);
        st.replicating.store(replicating, Ordering::SeqCst);
    }
    if st.closed.load(Ordering::SeqCst) {
        try_reap(inner, st);
    }
}

/// Handle to the running reactor: the doorbell plus the threads to
/// join on shutdown.
pub(crate) struct ReactorHandle {
    pub(crate) notify: Arc<Notify>,
    pub(crate) loop_thread: Option<JoinHandle<()>>,
    pub(crate) workers: Vec<JoinHandle<()>>,
}

/// Spawn the worker pool and the loop thread.
pub(crate) fn start(
    inner: Arc<Shared>,
    listeners: Vec<ListenSocket>,
) -> std::io::Result<ReactorHandle> {
    let notify = Arc::new(Notify::new()?);
    let (inj_tx, inj_rx) = mpsc::channel::<Arc<ConnState>>();
    let inj_rx = Arc::new(Mutex::new(inj_rx));
    let mut workers = Vec::new();
    for i in 0..inner.config.workers.max(1) {
        let (w_inner, w_notify, w_rx) =
            (Arc::clone(&inner), Arc::clone(&notify), Arc::clone(&inj_rx));
        workers.push(
            thread::Builder::new()
                .name(format!("ode-worker-{i}"))
                .spawn(move || worker_loop(w_inner, w_notify, w_rx))?,
        );
    }
    let loop_notify = Arc::clone(&notify);
    let loop_thread = thread::Builder::new()
        .name("ode-reactor".into())
        .spawn(
            move || match EventLoop::new(inner, listeners, loop_notify, inj_tx) {
                Ok(mut el) => el.run(),
                Err(e) => eprintln!("reactor failed to start: {e}"),
            },
        )?;
    Ok(ReactorHandle {
        notify,
        loop_thread: Some(loop_thread),
        workers,
    })
}

/// Stop reading a connection once this many lines are queued unexecuted;
/// re-arm when the worker drains them. Bounds per-connection memory
/// under hostile pipelining without ever stalling other connections.
const READ_HIGH_WATER: usize = 128;

struct Entry {
    conn: Conn,
    reader: LineReader,
    state: Arc<ConnState>,
    last_activity: Instant,
    last_heartbeat: Instant,
    /// Read interest currently disarmed (queue over high water).
    read_gated: bool,
    /// Write interest currently armed (partial flush pending).
    write_interest: bool,
    /// Clean EOF seen; teardown deferred until queued commands execute
    /// and their replies flush.
    peer_eof: bool,
}

struct EventLoop {
    inner: Arc<Shared>,
    poller: Poller,
    notify: Arc<Notify>,
    injector: mpsc::Sender<Arc<ConnState>>,
    listeners: Vec<ListenSocket>,
    conns: HashMap<RawFd, Entry>,
    by_id: HashMap<u64, RawFd>,
    last_sweep: Instant,
}

impl EventLoop {
    fn new(
        inner: Arc<Shared>,
        listeners: Vec<ListenSocket>,
        notify: Arc<Notify>,
        injector: mpsc::Sender<Arc<ConnState>>,
    ) -> std::io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        poller.register(notify.waker.fd(), Interest::READ)?;
        for l in &listeners {
            poller.register(l.raw_fd(), Interest::READ)?;
        }
        Ok(EventLoop {
            inner,
            poller,
            notify,
            injector,
            listeners,
            conns: HashMap::new(),
            by_id: HashMap::new(),
            last_sweep: Instant::now(),
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let tick = self.inner.config.poll_interval;
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            if self.poller.wait(&mut events, tick).is_err() {
                break;
            }
            for ev in std::mem::take(&mut events) {
                if ev.fd == self.notify.waker.fd() {
                    self.notify.waker.drain();
                } else if let Some(idx) = self.listeners.iter().position(|l| l.raw_fd() == ev.fd) {
                    self.accept_ready(idx);
                } else {
                    if ev.writable {
                        self.flush(ev.fd);
                    }
                    if ev.readable {
                        self.read_lines(ev.fd);
                    }
                    self.maybe_finalize(ev.fd);
                }
            }
            for conn_id in self.notify.take() {
                if let Some(&fd) = self.by_id.get(&conn_id) {
                    self.flush(fd);
                    self.rearm_read(fd);
                    self.maybe_finalize(fd);
                }
            }
            if self.last_sweep.elapsed() >= tick {
                self.last_sweep = Instant::now();
                self.sweep();
            }
        }
        // Shutdown: one teardown path for every live connection.
        for fd in self.conns.keys().copied().collect::<Vec<_>>() {
            self.teardown(fd);
        }
    }

    /// Periodic per-connection duties: replication heartbeats and the
    /// idle-transaction timer.
    fn sweep(&mut self) {
        let idle_limit = self.inner.config.txn_idle_timeout;
        let mut expired: Vec<RawFd> = Vec::new();
        for (&fd, entry) in self.conns.iter_mut() {
            if entry.state.replicating.load(Ordering::SeqCst)
                && entry.last_heartbeat.elapsed() >= HEARTBEAT_INTERVAL
            {
                entry.last_heartbeat = Instant::now();
                if let Some(ws) = &self.inner.wal {
                    let sink = Sink::Ring(Arc::clone(&entry.state.outbox));
                    let epoch = self.inner.epochs.history_epoch();
                    for s in 0..ws.wal.shard_count() {
                        let _ = sink.send(ServerMsg::ReplHeartbeat {
                            shard: s as u64,
                            head: ws.wal.wal(s).durable_lsn(),
                            epoch,
                        });
                    }
                }
            }
            if let Some(limit) = idle_limit {
                if entry.last_activity.elapsed() >= limit {
                    // `try_lock`: a held session lock means a command
                    // is mid-execution, which is not idle.
                    if let Some(mut s) = entry.state.session.try_lock() {
                        if let Some(t) = s.open_txn.take() {
                            let _ = self.inner.db.abort(t);
                            expired.push(fd);
                        }
                    }
                }
            }
        }
        for fd in expired {
            if let Some(entry) = self.conns.get(&fd) {
                let sink = Sink::Ring(Arc::clone(&entry.state.outbox));
                let _ = sink.send(notice(
                    "txn_timeout",
                    "open transaction aborted after idle timeout".to_string(),
                ));
            }
        }
    }

    fn accept_ready(&mut self, idx: usize) {
        // Stops on WouldBlock, or any transient accept error.
        while let Ok(conn) = self.listeners[idx].accept() {
            self.admit(conn);
        }
    }

    fn admit(&mut self, conn: Conn) {
        if let Some(max) = self.inner.config.max_conns {
            if self.inner.conns_open.load(Ordering::SeqCst) >= max {
                self.inner.conns_rejected.fetch_add(1, Ordering::SeqCst);
                reject_full(conn, max);
                return;
            }
        }
        if conn.set_nonblocking(true).is_err() {
            return;
        }
        let fd = conn.as_raw_fd();
        let conn_id = self.inner.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
        let outbox = Arc::new(ConnOutbox::new(conn_id, Arc::clone(&self.notify)));
        let state = Arc::new(ConnState {
            conn_id,
            outbox,
            closed: AtomicBool::new(false),
            reaped: AtomicBool::new(false),
            replicating: AtomicBool::new(false),
            session: Mutex::new(SessionCore {
                open_txn: None,
                replicating: false,
            }),
            queue: Mutex::new(CmdQueue {
                lines: std::collections::VecDeque::new(),
                running: false,
            }),
        });
        if self.poller.register(fd, Interest::READ).is_err() {
            conn.shutdown_both();
            return;
        }
        self.inner.conns_open.fetch_add(1, Ordering::SeqCst);
        self.by_id.insert(conn_id, fd);
        let now = Instant::now();
        self.conns.insert(
            fd,
            Entry {
                conn,
                reader: LineReader::new(self.inner.config.max_line_bytes),
                state,
                last_activity: now,
                last_heartbeat: now,
                read_gated: false,
                write_interest: false,
                peer_eof: false,
            },
        );
    }

    /// Drain readable bytes into framed lines and dispatch the
    /// connection to the worker pool.
    fn read_lines(&mut self, fd: RawFd) {
        let Some(entry) = self.conns.get_mut(&fd) else {
            return;
        };
        if entry.read_gated || entry.peer_eof {
            return;
        }
        let mut dead = false;
        loop {
            match entry.reader.read_event(&mut entry.conn) {
                Ok(LineEvent::Line(line)) => {
                    entry.last_activity = Instant::now();
                    let (dispatch, len) = {
                        let mut q = entry.state.queue.lock();
                        q.lines.push_back(line);
                        let dispatch = if q.running {
                            false
                        } else {
                            q.running = true;
                            true
                        };
                        (dispatch, q.lines.len())
                    };
                    if dispatch {
                        let _ = self.injector.send(Arc::clone(&entry.state));
                    }
                    if len >= READ_HIGH_WATER {
                        entry.read_gated = true;
                        break;
                    }
                }
                Ok(LineEvent::Tick) => break,
                Ok(LineEvent::Overlong) => {
                    let sink = Sink::Ring(Arc::clone(&entry.state.outbox));
                    let _ = sink.send(notice(
                        "overlong",
                        format!(
                            "request line exceeds {} bytes",
                            self.inner.config.max_line_bytes
                        ),
                    ));
                }
                Ok(LineEvent::Eof) => {
                    entry.peer_eof = true;
                    break;
                }
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.teardown(fd);
        } else {
            self.update_interest(fd);
        }
    }

    /// Re-arm a gated read once the worker drained the queue (pulling
    /// any lines already framed in the reader's carry buffer too).
    fn rearm_read(&mut self, fd: RawFd) {
        let Some(entry) = self.conns.get_mut(&fd) else {
            return;
        };
        if !entry.read_gated {
            return;
        }
        if entry.state.queue.lock().lines.len() < READ_HIGH_WATER {
            entry.read_gated = false;
            self.update_interest(fd);
            self.read_lines(fd);
        }
    }

    /// Write the outbox ring to the socket until drained or the kernel
    /// pushes back; arm write interest exactly while a flush is
    /// pending.
    fn flush(&mut self, fd: RawFd) {
        let Some(entry) = self.conns.get_mut(&fd) else {
            return;
        };
        let mut blocked = false;
        let mut dead = false;
        loop {
            // Peek-clone the front frame so producers (who push under
            // the engine lock) never wait on a write syscall.
            let front = {
                let mut g = entry.state.outbox.inner.lock();
                match g.queue.front() {
                    None => {
                        g.scheduled = false;
                        None
                    }
                    Some(f) => Some((Arc::clone(&f.bytes), g.front_off)),
                }
            };
            let Some((bytes, off)) = front else { break };
            match std::io::Write::write(&mut entry.conn, &bytes[off..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    let mut g = entry.state.outbox.inner.lock();
                    g.front_off += n;
                    if g.front_off >= bytes.len() {
                        g.queue.pop_front();
                        g.front_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    blocked = true;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.teardown(fd);
            return;
        }
        if entry_write_interest(self.conns.get_mut(&fd), blocked) {
            self.update_interest(fd);
        }
    }

    /// Finalize a deferred clean-EOF teardown: every queued command
    /// has executed and every reply has flushed.
    fn maybe_finalize(&mut self, fd: RawFd) {
        let Some(entry) = self.conns.get(&fd) else {
            return;
        };
        if !entry.peer_eof {
            return;
        }
        let busy = {
            let q = entry.state.queue.lock();
            q.running || !q.lines.is_empty()
        };
        let unflushed = {
            let g = entry.state.outbox.inner.lock();
            !g.queue.is_empty()
        };
        if !busy && !unflushed {
            self.teardown(fd);
        }
    }

    fn update_interest(&mut self, fd: RawFd) {
        let Some(entry) = self.conns.get(&fd) else {
            return;
        };
        let interest = Interest {
            read: !entry.read_gated && !entry.peer_eof,
            write: entry.write_interest,
        };
        let _ = self.poller.reregister(fd, interest);
    }

    /// The one teardown path: shutdown, peer disconnect, and socket
    /// errors all come through here (idle timeouts only abort the
    /// transaction and keep the connection). Idempotent per fd —
    /// the map removal makes a second call a no-op.
    fn teardown(&mut self, fd: RawFd) {
        let Some(entry) = self.conns.remove(&fd) else {
            return;
        };
        let st = &entry.state;
        self.by_id.remove(&st.conn_id);
        let _ = self.poller.deregister(fd);
        st.closed.store(true, Ordering::SeqCst);
        let stranded = st.outbox.close();
        if stranded > 0 {
            self.inner
                .subscriber_drops
                .fetch_add(stranded, Ordering::Relaxed);
        }
        release_session(&self.inner, st.conn_id);
        entry.conn.shutdown_both();
        try_reap(&self.inner, st);
        // `entry.conn` drops here, closing the fd after deregistration.
    }
}

/// Update `write_interest` on the entry; returns whether it changed.
fn entry_write_interest(entry: Option<&mut Entry>, want: bool) -> bool {
    match entry {
        Some(e) if e.write_interest != want => {
            e.write_interest = want;
            true
        }
        _ => false,
    }
}

/// Refuse a connection over `--max-conns` with a typed notice: a
/// best-effort non-blocking write of one `server_full` line (the
/// socket's send buffer is empty, so it virtually always lands), then
/// close.
fn reject_full(conn: Conn, max: u64) {
    let msg = ServerMsg::Reply {
        id: 0,
        result: ReplyResult::Err(WireError {
            code: "server_full".to_string(),
            message: format!("connection limit ({max}) reached; retry later"),
            retryable: true,
        }),
    };
    if let Some(frame) = encode_frame(&msg) {
        let _ = conn.set_nonblocking(true);
        let mut c = conn;
        let _ = std::io::Write::write(&mut c, &frame);
        c.shutdown_both();
        return;
    }
    conn.shutdown_both();
}
