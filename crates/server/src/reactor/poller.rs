//! Readiness polling over raw fds: epoll on Linux, poll(2) elsewhere.
//!
//! The workspace deliberately carries no `libc`/`mio` dependency, so
//! the handful of syscalls the reactor needs are declared here
//! directly — std already links the platform C library. The surface
//! is mio-shaped but minimal: register an fd with read and/or write
//! interest, re-arm interest, wait for events with a timeout.
//!
//! Both backends are *level-triggered*: an fd stays ready until the
//! condition is consumed. The event loop relies on that (it may leave
//! bytes unread when a connection's command queue is over its
//! high-water mark) — but level triggering also means interest must be
//! *modified off* while gated, or the poller would spin hot reporting
//! the same readiness forever.

use std::io;
use std::os::unix::io::RawFd;

/// What the caller wants to hear about an fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Readable (or accept-ready, or peer-closed).
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registered fd.
    pub fd: RawFd,
    /// Readable / peer closed / error (errors surface on the
    /// subsequent read).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors glibc's `struct epoll_event`; packed on x86 so the
    /// 64-bit data field sits at offset 4, exactly as the kernel ABI
    /// expects there.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// epoll-backed poller.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// A fresh epoll instance.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: fd as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Start watching `fd` with the given interest.
        pub fn register(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest)
        }

        /// Change a watched fd's interest set.
        pub fn reregister(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest)
        }

        /// Stop watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Interest::READ)
        }

        /// Collect ready events into `out`, waiting up to `timeout`.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &buf[..n as usize] {
                // Copy out of the possibly-packed struct before use.
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    fd: data as RawFd,
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: c_int) -> c_int;
    }

    /// poll(2)-backed fallback: the interest set is kept in a map and
    /// the pollfd array rebuilt per wait. O(fds) per call, which is
    /// fine for the platforms this path serves.
    pub struct Poller {
        interest: HashMap<RawFd, Interest>,
    }

    impl Poller {
        /// A fresh poll-backed instance.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                interest: HashMap::new(),
            })
        }

        /// Start watching `fd` with the given interest.
        pub fn register(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
            self.interest.insert(fd, interest);
            Ok(())
        }

        /// Change a watched fd's interest set.
        pub fn reregister(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
            self.interest.insert(fd, interest);
            Ok(())
        }

        /// Stop watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.interest.remove(&fd);
            Ok(())
        }

        /// Collect ready events into `out`, waiting up to `timeout`.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .interest
                .iter()
                .map(|(&fd, i)| PollFd {
                    fd,
                    events: if i.read { POLLIN } else { 0 } | if i.write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ms = timeout.as_millis().min(c_int::MAX as u128) as c_int;
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for p in &fds {
                if p.revents == 0 {
                    continue;
                }
                out.push(Event {
                    fd: p.fd,
                    readable: p.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: p.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

/// Wakes a sleeping [`Poller`] from another thread: a nonblocking
/// socketpair whose read end the loop registers like any other fd.
/// Writes coalesce — once a byte is pending, further wakes are no-ops
/// until the loop drains it.
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

impl Waker {
    /// A fresh waker pair.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd the loop registers for read interest.
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Wake the loop (cheap, thread-safe; a full pipe means a wake is
    /// already pending, which is all we need).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drain pending wake bytes (loop side).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Raise the process `RLIMIT_NOFILE` soft limit to the hard limit and
/// return the resulting soft limit. The 10k-subscriber fan-out paths
/// (tests, benches) call this so descriptor-hungry scenarios don't trip
/// over a conservative default; failures are non-fatal — the caller
/// sizes its fleet to whatever this returns.
pub fn raise_nofile_limit() -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    // RLIMIT_NOFILE is 7 on Linux and 8 on the BSDs/macOS.
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        // Privileged processes may raise the hard limit as well (it is
        // still capped by the kernel's fs.nr_open, hence a value well
        // below the 2^20 default); everyone else gets soft = hard.
        let generous = lim.max.max(1 << 18);
        if lim.max < generous {
            let want = RLimit {
                cur: generous,
                max: generous,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                return generous;
            }
        }
        if lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                return lim.max;
            }
        }
        lim.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn waker_wakes_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: times out empty.
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.fd != waker.fd()));
        waker.wake();
        waker.wake(); // coalesces
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events.iter().any(|e| e.fd == waker.fd() && e.readable));
        waker.drain();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.fd != waker.fd()));
    }

    #[test]
    fn write_interest_reported_and_rearmed() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(
                a.as_raw_fd(),
                Interest {
                    read: true,
                    write: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.fd == a.as_raw_fd() && e.writable && !e.readable));
        // Drop write interest; readability still reported once the
        // peer sends.
        poller.reregister(a.as_raw_fd(), Interest::READ).unwrap();
        (&b).write_all(b"x").unwrap();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.fd == a.as_raw_fd() && e.readable && !e.writable));
        poller.deregister(a.as_raw_fd()).unwrap();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());
    }
}
