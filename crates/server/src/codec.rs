//! Line framing over a (possibly timeout-ticking) byte stream.
//!
//! `BufReader::read_line` cannot be used on a socket with a read
//! timeout: a timeout mid-line would drop the partial bytes already
//! read. [`LineReader`] keeps the partial line across ticks, so the
//! server can poll its shutdown flag and idle-transaction timer between
//! reads without ever corrupting the stream, and enforces a maximum
//! line length by switching into discard mode until the offending
//! line's newline arrives.

use std::io::{ErrorKind, Read};

/// One framing outcome.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (without its trailing newline).
    Line(String),
    /// The read timed out — no data lost; poll state and try again.
    Tick,
    /// The peer closed the stream.
    Eof,
    /// The current line exceeded the length cap; its bytes are being
    /// discarded up to the next newline. Reported once per long line.
    Overlong,
}

/// Incremental newline framer with a length cap.
pub struct LineReader {
    buf: Vec<u8>,
    max: usize,
    discarding: bool,
}

impl LineReader {
    /// A reader enforcing `max` bytes per line.
    pub fn new(max: usize) -> LineReader {
        LineReader {
            buf: Vec::new(),
            max,
            discarding: false,
        }
    }

    /// Pull the next framing event from `r`. Timeouts surface as
    /// [`LineEvent::Tick`] with all partial data retained.
    pub fn read_event(&mut self, r: &mut dyn Read) -> std::io::Result<LineEvent> {
        loop {
            while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if self.discarding {
                    // Tail of an already-reported overlong line.
                    self.discarding = false;
                    continue;
                }
                if line.len() - 1 > self.max {
                    return Ok(LineEvent::Overlong);
                }
                let s = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return Ok(LineEvent::Line(s));
            }
            if self.discarding {
                self.buf.clear();
            } else if self.buf.len() > self.max {
                self.buf.clear();
                self.discarding = true;
                return Ok(LineEvent::Overlong);
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(LineEvent::Tick)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    /// A reader yielding scripted chunks, with `None` meaning a timeout.
    struct Script(Vec<Option<Vec<u8>>>);

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0); // EOF
            }
            match self.0.remove(0) {
                Some(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                None => Err(io::Error::new(ErrorKind::WouldBlock, "tick")),
            }
        }
    }

    #[test]
    fn partial_lines_survive_ticks() {
        let mut r = Script(vec![
            Some(b"{\"id\":".to_vec()),
            None,
            Some(b"1}\nrest\n".to_vec()),
        ]);
        let mut lr = LineReader::new(1024);
        assert!(matches!(lr.read_event(&mut r).unwrap(), LineEvent::Tick));
        match lr.read_event(&mut r).unwrap() {
            LineEvent::Line(l) => assert_eq!(l, "{\"id\":1}"),
            other => panic!("{other:?}"),
        }
        match lr.read_event(&mut r).unwrap() {
            LineEvent::Line(l) => assert_eq!(l, "rest"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(lr.read_event(&mut r).unwrap(), LineEvent::Eof));
    }

    #[test]
    fn overlong_line_reported_once_then_discarded() {
        let mut big = vec![b'x'; 64];
        big.extend_from_slice(b"tail\nok\n");
        let mut r = Script(vec![Some(big)]);
        let mut lr = LineReader::new(16);
        assert!(matches!(
            lr.read_event(&mut r).unwrap(),
            LineEvent::Overlong
        ));
        match lr.read_event(&mut r).unwrap() {
            LineEvent::Line(l) => assert_eq!(l, "ok", "discard ends at the overlong newline"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_lines_in_one_chunk() {
        let mut r = Script(vec![Some(b"a\nb\nc\n".to_vec())]);
        let mut lr = LineReader::new(1024);
        for expect in ["a", "b", "c"] {
            match lr.read_event(&mut r).unwrap() {
                LineEvent::Line(l) => assert_eq!(l, expect),
                other => panic!("{other:?}"),
            }
        }
    }
}
