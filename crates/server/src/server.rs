//! The server: reactor-served sessions over a [`SharedDatabase`].
//!
//! Connections are owned by the poll-driven event loop in
//! [`crate::reactor`] (one loop thread + a worker pool); set
//! [`ServerConfig::thread_per_conn`] to run the legacy
//! thread-per-connection front end instead (kept as a benchmark
//! baseline). Session semantics are identical either way.
//!
//! ## Session model
//!
//! Each connection is one *session* holding at most one open
//! transaction. The engine mutex is held only for the duration of each
//! individual command, so sessions interleave at transaction granularity
//! exactly like in-process users of [`SharedDatabase`]: conflicting
//! object access surfaces as a retryable `lock_conflict` error (the
//! engine never blocks on locks, so there is no deadlock), and the
//! client aborts and retries.
//!
//! ## Robustness
//!
//! * Reads poll with a short timeout ([`ServerConfig::poll_interval`])
//!   so every session notices shutdown promptly and can expire idle
//!   transactions ([`ServerConfig::txn_idle_timeout`]) — partial lines
//!   survive the ticks (see [`crate::codec::LineReader`]).
//! * Malformed or overlong lines answer with a structured `id: 0` error
//!   notice; the connection stays open and usable.
//! * A disconnect (or shutdown) aborts the session's open transaction,
//!   releasing its object locks.
//!
//! ## Firing fan-out
//!
//! The engine's firing sink runs with the engine locked, so it must
//! never touch a socket: it serializes the [`Firing`] once and pushes
//! the shared frame onto each subscribed connection's outbox ring
//! (or channel, in thread-per-conn mode). The event loop drains rings
//! to sockets as writability allows, so a slow subscriber delays only
//! itself. Failed deliveries (a closed ring, a dead socket) are
//! counted in the `subscriber_drops` stat rather than silently
//! discarded.
//!
//! ## Durability
//!
//! With [`ServerBuilder::wal_dir`], the server recovers the directory
//! on startup (wire-defined classes from `schema.wal`, then the latest
//! checkpoint plus log tail via [`ode_db::DiskWal`]) and streams every
//! subsequent engine op back out through the engine's log sink. A WAL
//! write or fsync failure degrades gracefully: the offending session's
//! transaction is aborted, the command answers a retryable `wal`
//! error, and the server latches **read-only** (mutating commands are
//! refused; reads, aborts, and subscriptions keep working) instead of
//! panicking or serving un-durable writes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ode_core::{Qualifier, Value};
use ode_db::durability::archive::{
    archive_dir, list_archives, read_archive_bytes, read_archive_meta,
};
use ode_db::durability::frame;
use ode_db::engine::{EventTap, FiringSink, LogSink};
use ode_db::replication::Applier;
use ode_db::{
    shard_dir, shard_of, to_global, to_local, ArchiveStats, ArgPred, Batch, CmpOp, Database,
    DurableRecord, EpochRecord, EpochTable, FiringNotice, HistConfig, HistQuery, HistStore, LogOp,
    ObjectId, SegmentReader, ShardedDatabase, ShardedWal, SharedDatabase, SharedIo, Snapshot,
    StdIo, TapEvent, TxnId, WalArchiver, WalConfig, WalFlusher,
};
use parking_lot::Mutex;

use crate::codec::{LineEvent, LineReader};
use crate::conn::Conn;
use crate::protocol::{
    hex_encode, Command, Firing, Reply, ReplyResult, Request, ServerMsg, WireError, WireRow,
    WireStats,
};
use crate::reactor::event_loop::{start as start_reactor, ListenSocket, ReactorHandle};
use crate::reactor::outbox::{SharedFrame, Sink};
use crate::repl::{run_replica, ReplSource, ReplicaState, StreamFault, HEARTBEAT_INTERVAL};
use crate::spec::{compile_class, ClassSpec};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum request-line length in bytes; longer lines are discarded
    /// with an `overlong` notice.
    pub max_line_bytes: usize,
    /// Read-timeout tick: how often idle sessions poll the shutdown
    /// flag and the idle-transaction timer.
    pub poll_interval: Duration,
    /// Abort a session's open transaction after this much inactivity
    /// (`None` disables the timer).
    pub txn_idle_timeout: Option<Duration>,
    /// Refuse connections past this count with a typed `server_full`
    /// notice instead of accepting and stalling (`None` = unlimited).
    pub max_conns: Option<u64>,
    /// Reactor mode: command-executor threads. Commands block (group-
    /// commit fsync waits, `Promote` stream drains), so they run on
    /// this pool rather than the event loop.
    pub workers: usize,
    /// Run the legacy thread-per-connection session model instead of
    /// the reactor event loop. Kept as the scaling baseline for the
    /// `e18_evloop` bench; the reactor is the default.
    pub thread_per_conn: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_line_bytes: 256 * 1024,
            poll_interval: Duration::from_millis(25),
            txn_idle_timeout: None,
            max_conns: None,
            workers: 8,
            thread_per_conn: false,
        }
    }
}

type Subscribers = Arc<Mutex<HashMap<u64, Sink>>>;

/// The server's durability state (present when started with a WAL dir).
pub(crate) struct WalState {
    /// One WAL stream per engine shard (internally synchronized; the
    /// engine lock is only ever held around the cheap buffer+assign-LSN
    /// step, never an fsync). Unsharded servers run a single stream in
    /// the legacy flat layout.
    pub(crate) wal: ShardedWal,
    pub(crate) io: SharedIo,
    /// The WAL root directory; `Replicate` handshakes re-scan the
    /// per-shard subdirectories under it.
    pub(crate) dir: PathBuf,
    /// `<wal-dir>/schema.wal`: framed `ClassSpec` JSON, one record per
    /// wire-defined class, replayed (in `ClassId` order) before the op
    /// WAL on recovery. Shared by every shard — classes are defined on
    /// all shards in lockstep.
    pub(crate) schema_path: PathBuf,
    /// Latched after the first WAL write/fsync failure: mutating
    /// commands answer a retryable `wal` error until restart.
    pub(crate) read_only: AtomicBool,
    /// Replication subscribers, one map per shard: connections that
    /// sent `Replicate`. Each shard's durable sink ships its records to
    /// its own map (under that shard's disk lock), so live shipping
    /// serializes with that shard's `frozen` handshake and a primary
    /// crash can never have shipped a record recovery then loses. The
    /// maps are per shard because a handshake registers with each shard
    /// stream only after scanning *that* shard's history.
    pub(crate) repl_subs: Vec<Subscribers>,
    /// Wall-clock milliseconds startup recovery spent replaying the
    /// WAL (the slowest shard — shards recover in parallel).
    pub(crate) recovery_ms: u64,
    /// Segment files replayed by startup recovery, all shards.
    pub(crate) segments_replayed: u64,
}

/// The node's primary-election epoch state: the durable
/// [`EpochTable`] (when a WAL directory exists), an atomic mirror of
/// the node's *history* epoch for lock-free stamping on the shipping
/// path, and the deposed latch.
///
/// Two different epochs matter. The **history epoch** is the highest
/// `EpochBump` the node's own log contains — it describes the lineage
/// of the records the node holds and ships, so handshake claims,
/// `ReplOp` stamps, and fence arithmetic all use it. The **observed
/// epoch** additionally counts epochs the node has merely *heard of*
/// (a handshake claim, a heartbeat stamp, an explicit `Demote`);
/// when it runs ahead of the history epoch the node is *deposed*:
/// a newer primary exists whose history this node has not caught up
/// to, so its write authority is revoked and it refuses to serve
/// `Replicate` until it rejoins as a replica.
pub(crate) struct EpochState {
    /// Mirror of the table's history epoch (see above). Monotone.
    cell: Arc<AtomicU64>,
    /// `observed > history`: write authority revoked.
    deposed: AtomicBool,
    table: Mutex<EpochTable>,
    /// Where table records persist (`None` without a WAL directory —
    /// fencing still works, but only for the process lifetime).
    store: Option<(SharedIo, PathBuf)>,
    /// Frames and handshakes refused for carrying a stale epoch.
    pub(crate) stale_rejections: AtomicU64,
}

impl EpochState {
    fn new(table: EpochTable, store: Option<(SharedIo, PathBuf)>) -> EpochState {
        EpochState {
            cell: Arc::new(AtomicU64::new(table.history_epoch())),
            deposed: AtomicBool::new(table.is_deposed()),
            table: Mutex::new(table),
            store,
            stale_rejections: AtomicU64::new(0),
        }
    }

    /// The highest epoch whose bump record this node's history holds.
    pub(crate) fn history_epoch(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    /// The highest epoch this node has heard of by any means.
    pub(crate) fn observed_epoch(&self) -> u64 {
        self.table.lock().epoch()
    }

    pub(crate) fn is_deposed(&self) -> bool {
        self.deposed.load(Ordering::SeqCst)
    }

    /// A clone of the history-epoch cell for capture in sink closures.
    pub(crate) fn cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.cell)
    }

    fn refresh(&self, table: &EpochTable) {
        self.cell.store(table.history_epoch(), Ordering::SeqCst);
        self.deposed.store(table.is_deposed(), Ordering::SeqCst);
    }

    fn persist(&self, recs: &[EpochRecord]) -> Result<(), String> {
        if let Some((io, dir)) = &self.store {
            EpochTable::append(io, dir, recs).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Record that `epoch` exists somewhere (handshake claim,
    /// heartbeat stamp, or explicit `Demote`). Latches the deposed
    /// flag *before* attempting persistence — losing the durable
    /// record on a crash is recoverable (the fence check catches the
    /// node when it rejoins), serving writes from a known-deposed
    /// node is not.
    pub(crate) fn observe(&self, epoch: u64) -> Result<(), String> {
        let mut table = self.table.lock();
        let Some(rec) = table.record_deposed(epoch) else {
            return Ok(());
        };
        self.refresh(&table);
        self.persist(&[rec])
    }

    /// Record a durable epoch start: `EpochBump { epoch }` sits at
    /// `lsn` in shard `shard`'s log.
    pub(crate) fn note_start(&self, epoch: u64, shard: u64, lsn: u64) -> Result<(), String> {
        let mut table = self.table.lock();
        if let Some(rec) = table.record_start(epoch, shard, lsn) {
            self.persist(&[rec])?;
        }
        self.refresh(&table);
        Ok(())
    }

    /// Record that fork healing discarded shard `shard`'s local log.
    pub(crate) fn note_reset(&self, shard: u64) -> Result<(), String> {
        let mut table = self.table.lock();
        let rec = table.record_reset(shard);
        self.refresh(&table);
        self.persist(&[rec])
    }

    /// The LSN of the first bump past `than_epoch` in shard `shard` —
    /// the last log position a `than_epoch` follower may share.
    pub(crate) fn fence_lsn(&self, shard: u64, than_epoch: u64) -> Option<u64> {
        self.table.lock().fence_lsn(shard, than_epoch)
    }
}

thread_local! {
    /// Per shard, the LSN of the last record this thread appended
    /// through that shard's log sink. The sinks run synchronously on
    /// the committing thread (with the shard's engine locked), so after
    /// `commit()` returns this holds each participating shard's commit
    /// record LSN — the merged watermark the session must wait on
    /// before acking.
    static LAST_WAL_LSNS: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

fn lsns_clear() {
    LAST_WAL_LSNS.with(|c| c.borrow_mut().clear());
}

fn lsns_note(shard: usize, lsn: u64) {
    LAST_WAL_LSNS.with(|c| {
        let mut v = c.borrow_mut();
        match v.iter_mut().find(|(s, _)| *s == shard) {
            Some(e) => e.1 = lsn,
            None => v.push((shard, lsn)),
        }
    });
}

fn lsns_take() -> Vec<(usize, u64)> {
    LAST_WAL_LSNS.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

pub(crate) struct Shared {
    pub(crate) db: ShardedDatabase,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) subs: Subscribers,
    pub(crate) conn_threads: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) next_conn: AtomicU64,
    pub(crate) wal: Option<Arc<WalState>>,
    /// Primary-election epoch state (always present; durable when the
    /// server has a WAL directory).
    pub(crate) epochs: Arc<EpochState>,
    /// Firing notifications that never reached a subscriber (outbox
    /// gone or socket write failed).
    pub(crate) subscriber_drops: Arc<AtomicU64>,
    /// Live connections (both server modes).
    pub(crate) conns_open: AtomicU64,
    /// Connections refused by the `max_conns` accept guard.
    pub(crate) conns_rejected: AtomicU64,
    /// Replica status when started with `replicate_from`.
    pub(crate) repl: Option<Arc<ReplicaState>>,
    /// The installed per-shard sinks, kept so the replica runner can
    /// re-install them after rebuilding a shard's engine for a
    /// snapshot jump.
    pub(crate) log_sinks: Vec<LogSink>,
    pub(crate) firing_sinks: Vec<FiringSink>,
    pub(crate) event_taps: Vec<EventTap>,
    /// Per-shard event-history stores (`--history`); empty when the
    /// feature is off.
    pub(crate) hist: Vec<Arc<HistStore>>,
}

/// Configures and starts a [`Server`].
pub struct ServerBuilder {
    db: SharedDatabase,
    shards: usize,
    config: ServerConfig,
    tcp: Option<String>,
    unix: Option<PathBuf>,
    wal_dir: Option<PathBuf>,
    wal_config: WalConfig,
    wal_io: Option<SharedIo>,
    replicate_from: Vec<ReplSource>,
    repl_fault_plan: HashMap<u64, StreamFault>,
    history: bool,
    hist_config: HistConfig,
}

impl ServerBuilder {
    /// Serve TCP on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port;
    /// read the bound address back with [`Server::tcp_addr`]).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Serve a Unix-domain socket at `path` (a stale socket file is
    /// removed first).
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.unix = Some(path.into());
        self
    }

    /// Override the default [`ServerConfig`].
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Admit at most `n` concurrent connections; beyond that, new
    /// clients are answered with a retryable `server_full` notice and
    /// closed (counted in [`WireStats::conns_rejected`]).
    pub fn max_conns(mut self, n: u64) -> Self {
        self.config.max_conns = Some(n);
        self
    }

    /// Hash-partition objects and trigger state into `n` engine shards,
    /// each with its own engine lock, WAL segment stream, and
    /// group-commit flusher, so single-shard transactions run fully
    /// parallel end to end. The database handle given to
    /// [`Server::builder`] becomes shard 0 (external clones of it stay
    /// live); shards 1..n start empty, so with `n > 1` define classes
    /// through the wire (or pre-populate every shard), not on the
    /// handle alone. A WAL directory written with one shard count
    /// refuses to reopen with another.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one shard");
        self.shards = n;
        self
    }

    /// Persist every engine op to a write-ahead log under `dir`. On
    /// start the directory is recovered first: wire-defined classes
    /// replay from `schema.wal`, then the newest checkpoint restores
    /// and the log tail replays on top of it.
    pub fn wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Override the default [`WalConfig`] (segment size, fsync policy).
    /// Only meaningful together with [`ServerBuilder::wal_dir`].
    pub fn wal_config(mut self, cfg: WalConfig) -> Self {
        self.wal_config = cfg;
        self
    }

    /// Archive swept WAL segments (compressed, CRC-framed, under each
    /// shard directory's `archive/`) instead of deleting them at
    /// checkpoint. A dedicated archiver thread per shard does the
    /// compression; a segment is only unlinked once its archive is
    /// fsync-durable. Enables point-in-time restore and archive-based
    /// replica catch-up. Only meaningful together with
    /// [`ServerBuilder::wal_dir`].
    pub fn wal_archive(mut self, on: bool) -> Self {
        self.wal_config.archive = on;
        self
    }

    /// Override the WAL's I/O layer (fault injection in tests). Only
    /// meaningful together with [`ServerBuilder::wal_dir`].
    pub fn wal_io(mut self, io: SharedIo) -> Self {
        self.wal_io = Some(io);
        self
    }

    /// Maintain a per-shard append-only columnar store of the committed
    /// event stream (`hist/` under each shard's WAL directory), serving
    /// [`Command::Query`] and retroactive trigger activation
    /// (`Activate { replay_history: true }`). Requires
    /// [`ServerBuilder::wal_dir`]: ingestion is gated on WAL
    /// durability, and a store that lost its tail rebuilds from the
    /// log. Off by default — without it the engine's event tap stays
    /// uninstalled and the commit path is untouched.
    pub fn history(mut self, on: bool) -> Self {
        self.history = on;
        self
    }

    /// Override the default [`HistConfig`] (rows per sealed segment).
    /// Only meaningful together with [`ServerBuilder::history`].
    pub fn hist_config(mut self, cfg: HistConfig) -> Self {
        self.hist_config = cfg;
        self
    }

    /// Run as a read replica of the node at `source`: refuse
    /// mutations with `read_only_replica`, tail the upstream's WAL
    /// stream, and serve reads, stats, and subscriptions from the
    /// applied state. Combine with [`ServerBuilder::wal_dir`] to give
    /// the replica a local log for catch-up restart.
    ///
    /// The upstream may itself be a replica (a cascading tree): any
    /// WAL-backed node re-serves `Replicate` from its re-logged local
    /// log. Call this repeatedly to list fallback upstreams; when the
    /// current one dies (or turns out stale), the runner rotates to
    /// the next under its capped-jitter backoff (re-parenting).
    pub fn replicate_from(mut self, source: ReplSource) -> Self {
        self.replicate_from.push(source);
        self
    }

    /// Inject deterministic faults into the replication stream, keyed
    /// by received-record count (see [`StreamFault`]). Test hook; only
    /// meaningful together with [`ServerBuilder::replicate_from`].
    pub fn repl_fault_plan(mut self, plan: HashMap<u64, StreamFault>) -> Self {
        self.repl_fault_plan = plan;
        self
    }

    /// Bind the listeners, recover the WAL directory (if configured),
    /// install the firing and log sinks, and start the accept threads.
    pub fn start(self) -> std::io::Result<Server> {
        let is_replica = !self.replicate_from.is_empty();
        let n = self.shards;
        if self.history && self.wal_dir.is_none() {
            return Err(std::io::Error::other(
                "history requires a WAL directory: ingestion is durability-gated \
                 and a lost store tail rebuilds by replaying the log",
            ));
        }
        // Shard 0 is the caller's handle (its external clones stay
        // live); the rest start empty.
        let mut handles = vec![self.db];
        for _ in 1..n {
            handles.push(SharedDatabase::new(Database::new()));
        }
        // Per shard: the LSN of the record most recently appended
        // through that shard's log sink. All appends happen on the
        // committing thread with that shard's engine locked, and the
        // commit record is the last append before the engine delivers
        // the committed-event tap — so at tap time this holds exactly
        // the commit record's LSN, pairing each history batch with the
        // WAL position that makes it durable.
        let cur_lsns: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut hist: Vec<Arc<HistStore>> = Vec::new();
        let mut event_taps: Vec<EventTap> = Vec::new();
        // Recover *before* installing the log sinks: replayed ops must
        // not be re-appended to the logs they came from. A replica
        // bootstraps through per-shard `Applier`s instead of
        // `restore_into` so the id maps of transactions its local logs
        // left open stay live for the stream to resume mid-transaction.
        // A replica also recovers *raw* (no cross-shard reconciliation):
        // everything in its local logs was shipped by a primary that
        // had already decided commit, so demoting a `Commit2pc` whose
        // sibling hasn't arrived yet would fork its history.
        let mut appliers: Vec<Applier> = (0..n).map(|_| Applier::new()).collect();
        let mut epoch_table = EpochTable::new();
        let mut epoch_store: Option<(SharedIo, PathBuf)> = None;
        let wal = match &self.wal_dir {
            None => None,
            Some(dir) => {
                let io = self
                    .wal_io
                    .clone()
                    .unwrap_or_else(|| SharedIo::new(StdIo::new()));
                let schema_path = dir.join("schema.wal");
                // An injected io (fault plans in tests) is shared by
                // every shard so the plan sees all traffic; the default
                // gives each shard its own handle, so shard flushers
                // fsync in parallel instead of queuing on one io mutex.
                let ios: Vec<SharedIo> = match &self.wal_io {
                    Some(custom) => vec![custom.clone(); n],
                    None => std::iter::once(io.clone())
                        .chain((1..n).map(|_| SharedIo::new(StdIo::new())))
                        .collect(),
                };
                let open = if is_replica {
                    ShardedWal::open_raw_per_shard(dir, self.wal_config, ios)
                } else {
                    ShardedWal::open_per_shard(dir, self.wal_config, ios)
                };
                let (wal, recovery) = open.map_err(|e| std::io::Error::other(e.to_string()))?;
                // Shards recover in parallel, so the user-visible
                // recovery time is the slowest shard's, not the sum.
                let recovery_ms = recovery
                    .shards
                    .iter()
                    .map(|r| r.report.total_us / 1_000)
                    .max()
                    .unwrap_or(0);
                let segments_replayed = recovery
                    .shards
                    .iter()
                    .map(|r| r.report.segments.len() as u64)
                    .sum();
                // Load the epoch table and heal the promote crash
                // window: a bump that reached a shard WAL but not the
                // table (crash between the two appends) is merged back
                // in from the recovered ops, so the node always comes
                // back at the epoch its log proves — never an older
                // one.
                epoch_table =
                    EpochTable::load(&io, dir).map_err(|e| std::io::Error::other(e.to_string()))?;
                for (s, rec) in recovery.shards.iter().enumerate() {
                    let fresh = epoch_table.merge_bumps(s as u64, rec.base_lsn, &rec.ops);
                    EpochTable::append(&io, dir, &fresh)
                        .map_err(|e| std::io::Error::other(e.to_string()))?;
                }
                epoch_store = Some((io.clone(), dir.clone()));
                let specs = load_schema(&io, &schema_path).map_err(std::io::Error::other)?;
                if self.history {
                    for (s, rec) in recovery.shards.iter().enumerate() {
                        // A shard with a demoted Commit2pc had that
                        // record rewritten to an Abort in memory only —
                        // sealed history at or past the recovered base
                        // may contain the phantom commit, so rebuild
                        // everything the snapshot doesn't cover.
                        let demoted = recovery.report.demoted.iter().any(|(ds, _)| *ds == s);
                        let valid_excl = if demoted {
                            rec.base_lsn
                        } else {
                            rec.base_lsn + rec.ops.len() as u64
                        };
                        let hdir = shard_dir(dir, s, n).join("hist");
                        let store = HistStore::open(&hdir, self.hist_config, valid_excl)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        hist.push(Arc::new(store));
                        let tap_store = Arc::clone(&hist[s]);
                        let cur = Arc::clone(&cur_lsns[s]);
                        let tap: EventTap =
                            Arc::new(move |txn: TxnId, now: u64, events: &[TapEvent]| {
                                tap_store.submit(Batch {
                                    lsn: cur.load(Ordering::SeqCst),
                                    txn: txn.0,
                                    time: now,
                                    events: events.to_vec(),
                                });
                            });
                        event_taps.push(tap);
                    }
                }
                for (s, rec) in recovery.shards.iter().enumerate() {
                    appliers[s] = handles[s]
                        .with(|db| -> Result<Applier, String> {
                            for spec in &specs {
                                let def = compile_class(spec).map_err(|e| e.to_string())?;
                                db.define_class(def).map_err(|e| e.to_string())?;
                            }
                            if let Some(store) = hist.get(s) {
                                // History backfill: the recovered tail
                                // is on disk by definition, so durability
                                // is pre-advanced over all of it; the tap
                                // goes in *before* replay so re-applied
                                // ops re-submit their batches — the store
                                // drops everything below its rebuild
                                // cursor, so only the lost suffix
                                // re-indexes, with identical rows.
                                db.set_event_tap(Some(event_taps[s].clone()));
                                let head = rec.base_lsn + rec.ops.len() as u64;
                                if head > 0 {
                                    store.advance_durable_through(head - 1);
                                }
                                if let Some(snap) = &rec.snapshot {
                                    db.restore(snap).map_err(|e| e.to_string())?;
                                }
                                let mut a = Applier::resume(db, rec.base_lsn);
                                for (i, op) in rec.ops.iter().enumerate() {
                                    let lsn = rec.base_lsn + i as u64;
                                    cur_lsns[s].store(lsn, Ordering::SeqCst);
                                    a.apply(db, lsn, op).map_err(|e| e.to_string())?;
                                }
                                db.take_output();
                                for (code, name) in db.class_names().iter().enumerate() {
                                    store.observe_class(code as u32, name);
                                }
                                // A primary discards the applier; a
                                // replica keeps its id maps live so the
                                // stream can resume mid-transaction.
                                if is_replica {
                                    Ok(a)
                                } else {
                                    Ok(Applier::new())
                                }
                            } else if is_replica {
                                Applier::bootstrap(db, rec).map_err(|e| e.to_string())
                            } else {
                                rec.restore_into(db).map_err(|e| e.to_string())?;
                                // Replay re-emits historical firing
                                // lines; don't serve them as fresh
                                // output.
                                db.take_output();
                                Ok(Applier::new())
                            }
                        })
                        .map_err(std::io::Error::other)?;
                }
                Some(Arc::new(WalState {
                    wal,
                    io,
                    dir: dir.clone(),
                    schema_path,
                    read_only: AtomicBool::new(false),
                    repl_subs: (0..n)
                        .map(|_| Arc::new(Mutex::new(HashMap::new())))
                        .collect(),
                    recovery_ms,
                    segments_replayed,
                }))
            }
        };
        // Checkpoints sweep bump records out of the log, so the
        // appliers' fencing cursors floor at the table's history
        // epoch rather than whatever bumps the recovered tail held.
        for a in appliers.iter_mut() {
            a.set_epoch(epoch_table.history_epoch());
        }
        let epochs = Arc::new(EpochState::new(epoch_table, epoch_store));
        // Wrap the recovered engines; the global commit sequence
        // resumes above every shard's recovered floor.
        let db = ShardedDatabase::from_shared(handles);

        let mut log_sinks: Vec<LogSink> = Vec::new();
        let mut wal_flushers = Vec::new();
        let mut wal_archivers = Vec::new();
        if let Some(ws) = &wal {
            for (s, shard_cur) in cur_lsns.iter().enumerate() {
                // Shipping happens in each shard's durable sink:
                // records reach that shard's replication subscribers
                // only once its durable watermark covers them, so a
                // primary crash can never have shipped a record its own
                // recovery then loses. The sink runs under the shard
                // WAL's disk lock — the same lock its `frozen`
                // handshake holds — so the handoff from history to live
                // stream has no gap and no duplicate. Capturing only
                // the subscriber map (not the WalState) keeps the WAL
                // out of an Arc cycle.
                let sink_subs = Arc::clone(&ws.repl_subs[s]);
                let sink_hist = hist.get(s).cloned();
                let sink_epoch = epochs.cell();
                let shard = s as u64;
                ws.wal.wal(s).set_durable_sink(Some(Arc::new(
                    move |records: &[DurableRecord]| {
                        // The history indexer applies a batch only once
                        // the WAL covers its LSN; this watermark bump is
                        // a mutex store + notify, safe under any fsync
                        // policy (inline policies publish on the
                        // committing thread).
                        if let (Some(store), Some(last)) = (&sink_hist, records.last()) {
                            store.advance_durable_through(last.lsn);
                        }
                        let subs = sink_subs.lock();
                        if subs.is_empty() || records.is_empty() {
                            return;
                        }
                        let head = records.last().expect("non-empty").lsn + 1;
                        let epoch = sink_epoch.load(Ordering::SeqCst);
                        for r in records {
                            let msg = ServerMsg::ReplOp {
                                shard,
                                lsn: r.lsn,
                                head,
                                frame: hex_encode(&r.frame),
                                epoch,
                            };
                            // Serialized once per record no matter how
                            // many replicas tail this shard.
                            let frame = SharedFrame::new();
                            for tx in subs.values() {
                                let _ = tx.send_shared(&msg, &frame);
                            }
                        }
                    },
                )));
                // Runs with the shard's engine locked, on the
                // committing thread. Under the group policies this only
                // buffers and assigns the LSN — the fsync happens on
                // the shard's flusher thread, and the session waits for
                // it *outside* every lock (see `Command::Commit`).
                // Errors poison that shard's wal; the session that
                // triggered the write surfaces them from `handle_line`.
                let sink_wal = ws.wal.wal(s).clone();
                let sink_cur = Arc::clone(shard_cur);
                let sink: LogSink = Arc::new(move |op: &LogOp| {
                    if let Ok(lsn) = sink_wal.append(op) {
                        sink_cur.store(lsn, Ordering::SeqCst);
                        lsns_note(s, lsn);
                    }
                });
                log_sinks.push(Arc::clone(&sink));
                db.shard(s).set_log_sink(Some(sink));
            }
            wal_flushers = ws.wal.start_flushers();
            wal_archivers = ws.wal.start_archivers();
        }

        let subscriber_drops = Arc::new(AtomicU64::new(0));
        let subs: Subscribers = Arc::new(Mutex::new(HashMap::new()));
        let mut firing_sinks: Vec<FiringSink> = Vec::new();
        for s in 0..n {
            let sink_subs = Arc::clone(&subs);
            let sink_drops = Arc::clone(&subscriber_drops);
            let sink: FiringSink = Arc::new(move |notice: &FiringNotice| {
                let msg = ServerMsg::Firing(Firing::from_notice(notice, s, n));
                // This closure runs with the engine locked: serialize
                // the frame once, then fan out pointer pushes only —
                // the loop (or writer threads) do the socket I/O.
                let frame = SharedFrame::new();
                for tx in sink_subs.lock().values() {
                    if tx.send_shared(&msg, &frame).is_err() {
                        sink_drops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            firing_sinks.push(Arc::clone(&sink));
            db.shard(s).set_firing_sink(Some(sink));
        }

        let repl = if is_replica {
            Some(Arc::new(ReplicaState::new(
                appliers.iter().map(|a| a.next_lsn()).collect(),
            )))
        } else {
            None
        };
        let inner = Arc::new(Shared {
            db,
            config: self.config,
            shutdown: AtomicBool::new(false),
            subs,
            conn_threads: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            wal,
            epochs,
            subscriber_drops,
            conns_open: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            repl,
            log_sinks,
            firing_sinks,
            event_taps,
            hist,
        });

        let mut repl_thread = None;
        if is_replica {
            let inner2 = Arc::clone(&inner);
            let sources = self.replicate_from;
            let plan = self.repl_fault_plan;
            repl_thread = Some(thread::spawn(move || {
                run_replica(inner2, sources, appliers, plan)
            }));
        }

        let mut accept_threads = Vec::new();
        let mut listeners: Vec<ListenSocket> = Vec::new();
        let thread_per_conn = inner.config.thread_per_conn;
        let mut tcp_addr = None;
        if let Some(addr) = &self.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            if thread_per_conn {
                let inner2 = Arc::clone(&inner);
                accept_threads.push(thread::spawn(move || accept_tcp(inner2, listener)));
            } else {
                listeners.push(ListenSocket::Tcp(listener));
            }
        }
        let mut unix_path = None;
        if let Some(path) = &self.unix {
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            if thread_per_conn {
                let inner2 = Arc::clone(&inner);
                accept_threads.push(thread::spawn(move || accept_unix(inner2, listener)));
            } else {
                listeners.push(ListenSocket::Unix(listener));
            }
        }
        let reactor = if thread_per_conn || listeners.is_empty() {
            None
        } else {
            Some(start_reactor(Arc::clone(&inner), listeners)?)
        };

        Ok(Server {
            inner,
            accept_threads,
            reactor,
            repl_thread,
            wal_flushers,
            wal_archivers,
            tcp_addr,
            unix_path,
            stopped: false,
        })
    }
}

/// A running server. Dropping it shuts it down (joining all threads).
pub struct Server {
    inner: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    reactor: Option<ReactorHandle>,
    repl_thread: Option<JoinHandle<()>>,
    wal_flushers: Vec<WalFlusher>,
    wal_archivers: Vec<WalArchiver>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    stopped: bool,
}

impl Server {
    /// Start configuring a server over `db`. Installs the engine's
    /// firing sink on [`ServerBuilder::start`].
    pub fn builder(db: SharedDatabase) -> ServerBuilder {
        ServerBuilder {
            db,
            shards: 1,
            config: ServerConfig::default(),
            tcp: None,
            unix: None,
            wal_dir: None,
            wal_config: WalConfig::default(),
            wal_io: None,
            replicate_from: Vec::new(),
            repl_fault_plan: HashMap::new(),
            history: false,
            hist_config: HistConfig::default(),
        }
    }

    /// The bound TCP address, if TCP was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if one was requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The underlying database handle (shard 0 — the whole database
    /// unless the server runs sharded).
    pub fn db(&self) -> &SharedDatabase {
        self.inner.db.shard(0)
    }

    /// The sharded database coordinator (all shards).
    pub fn sharded_db(&self) -> &ShardedDatabase {
        &self.inner.db
    }

    /// A shard's event-history store (`None` when started without
    /// [`ServerBuilder::history`] or out of range). Test/bench hook.
    pub fn hist(&self, shard: usize) -> Option<Arc<HistStore>> {
        self.inner.hist.get(shard).cloned()
    }

    /// Graceful shutdown: stop accepting, wake every session (each
    /// aborts its open transaction), join all threads, uninstall the
    /// firing sink, and remove the Unix socket file.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.repl_thread.take() {
            let _ = h.join();
        }
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(mut r) = self.reactor.take() {
            // Wake the loop so it notices the flag; it tears down
            // every connection and exits, dropping the worker
            // injector; the workers then drain and exit.
            r.notify.waker.wake();
            if let Some(h) = r.loop_thread.take() {
                let _ = h.join();
            }
            for h in r.workers.drain(..) {
                let _ = h.join();
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.conn_threads.lock());
        for h in handles {
            let _ = h.join();
        }
        for shard in self.inner.db.shards() {
            shard.set_firing_sink(None);
            shard.set_log_sink(None);
            shard.set_event_tap(None);
        }
        // Every session is gone, so no more appends: drain the pending
        // queues (each flusher's stop does a final flush), then push
        // any EveryN/Never-policy unsynced bytes to disk, best effort.
        for f in self.wal_flushers.drain(..) {
            f.stop();
        }
        if let Some(ws) = &self.inner.wal {
            let _ = ws.wal.sync_all();
            for w in ws.wal.wals() {
                w.set_durable_sink(None);
            }
        }
        // Archivers stop last (after the final sync): their stop does a
        // final drain, so segments retired by a late checkpoint still
        // reach the archive before the process exits.
        for a in self.wal_archivers.drain(..) {
            a.stop();
        }
        if let Some(p) = &self.unix_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_tcp(inner: Arc<Shared>, listener: TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_session(&inner, Conn::Tcp(stream)),
            Err(_) => thread::sleep(inner.config.poll_interval),
        }
    }
}

fn accept_unix(inner: Arc<Shared>, listener: UnixListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_session(&inner, Conn::Unix(stream)),
            Err(_) => thread::sleep(inner.config.poll_interval),
        }
    }
}

fn spawn_session(inner: &Arc<Shared>, conn: Conn) {
    if let Some(max) = inner.config.max_conns {
        if inner.conns_open.load(Ordering::SeqCst) >= max {
            inner.conns_rejected.fetch_add(1, Ordering::SeqCst);
            let mut c = conn;
            if let Ok(mut line) = serde_json::to_string(&ServerMsg::Reply {
                id: 0,
                result: ReplyResult::Err(WireError {
                    code: "server_full".to_string(),
                    message: format!("connection limit ({max}) reached; retry later"),
                    retryable: true,
                }),
            }) {
                line.push('\n');
                let _ = c.write_all(line.as_bytes());
            }
            c.shutdown_both();
            return;
        }
    }
    let conn_id = inner.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
    let write_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    inner.conns_open.fetch_add(1, Ordering::SeqCst);
    let (tx, rx) = mpsc::channel::<ServerMsg>();
    let drops = Arc::clone(&inner.subscriber_drops);
    let writer = thread::spawn(move || writer_loop(write_conn, rx, drops));
    let inner2 = Arc::clone(inner);
    let reader = thread::spawn(move || session_loop(inner2, conn_id, conn, Sink::Channel(tx)));
    inner.conn_threads.lock().extend([writer, reader]);
}

/// Drop every server-side registration a connection holds: its
/// subscription entry, its per-shard replication-stream entries, and
/// its slot in the open-connection count. Both server modes and every
/// disconnect path (shutdown, peer EOF, socket error) funnel through
/// here, so a teardown can never leak a registration. The session's
/// open transaction is released separately by whoever owns the session
/// state at teardown time (the reactor's reap handshake or the legacy
/// session loop's tail).
pub(crate) fn release_session(inner: &Shared, conn_id: u64) {
    inner.subs.lock().remove(&conn_id);
    if let Some(ws) = &inner.wal {
        for subs in &ws.repl_subs {
            subs.lock().remove(&conn_id);
        }
    }
    inner.conns_open.fetch_sub(1, Ordering::SeqCst);
}

/// Drain the outbox to the socket; exits when every sender (session
/// loop + subscription entry) is gone or the peer stops reading. Firing
/// notifications stranded by a dead socket count as subscriber drops.
fn writer_loop(mut conn: Conn, rx: mpsc::Receiver<ServerMsg>, drops: Arc<AtomicU64>) {
    while let Ok(msg) = rx.recv() {
        let Ok(mut line) = serde_json::to_string(&msg) else {
            continue;
        };
        line.push('\n');
        if conn.write_all(line.as_bytes()).is_err() {
            let stranded = std::iter::once(msg)
                .chain(rx.try_iter())
                .filter(|m| matches!(m, ServerMsg::Firing(_)))
                .count();
            drops.fetch_add(stranded as u64, Ordering::Relaxed);
            break;
        }
    }
    conn.shutdown_both();
}

pub(crate) fn notice(code: &str, message: String) -> ServerMsg {
    ServerMsg::Reply {
        id: 0,
        result: ReplyResult::Err(WireError {
            code: code.to_string(),
            message,
            retryable: false,
        }),
    }
}

fn session_loop(inner: Arc<Shared>, conn_id: u64, mut conn: Conn, tx: Sink) {
    let _ = conn.set_blocking();
    let _ = conn.set_read_timeout(Some(inner.config.poll_interval));
    let mut lines = LineReader::new(inner.config.max_line_bytes);
    let mut open_txn: Option<TxnId> = None;
    let mut last_activity = Instant::now();
    // Set once this connection sends `Replicate`; the session then
    // reports the head periodically so an idle replica tracks lag.
    let mut replicating = false;
    let mut last_heartbeat = Instant::now();

    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if replicating && last_heartbeat.elapsed() >= HEARTBEAT_INTERVAL {
            last_heartbeat = Instant::now();
            if let Some(ws) = &inner.wal {
                // The heads a replica should chase are the durable
                // ones: buffered-but-unflushed records aren't
                // shippable yet. One report per shard stream.
                let epoch = inner.epochs.history_epoch();
                for s in 0..ws.wal.shard_count() {
                    let _ = tx.send(ServerMsg::ReplHeartbeat {
                        shard: s as u64,
                        head: ws.wal.wal(s).durable_lsn(),
                        epoch,
                    });
                }
            }
        }
        if let (Some(t), Some(limit)) = (open_txn, inner.config.txn_idle_timeout) {
            if last_activity.elapsed() >= limit {
                let _ = inner.db.abort(t);
                open_txn = None;
                let _ = tx.send(notice(
                    "txn_timeout",
                    "open transaction aborted after idle timeout".to_string(),
                ));
            }
        }
        match lines.read_event(&mut conn) {
            Ok(LineEvent::Line(line)) => {
                last_activity = Instant::now();
                handle_line(&inner, conn_id, &line, &mut open_txn, &tx, &mut replicating);
            }
            Ok(LineEvent::Tick) => continue,
            Ok(LineEvent::Overlong) => {
                let _ = tx.send(notice(
                    "overlong",
                    format!("request line exceeds {} bytes", inner.config.max_line_bytes),
                ));
            }
            Ok(LineEvent::Eof) | Err(_) => break,
        }
    }

    // Disconnect (or shutdown): release everything the session held.
    release_session(&inner, conn_id);
    if let Some(t) = open_txn {
        let _ = inner.db.abort(t);
    }
    conn.shutdown_both();
    // `tx` drops here; the writer flushes its queue and exits.
}

pub(crate) fn handle_line(
    inner: &Arc<Shared>,
    conn_id: u64,
    line: &str,
    open_txn: &mut Option<TxnId>,
    tx: &Sink,
    replicating: &mut bool,
) {
    if line.trim().is_empty() {
        return;
    }
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(notice("parse", format!("malformed request: {e}")));
            return;
        }
    };
    let is_mutation = mutates(&req.cmd);
    let mut result = match execute(inner, conn_id, req.id, req.cmd, open_txn, tx, replicating) {
        Ok(reply) => ReplyResult::Ok(reply),
        Err(e) => ReplyResult::Err(e),
    };
    // Degradation check: if a mutating command left the WAL poisoned,
    // the engine may have state the log does not. Latch read-only,
    // abort the session's transaction, and answer a retryable `wal`
    // error — even over an in-memory success: a commit whose log record
    // never reached disk will not survive recovery, so the client must
    // treat it as failed.
    let refused = matches!(&result, ReplyResult::Err(e) if e.code == "read_only");
    if is_mutation && !refused {
        if let Some(ws) = &inner.wal {
            if let Some(msg) = ws.wal.poisoned() {
                ws.read_only.store(true, Ordering::SeqCst);
                if let Some(t) = open_txn.take() {
                    let _ = inner.db.abort(t);
                }
                result = ReplyResult::Err(WireError {
                    code: "wal".to_string(),
                    message: format!("write-ahead log failed; server is now read-only: {msg}"),
                    retryable: true,
                });
            }
        }
    }
    let _ = tx.send(ServerMsg::Reply { id: req.id, result });
}

/// Commands the WAL must capture (state writers). Everything else —
/// reads, aborts, subscriptions — stays allowed in read-only mode:
/// aborts need no durability because recovery discards uncommitted
/// effects anyway.
fn mutates(cmd: &Command) -> bool {
    !matches!(
        cmd,
        Command::Ping
            | Command::Abort
            | Command::Snapshot
            | Command::Stats
            | Command::Subscribe
            | Command::Unsubscribe
            | Command::TakeOutput
            | Command::PeekField { .. }
            | Command::Replicate { .. }
            | Command::Promote { .. }
            | Command::Demote { .. }
            | Command::Query { .. }
    )
}

/// Read the framed `ClassSpec` records from `schema.wal`. A missing
/// file means no wire-defined classes; a torn trailing record (crash
/// between define and append) is truncated away like an op-log tail.
/// Public so out-of-process restore tools (`ode_server --wal-restore`)
/// can rebuild the class table before replaying restored ops.
pub fn load_schema(io: &SharedIo, path: &Path) -> Result<Vec<ClassSpec>, String> {
    let bytes = match io.with(|io| io.read(path)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("schema wal: {e}")),
    };
    let (frames, tail) = frame::decode_all(&bytes)
        .map_err(|e| format!("schema wal corrupt at offset {}: {}", e.offset, e.reason))?;
    if let frame::Tail::Torn { offset } = tail {
        io.with(|io| io.truncate(path, offset))
            .map_err(|e| format!("schema wal: {e}"))?;
    }
    let mut specs = Vec::with_capacity(frames.len());
    for f in &frames {
        let json = std::str::from_utf8(f).map_err(|e| format!("schema wal: {e}"))?;
        specs.push(serde_json::from_str(json).map_err(|e| format!("schema wal: {e}"))?);
    }
    Ok(specs)
}

/// Append one framed `ClassSpec` to `schema.wal` and fsync it. Called
/// with the engine locked, right after the in-memory define succeeds.
pub(crate) fn append_schema(io: &SharedIo, path: &Path, spec: &ClassSpec) -> Result<(), String> {
    let json = serde_json::to_string(spec).map_err(|e| e.to_string())?;
    let rec = frame::encode(json.as_bytes());
    io.with(|io| {
        io.append(path, &rec)?;
        io.fsync(path)
    })
    .map_err(|e| e.to_string())
}

/// Build the `ReplArchive` messages that carry a shard's compressed
/// archive chain from `from_lsn` up to (at least) `upto` — replica
/// catch-up without a snapshot bootstrap. Returns `None` when the chain
/// has a gap, an unreadable file, or simply doesn't reach `upto`; the
/// caller then falls back to the snapshot. Best-effort by design: an
/// archiver that is mid-drain or disabled must never fail a handshake.
fn archive_catchup(
    io: &SharedIo,
    dir: &Path,
    shard: u64,
    from_lsn: u64,
    upto: u64,
    epoch: u64,
) -> Option<Vec<ServerMsg>> {
    let entries = list_archives(io, dir).ok()?;
    let adir = archive_dir(dir);
    let mut msgs = Vec::new();
    let mut cov = from_lsn;
    for (_, _, _, name) in entries {
        if cov >= upto {
            break;
        }
        let meta = read_archive_meta(io, &adir.join(&name)).ok()?;
        let end = meta.base_lsn + meta.records;
        if end <= cov {
            continue; // wholly before the replica's cursor
        }
        if meta.base_lsn > cov {
            return None; // gap: chain doesn't reach back to the cursor
        }
        let bytes = read_archive_bytes(io, dir, &name).ok()?;
        msgs.push(ServerMsg::ReplArchive {
            shard,
            base_lsn: meta.base_lsn,
            records: meta.records,
            data: hex_encode(&bytes),
            epoch,
        });
        cov = end;
    }
    (cov >= upto).then_some(msgs)
}

fn no_txn() -> WireError {
    WireError::new("no_txn", "no open transaction in this session")
}

/// Close out a transactional engine call: if the engine finalized the
/// transaction while failing (trigger-requested abort), forget it.
fn finish<T>(
    inner: &Shared,
    open_txn: &mut Option<TxnId>,
    t: TxnId,
    r: Result<T, ode_db::OdeError>,
) -> Result<T, WireError> {
    match r {
        Ok(v) => Ok(v),
        Err(e) => {
            if !inner.db.txn_open(t) {
                *open_txn = None;
            }
            Err(WireError::from_ode(&e))
        }
    }
}

fn execute(
    inner: &Arc<Shared>,
    conn_id: u64,
    req_id: u64,
    cmd: Command,
    open_txn: &mut Option<TxnId>,
    tx: &Sink,
    replicating: &mut bool,
) -> Result<Reply, WireError> {
    if let Some(ws) = &inner.wal {
        if mutates(&cmd) && ws.read_only.load(Ordering::SeqCst) {
            return Err(WireError::new(
                "read_only",
                "server is read-only after a write-ahead log failure; restart to recover",
            ));
        }
    }
    // A deposed node's write authority is revoked: an epoch beyond
    // its history exists elsewhere, so anything committed here from
    // now on would be fork debris the fence discards on rejoin.
    if mutates(&cmd) && inner.epochs.is_deposed() {
        return Err(WireError::new(
            "deposed",
            format!(
                "this node was deposed at epoch {}; write through the new primary",
                inner.epochs.observed_epoch()
            ),
        ));
    }
    // An unpromoted replica refuses every state writer except its own
    // local `Checkpoint` (log maintenance): writes belong on the
    // primary, and the stream is the only mutation source here.
    if let Some(rs) = &inner.repl {
        if mutates(&cmd)
            && !rs.promoted.load(Ordering::SeqCst)
            && !matches!(cmd, Command::Checkpoint)
        {
            return Err(WireError::new(
                "read_only_replica",
                "this server is a read replica; write through the primary or Promote it",
            ));
        }
    }
    match cmd {
        Command::Ping => Ok(Reply::Pong),
        Command::DefineClass(spec) => {
            let def = compile_class(&spec).map_err(|e| WireError::from_ode(&e))?;
            match &inner.wal {
                None => {
                    inner
                        .db
                        .define_class(&def)
                        .map_err(|e| WireError::from_ode(&e))?;
                }
                // Define on every shard and append the schema record
                // while holding *all* engine locks (acquired in shard
                // order, like 2PC), so no shard can log an op that
                // references the class before the class record is
                // durable. A crash between the two tears the schema.wal
                // tail harmlessly (truncated on recovery).
                Some(ws) => {
                    let shard_count = inner.db.shard_count();
                    let mut guards: Vec<_> =
                        (0..shard_count).map(|s| inner.db.shard(s).lock()).collect();
                    for (s, g) in guards.iter_mut().enumerate() {
                        let cid = g
                            .define_class(def.clone())
                            .map_err(|e| WireError::from_ode(&e))?;
                        if let Some(store) = inner.hist.get(s) {
                            store.observe_class(cid.0, &def.name);
                        }
                    }
                    append_schema(&ws.io, &ws.schema_path, &spec).map_err(|msg| {
                        ws.read_only.store(true, Ordering::SeqCst);
                        WireError {
                            code: "wal".to_string(),
                            message: format!("schema log write failed: {msg}"),
                            retryable: true,
                        }
                    })?;
                    // Ship the new class while each shard's WAL is
                    // frozen so it serializes with that shard's
                    // Replicate handshake (which reads schema.wal under
                    // the same freeze).
                    for s in 0..shard_count {
                        ws.wal.wal(s).frozen(|_| {
                            for rtx in ws.repl_subs[s].lock().values() {
                                let _ = rtx.send(ServerMsg::ReplSchema(spec.clone()));
                            }
                        });
                    }
                }
            }
            Ok(Reply::Unit)
        }
        Command::Begin { user } => {
            if open_txn.is_some() {
                return Err(WireError::new(
                    "txn_open",
                    "session already has an open transaction",
                ));
            }
            let t = inner.db.begin(user);
            *open_txn = Some(t);
            Ok(Reply::Begun { txn: t.0 })
        }
        Command::Commit => {
            let t = open_txn.ok_or_else(no_txn)?;
            lsns_clear();
            let r = inner.db.commit(t);
            if !inner.db.txn_open(t) {
                *open_txn = None;
            }
            r.map_err(|e| WireError::from_ode(&e))?;
            // The in-memory commit is done and every engine mutex is
            // released; other sessions proceed. Ack only once each
            // participating shard's commit record is durable — the
            // merged-watermark rule. Under group commit this blocks
            // (outside every lock) until each shard's batch fsync
            // covers its record, and one fsync releases every session
            // waiting on that shard. Inline policies are already
            // durable to their own standard, so the wait returns
            // immediately.
            if let Some(ws) = &inner.wal {
                let acks = lsns_take();
                if !acks.is_empty() {
                    ws.wal.wait_durable(&acks).map_err(|e| WireError {
                        code: "wal".to_string(),
                        message: e.to_string(),
                        retryable: true,
                    })?;
                }
            }
            Ok(Reply::Unit)
        }
        Command::Abort => {
            // Idempotent: a transaction the engine already finalized
            // (trigger abort, idle timeout) aborts to Unit as well.
            if let Some(t) = open_txn.take() {
                let _ = inner.db.abort(t);
            }
            Ok(Reply::Unit)
        }
        Command::New { class, overrides } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let ovr: Vec<(&str, Value)> = overrides
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let r = inner.db.create_object(t, &class, &ovr);
            finish(inner, open_txn, t, r).map(|id| Reply::Object { id: id.0 })
        }
        Command::Call {
            object,
            method,
            args,
        } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner.db.call(t, ObjectId(object), &method, &args);
            finish(inner, open_txn, t, r).map(Reply::Value)
        }
        Command::Delete { object } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner.db.delete_object(t, ObjectId(object));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::Activate {
            object,
            trigger,
            params,
            replay_history,
        } => {
            let t = open_txn.ok_or_else(no_txn)?;
            if !replay_history {
                let r = inner
                    .db
                    .activate_trigger(t, ObjectId(object), &trigger, &params);
                return finish(inner, open_txn, t, r).map(|()| Reply::Unit);
            }
            if inner.hist.is_empty() {
                return Err(WireError::new(
                    "no_history",
                    "replay_history requires a server started with --history",
                ));
            }
            if object == 0 {
                return Err(WireError::new("unknown_object", "object ids start at 1"));
            }
            let n = inner.db.shard_count();
            let obj = ObjectId(object);
            let store = &inner.hist[shard_of(obj, n)];
            // The replay input must cover everything this server has
            // acked: sync waits for the indexer to drain the durable
            // prefix (bounded — acked commits are durable already).
            store.sync();
            let events = store
                .object_events(to_local(obj, n).0)
                .map_err(|e| WireError::new("history", e.to_string()))?;
            let scanned = events.len() as u64;
            let r = inner
                .db
                .activate_trigger_retro(t, obj, &trigger, &params, &events);
            finish(inner, open_txn, t, r).map(|replay| Reply::Replayed {
                fired: replay.firings.len() as u64,
                scanned,
                active: replay.active,
            })
        }
        Command::Deactivate { object, trigger } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner.db.deactivate_trigger(t, ObjectId(object), &trigger);
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::AdvanceClockBy { ms } => {
            inner.db.advance_clock_by(ms);
            Ok(Reply::Unit)
        }
        Command::AdvanceClockTo { ms } => {
            inner.db.advance_clock_to(ms);
            Ok(Reply::Unit)
        }
        Command::Snapshot => {
            // Lock every shard (in shard order) so the snapshot is one
            // consistent cut across the whole partitioned store. A
            // single shard serializes to the legacy flat snapshot; more
            // serialize to a JSON array of per-shard snapshots.
            let shard_count = inner.db.shard_count();
            let mut guards: Vec<_> = (0..shard_count).map(|s| inner.db.shard(s).lock()).collect();
            let mut parts = Vec::with_capacity(shard_count);
            for g in guards.iter_mut() {
                let snap = g.snapshot().map_err(|e| WireError::from_ode(&e))?;
                parts.push(snap.to_json().map_err(|e| WireError::from_ode(&e))?);
            }
            drop(guards);
            let json = if shard_count == 1 {
                parts.pop().expect("one shard")
            } else {
                serde_json::to_string(&parts)
                    .map_err(|e| WireError::new("engine", e.to_string()))?
            };
            Ok(Reply::SnapshotTaken { json })
        }
        Command::Restore { snapshot } => {
            if inner.wal.is_some() {
                // A state jump the log never saw would desync replay.
                return Err(WireError::new(
                    "restore_unsupported",
                    "Restore is not allowed on a WAL-backed server; use Checkpoint and recovery",
                ));
            }
            let shard_count = inner.db.shard_count();
            let parts: Vec<String> = if shard_count == 1 {
                vec![snapshot]
            } else {
                serde_json::from_str(&snapshot).map_err(|e| {
                    WireError::new(
                        "bad_snapshot",
                        format!("a {shard_count}-shard server restores a JSON array of {shard_count} per-shard snapshots: {e}"),
                    )
                })?
            };
            if parts.len() != shard_count {
                return Err(WireError::new(
                    "bad_snapshot",
                    format!(
                        "snapshot has {} shard part(s), server runs {shard_count}",
                        parts.len()
                    ),
                ));
            }
            let mut snaps = Vec::with_capacity(shard_count);
            for p in &parts {
                snaps.push(Snapshot::from_json(p).map_err(|e| WireError::from_ode(&e))?);
            }
            let mut guards: Vec<_> = (0..shard_count).map(|s| inner.db.shard(s).lock()).collect();
            for (g, snap) in guards.iter_mut().zip(&snaps) {
                g.restore(snap).map_err(|e| WireError::from_ode(&e))?;
            }
            Ok(Reply::Unit)
        }
        Command::Checkpoint => {
            let Some(ws) = &inner.wal else {
                return Err(WireError::new(
                    "no_wal",
                    "server was started without a WAL directory",
                ));
            };
            // Snapshot and checkpoint each shard while holding *all*
            // engine locks (in shard order), so every shard's
            // checkpoint LSN matches one consistent cut (lock order
            // engine → wal, same as the log sinks). That means every
            // session stalls for the duration — measure and report it
            // so operators see the cost.
            let started = Instant::now();
            let shard_count = inner.db.shard_count();
            let mut guards: Vec<_> = (0..shard_count).map(|s| inner.db.shard(s).lock()).collect();
            let mut lsn_max = 0u64;
            let mut swept = 0u64;
            for (s, g) in guards.iter_mut().enumerate() {
                let snap = g.snapshot().map_err(|e| WireError::from_ode(&e))?;
                if let Some(store) = inner.hist.get(s) {
                    // Seal the history store's active set behind the
                    // checkpoint barrier *before* the WAL truncates:
                    // with all engine locks held no new batches can
                    // arrive, so after an fsync + watermark bump the
                    // indexer drains everything below the head and the
                    // seal leaves `covered_lsn` at or past the
                    // checkpoint — WAL truncation never strands
                    // unsealed rows.
                    let head = ws.wal.wal(s).lsn();
                    if head > 0 {
                        ws.wal.wal(s).sync().map_err(|e| WireError {
                            code: "wal".to_string(),
                            message: e.to_string(),
                            retryable: true,
                        })?;
                        store.advance_durable_through(head - 1);
                        store
                            .barrier_seal(head)
                            .map_err(|e| WireError::new("history", e.to_string()))?;
                    }
                }
                // The deferred form only *installs* the checkpoint and
                // queues the superseded generation; deletion (or the
                // archiver hand-off) runs below, after the engine locks
                // drop, so the stall figure is pure snapshot+install.
                let report = ws
                    .wal
                    .wal(s)
                    .checkpoint_deferred(&snap)
                    .map_err(|e| WireError {
                        code: "wal".to_string(),
                        message: e.to_string(),
                        retryable: true,
                    })?;
                lsn_max = lsn_max.max(report.lsn);
                swept += report.swept_segments;
            }
            drop(guards);
            let stall = started.elapsed();
            let sweep_started = Instant::now();
            ws.wal.finish_sweep_all();
            let sweep = sweep_started.elapsed();
            eprintln!(
                "checkpoint: lsn {} in {:?} (engine stalled), retired {} segment file(s), \
                 sweep {:?} off-stall",
                lsn_max, stall, swept, sweep
            );
            Ok(Reply::Checkpointed {
                lsn: lsn_max,
                swept_segments: swept,
                stall_ms: stall.as_millis() as u64,
                sweep_ms: sweep.as_millis() as u64,
            })
        }
        Command::Stats => {
            // Engine counters sum across shards; the clock is the max
            // (shards advance in lockstep, but a broadcast in flight
            // may have reached only a prefix).
            let shard_count = inner.db.shard_count();
            let mut events_posted = 0;
            let mut symbols_stepped = 0;
            let mut triggers_fired = 0;
            let mut txns_committed = 0;
            let mut txns_aborted = 0;
            let mut clock_ms = 0;
            for shard in inner.db.shards() {
                let (s, now) = shard.with(|db| (db.stats(), db.now()));
                events_posted += s.events_posted;
                symbols_stepped += s.symbols_stepped;
                triggers_fired += s.triggers_fired;
                txns_committed += s.txns_committed;
                txns_aborted += s.txns_aborted;
                clock_ms = clock_ms.max(now);
            }
            // WAL counters likewise sum across shard streams (LSNs are
            // per-shard sequences, so the sums are record counts).
            let (mut read_only, mut wal_lsn, mut durable_lsn) = (false, None, None);
            let (mut fsyncs_total, mut batches, mut max_batch) = (0, 0, 0);
            let (mut recovery_ms, mut segments_replayed) = (0, 0);
            let mut archive = ArchiveStats::default();
            if let Some(ws) = &inner.wal {
                read_only = ws.read_only.load(Ordering::SeqCst);
                recovery_ms = ws.recovery_ms;
                segments_replayed = ws.segments_replayed;
                archive = ws.wal.archive_stats();
                let mut lsn_sum = 0;
                let mut durable_sum = 0;
                for w in ws.wal.wals() {
                    let st = w.stats();
                    lsn_sum += w.lsn();
                    durable_sum += st.durable_lsn;
                    fsyncs_total += st.fsyncs_total;
                    batches += st.group_commit_batches;
                    max_batch = max_batch.max(st.group_commit_max_batch);
                }
                wal_lsn = Some(lsn_sum);
                durable_lsn = Some(durable_sum);
            }
            let (replica, repl_connected, last_applied_lsn, replica_lag_lsn, heartbeat_age) =
                match &inner.repl {
                    Some(rs) => {
                        let applied = rs.applied_sum();
                        let head = rs.head_sum().max(applied);
                        let promoted = rs.promoted.load(Ordering::SeqCst);
                        read_only = read_only || !promoted;
                        (
                            true,
                            rs.connected.load(Ordering::SeqCst),
                            Some(applied),
                            if promoted { None } else { Some(head - applied) },
                            rs.heartbeat_age_ms(),
                        )
                    }
                    None => (false, false, None, None, None),
                };
            let mut hist_segments = 0;
            let mut hist_rows = 0;
            let mut hist_disk_bytes = 0;
            let mut hist_indexed_lsns = Vec::with_capacity(inner.hist.len());
            let mut hist_queries = 0;
            let mut hist_rows_returned = 0;
            let mut hist_segments_skipped = 0;
            let mut hist_retro_replays = 0;
            for store in &inner.hist {
                let hs = store.stats();
                hist_segments += hs.segments;
                hist_rows += hs.rows;
                hist_disk_bytes += hs.disk_bytes;
                hist_indexed_lsns.push(hs.indexed_lsn);
                hist_queries += hs.queries;
                hist_rows_returned += hs.rows_returned;
                hist_segments_skipped += hs.segments_skipped;
                hist_retro_replays += hs.retro_replays;
            }
            let shard_stats = inner.db.stats();
            Ok(Reply::Stats(Box::new(WireStats {
                events_posted,
                symbols_stepped,
                triggers_fired,
                txns_committed,
                txns_aborted,
                clock_ms,
                subscriber_drops: inner.subscriber_drops.load(Ordering::Relaxed),
                conns_open: inner.conns_open.load(Ordering::SeqCst),
                conns_rejected: inner.conns_rejected.load(Ordering::SeqCst),
                read_only,
                wal_lsn,
                durable_lsn,
                fsyncs_total,
                group_commit_batches: batches,
                group_commit_max_batch: max_batch,
                replica,
                repl_connected,
                last_applied_lsn,
                replica_lag_lsn,
                shards: shard_count as u64,
                shard_commits: shard_stats.commits,
                shard_lock_wait_us: shard_stats
                    .lock_wait_ns
                    .iter()
                    .map(|ns| ns / 1_000)
                    .collect(),
                hist_enabled: !inner.hist.is_empty(),
                hist_segments,
                hist_rows,
                hist_disk_bytes,
                hist_indexed_lsns,
                hist_queries,
                hist_rows_returned,
                hist_segments_skipped,
                hist_retro_replays,
                epoch: inner.epochs.observed_epoch(),
                deposed: inner.epochs.is_deposed(),
                repl_heartbeat_age_ms: heartbeat_age,
                stale_epoch_rejections: inner.epochs.stale_rejections.load(Ordering::Relaxed),
                recovery_ms,
                segments_replayed,
                archive_segments: archive.segments_archived,
                archive_bytes: archive.bytes_archived,
                archive_lag_segments: archive.lag_segments,
            })))
        }
        Command::Subscribe => {
            inner.subs.lock().insert(conn_id, tx.clone());
            Ok(Reply::Unit)
        }
        Command::Unsubscribe => {
            inner.subs.lock().remove(&conn_id);
            Ok(Reply::Unit)
        }
        Command::TakeOutput => Ok(Reply::Output(inner.db.take_output())),
        Command::PeekField { object, field } => {
            let v = inner
                .db
                .with_obj(ObjectId(object), |db, local| db.peek_field(local, &field));
            Ok(Reply::Value(v.unwrap_or(Value::Null)))
        }
        Command::Replicate { from_lsns, epoch } => {
            let Some(ws) = &inner.wal else {
                return Err(WireError::new(
                    "no_wal",
                    "server was started without a WAL directory; nothing to replicate",
                ));
            };
            let shard_count = ws.wal.shard_count();
            if from_lsns.len() != shard_count {
                return Err(WireError::new(
                    "shard_mismatch",
                    format!(
                        "replica negotiated {} shard stream(s); this primary runs {shard_count}",
                        from_lsns.len()
                    ),
                ));
            }
            let my_epoch = inner.epochs.history_epoch();
            if epoch > my_epoch {
                // The follower has seen a primary elected past us:
                // this node is deposed, and serving its (possibly
                // forked) history downstream would spread the fork.
                inner
                    .epochs
                    .observe(epoch)
                    .map_err(|e| WireError::new("wal", e))?;
                inner
                    .epochs
                    .stale_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Err(WireError::new(
                    "stale_epoch",
                    format!("serving node is at epoch {my_epoch}, behind the stream's {epoch}"),
                ));
            }
            if inner.epochs.is_deposed() {
                return Err(WireError::new(
                    "deposed",
                    format!(
                        "this node was deposed at epoch {}; replicate from the new primary",
                        inner.epochs.observed_epoch()
                    ),
                ));
            }
            // Per shard stream: freeze that shard's WAL across scan +
            // registration. Each shard's durable sink ships under the
            // disk lock its freeze holds, so the handoff from
            // historical records to live shipping has no gap and no
            // duplicate per stream. The freeze's head is the durable
            // watermark — exactly what the on-disk scan contains, and
            // the most a primary may ever ship. Streams are negotiated
            // independently: a shard past the catch-up window
            // bootstraps from its own checkpoint snapshot.
            let mut start_lsns = Vec::with_capacity(shard_count);
            let mut heads = Vec::with_capacity(shard_count);
            for (s, &from_lsn) in from_lsns.iter().enumerate() {
                let dir = shard_dir(&ws.dir, s, shard_count);
                let (start_lsn, head) =
                    ws.wal
                        .wal(s)
                        .frozen(|head| -> Result<(u64, u64), WireError> {
                            // Fork fence, checked before the head
                            // bound: a follower claiming an older
                            // epoch whose cursor is past the first
                            // bump it hasn't seen holds records of a
                            // deposed lineage (a shared prefix would
                            // end at the bump). Tell it to discard
                            // the shard and re-replicate from zero; a
                            // cursor at or below the fence is shared
                            // history and streams normally — the bump
                            // record itself teaches the new epoch
                            // in-band.
                            if epoch < my_epoch {
                                if let Some(f) = inner.epochs.fence_lsn(s as u64, epoch) {
                                    if from_lsn > f {
                                        inner
                                            .epochs
                                            .stale_rejections
                                            .fetch_add(1, Ordering::Relaxed);
                                        let schema = load_schema(&ws.io, &ws.schema_path)
                                            .map_err(|msg| {
                                                WireError::new(
                                                    "wal",
                                                    format!("schema scan failed: {msg}"),
                                                )
                                            })?;
                                        let _ = tx.send(ServerMsg::ReplSnapshot {
                                            shard: s as u64,
                                            lsn: 0,
                                            schema,
                                            snapshot: None,
                                            epoch: my_epoch,
                                            fence_lsn: Some(f),
                                        });
                                        return Ok((0, head));
                                    }
                                }
                            }
                            if from_lsn > head {
                                return Err(WireError::new(
                                    "bad_lsn",
                                    format!(
                                "shard {s}: requested lsn {from_lsn} is beyond the durable head {head}"
                            ),
                                ));
                            }
                            let scan = SegmentReader::scan(&dir, &ws.io).map_err(|e| {
                                WireError::new("wal", format!("shard {s} log scan failed: {e}"))
                            })?;
                            let schema = load_schema(&ws.io, &ws.schema_path).map_err(|msg| {
                                WireError::new("wal", format!("schema scan failed: {msg}"))
                            })?;
                            let mut archive_msgs: Vec<ServerMsg> = Vec::new();
                            let (start_lsn, snapshot) = if from_lsn < scan.base_lsn {
                                // The live log before the checkpoint is
                                // gone. Prefer archive catch-up: when
                                // the compressed archive chain still
                                // covers [from_lsn, base), ship those
                                // archives and let the replica *replay*
                                // instead of discarding its state for a
                                // snapshot bootstrap.
                                match archive_catchup(
                                    &ws.io,
                                    &dir,
                                    s as u64,
                                    from_lsn,
                                    scan.base_lsn,
                                    my_epoch,
                                ) {
                                    Some(msgs) => {
                                        archive_msgs = msgs;
                                        (from_lsn, None)
                                    }
                                    None => {
                                        let bytes =
                                            scan.checkpoint.clone().ok_or_else(|| {
                                                WireError::new(
                                        "wal",
                                        format!(
                                    "shard {s} log starts past the requested lsn with no checkpoint"
                                ),
                                    )
                                            })?;
                                        let json = String::from_utf8(bytes).map_err(|e| {
                                            WireError::new(
                                                "wal",
                                                format!("checkpoint not utf-8: {e}"),
                                            )
                                        })?;
                                        (scan.base_lsn, Some(json))
                                    }
                                }
                            } else {
                                (from_lsn, None)
                            };
                            let _ = tx.send(ServerMsg::ReplSnapshot {
                                shard: s as u64,
                                lsn: start_lsn,
                                schema,
                                snapshot,
                                epoch: my_epoch,
                                fence_lsn: None,
                            });
                            for m in archive_msgs {
                                let _ = tx.send(m);
                            }
                            for (lsn, payload) in scan.records_from(start_lsn) {
                                let _ = tx.send(ServerMsg::ReplOp {
                                    shard: s as u64,
                                    lsn,
                                    head,
                                    frame: hex_encode(&frame::encode(payload)),
                                    epoch: my_epoch,
                                });
                            }
                            ws.repl_subs[s].lock().insert(conn_id, tx.clone());
                            Ok((start_lsn, head))
                        })?;
                start_lsns.push(start_lsn);
                heads.push(head);
            }
            *replicating = true;
            Ok(Reply::Replicating {
                start_lsns,
                heads,
                epoch: my_epoch,
            })
        }
        Command::Promote { force } => {
            let Some(rs) = &inner.repl else {
                return Err(WireError::new(
                    "not_replica",
                    "this server was not started as a replica",
                ));
            };
            if !rs.promoted.load(Ordering::SeqCst) {
                // Refuse a lagging promote: records the old primary
                // acked would silently vanish from the new lineage.
                // `force` accepts that loss — the fence demotes them
                // on every surviving node when the old primary's
                // subtree rejoins.
                if !force {
                    let applied = rs.applied_sum();
                    let head = rs.head_sum();
                    if head > applied {
                        return Err(WireError {
                            code: "promote_lagging".to_string(),
                            message: format!(
                                "replica is {} record(s) behind the last reported upstream \
                                 head; let it catch up or Promote with force:true",
                                head - applied
                            ),
                            retryable: true,
                        });
                    }
                }
                rs.stop.store(true, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while !rs.finished.load(Ordering::SeqCst) {
                    if Instant::now() >= deadline {
                        return Err(WireError {
                            code: "promote_timeout".to_string(),
                            message: "replication stream did not drain in time; retry Promote"
                                .to_string(),
                            retryable: true,
                        });
                    }
                    thread::sleep(inner.config.poll_interval);
                }
                // Bump the epoch *durably* before the first write is
                // accepted: the bump record lands in every shard WAL
                // (where it ships downstream and fences the old
                // lineage) and then in the epoch table (where it
                // survives checkpoint sweeps). A crash between the
                // two is healed by `merge_bumps` on recovery, so the
                // node can never come back writable at the old epoch.
                let new_epoch = inner.epochs.history_epoch() + 1;
                if let Some(ws) = &inner.wal {
                    let mut acks = Vec::with_capacity(ws.wal.shard_count());
                    for s in 0..ws.wal.shard_count() {
                        let lsn = ws
                            .wal
                            .wal(s)
                            .append(&LogOp::EpochBump { epoch: new_epoch })
                            .map_err(|e| WireError {
                                code: "wal".to_string(),
                                message: e.to_string(),
                                retryable: true,
                            })?;
                        acks.push((s, lsn));
                    }
                    ws.wal.wait_durable(&acks).map_err(|e| WireError {
                        code: "wal".to_string(),
                        message: e.to_string(),
                        retryable: true,
                    })?;
                    for &(s, lsn) in &acks {
                        inner
                            .epochs
                            .note_start(new_epoch, s as u64, lsn)
                            .map_err(|e| WireError::new("wal", e))?;
                    }
                } else {
                    for (s, applied) in rs.applied.iter().enumerate() {
                        inner
                            .epochs
                            .note_start(new_epoch, s as u64, applied.load(Ordering::SeqCst))
                            .map_err(|e| WireError::new("wal", e))?;
                    }
                }
                rs.promoted.store(true, Ordering::SeqCst);
            }
            Ok(Reply::Promoted {
                lsn: rs.applied_sum(),
                epoch: inner.epochs.history_epoch(),
            })
        }
        Command::Demote { epoch } => {
            // An announcement, not a mutation: record that `epoch`
            // exists. If that's news beyond this node's own history,
            // the deposed latch flips and mutations start answering
            // `deposed`.
            inner
                .epochs
                .observe(epoch)
                .map_err(|e| WireError::new("wal", e))?;
            Ok(Reply::Demoted {
                epoch: inner.epochs.observed_epoch(),
            })
        }
        Command::Query {
            class,
            object,
            kind,
            qualifier,
            args,
            min_seq,
            max_seq,
            min_time,
            max_time,
            limit,
        } => {
            if inner.hist.is_empty() {
                return Err(WireError::new(
                    "no_history",
                    "server was started without --history; the event-history store is off",
                ));
            }
            let qualifier = match qualifier.as_deref() {
                None => None,
                Some("before") => Some(Qualifier::Before),
                Some("after") => Some(Qualifier::After),
                Some(other) => {
                    return Err(WireError::new(
                        "bad_query",
                        format!("unknown qualifier {other:?}; use \"before\" or \"after\""),
                    ))
                }
            };
            let mut preds = Vec::with_capacity(args.len());
            for (index, op, value) in &args {
                let op = CmpOp::parse(op).ok_or_else(|| {
                    WireError::new(
                        "bad_query",
                        format!("unknown arg predicate op {op:?}; use eq|ne|lt|le|gt|ge"),
                    )
                })?;
                preds.push(ArgPred {
                    index: *index as usize,
                    op,
                    value: value.clone(),
                });
            }
            // A hard server-side ceiling bounds the stream even when
            // the client asks for everything; `truncated` tells them
            // to narrow the query.
            const MAX_QUERY_ROWS: usize = 10_000;
            let cap = limit
                .map(|l| l as usize)
                .unwrap_or(MAX_QUERY_ROWS)
                .min(MAX_QUERY_ROWS);
            let n = inner.db.shard_count();
            // An object filter pins the owning shard; object ids start
            // at 1, so a 0 filter matches nothing.
            let shards: Vec<usize> = match object {
                Some(0) => Vec::new(),
                Some(o) => vec![shard_of(ObjectId(o), n)],
                None => (0..n).collect(),
            };
            let mut sent = 0usize;
            let mut truncated = false;
            let mut scanned = 0u64;
            let mut skipped = 0u64;
            for &s in &shards {
                let store = &inner.hist[s];
                // Read-your-writes: anything acked before this query
                // was durable, so the indexer wait is bounded.
                store.sync();
                let q = HistQuery {
                    class: class.clone(),
                    object: object.map(|o| to_local(ObjectId(o), n).0),
                    kind: kind.clone(),
                    qualifier,
                    args: preds.clone(),
                    min_seq,
                    max_seq,
                    min_time,
                    max_time,
                    // One past the remaining budget: a full result
                    // proves more rows exist without streaming them.
                    limit: Some(cap - sent + 1),
                };
                let res = store
                    .query(&q)
                    .map_err(|e| WireError::new("history", e.to_string()))?;
                scanned += res.segments_scanned as u64;
                skipped += res.segments_skipped as u64;
                let budget = cap - sent;
                if res.truncated || res.rows.len() > budget {
                    truncated = true;
                }
                let take = res.rows.len().min(budget);
                for chunk in res.rows[..take].chunks(256) {
                    let rows: Vec<WireRow> = chunk
                        .iter()
                        .map(|r| WireRow {
                            seq: r.seq,
                            shard: s as u64,
                            time: r.time,
                            txn: r.txn,
                            object: to_global(ObjectId(r.object), s, n).0,
                            class: store.class_label(r.class),
                            event: store.render_event(r),
                            args: r.args.clone(),
                        })
                        .collect();
                    let _ = tx.send(ServerMsg::Rows { id: req_id, rows });
                }
                sent += take;
                if truncated {
                    break;
                }
            }
            Ok(Reply::QueryDone {
                rows: sent as u64,
                truncated,
                segments_scanned: scanned,
                segments_skipped: skipped,
            })
        }
    }
}
