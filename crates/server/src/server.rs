//! The server: thread-per-connection sessions over a [`SharedDatabase`].
//!
//! ## Session model
//!
//! Each connection is one *session* holding at most one open
//! transaction. The engine mutex is held only for the duration of each
//! individual command, so sessions interleave at transaction granularity
//! exactly like in-process users of [`SharedDatabase`]: conflicting
//! object access surfaces as a retryable `lock_conflict` error (the
//! engine never blocks on locks, so there is no deadlock), and the
//! client aborts and retries.
//!
//! ## Robustness
//!
//! * Reads poll with a short timeout ([`ServerConfig::poll_interval`])
//!   so every session notices shutdown promptly and can expire idle
//!   transactions ([`ServerConfig::txn_idle_timeout`]) — partial lines
//!   survive the ticks (see [`crate::codec::LineReader`]).
//! * Malformed or overlong lines answer with a structured `id: 0` error
//!   notice; the connection stays open and usable.
//! * A disconnect (or shutdown) aborts the session's open transaction,
//!   releasing its object locks.
//!
//! ## Firing fan-out
//!
//! The engine's firing sink runs with the engine locked, so it must
//! never touch a socket: it only enqueues the [`Firing`] onto each
//! subscribed connection's outbox channel. A dedicated writer thread
//! per connection drains the outbox, so a slow subscriber delays only
//! itself.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ode_core::Value;
use ode_db::{FiringNotice, ObjectId, SharedDatabase, Snapshot, TxnId};
use parking_lot::Mutex;

use crate::codec::{LineEvent, LineReader};
use crate::conn::Conn;
use crate::protocol::{
    Command, Firing, Reply, ReplyResult, Request, ServerMsg, WireError, WireStats,
};
use crate::spec::compile_class;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum request-line length in bytes; longer lines are discarded
    /// with an `overlong` notice.
    pub max_line_bytes: usize,
    /// Read-timeout tick: how often idle sessions poll the shutdown
    /// flag and the idle-transaction timer.
    pub poll_interval: Duration,
    /// Abort a session's open transaction after this much inactivity
    /// (`None` disables the timer).
    pub txn_idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_line_bytes: 256 * 1024,
            poll_interval: Duration::from_millis(25),
            txn_idle_timeout: None,
        }
    }
}

type Outbox = mpsc::Sender<ServerMsg>;
type Subscribers = Arc<Mutex<HashMap<u64, Outbox>>>;

struct Shared {
    db: SharedDatabase,
    config: ServerConfig,
    shutdown: AtomicBool,
    subs: Subscribers,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
}

/// Configures and starts a [`Server`].
pub struct ServerBuilder {
    db: SharedDatabase,
    config: ServerConfig,
    tcp: Option<String>,
    unix: Option<PathBuf>,
}

impl ServerBuilder {
    /// Serve TCP on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port;
    /// read the bound address back with [`Server::tcp_addr`]).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Serve a Unix-domain socket at `path` (a stale socket file is
    /// removed first).
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.unix = Some(path.into());
        self
    }

    /// Override the default [`ServerConfig`].
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Bind the listeners, install the firing sink, and start the
    /// accept threads.
    pub fn start(self) -> std::io::Result<Server> {
        let subs: Subscribers = Arc::new(Mutex::new(HashMap::new()));
        let sink_subs = Arc::clone(&subs);
        self.db
            .set_firing_sink(Some(Arc::new(move |n: &FiringNotice| {
                let msg = ServerMsg::Firing(Firing::from_notice(n));
                for tx in sink_subs.lock().values() {
                    let _ = tx.send(msg.clone());
                }
            })));

        let inner = Arc::new(Shared {
            db: self.db,
            config: self.config,
            shutdown: AtomicBool::new(false),
            subs,
            conn_threads: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });

        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &self.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let inner2 = Arc::clone(&inner);
            accept_threads.push(thread::spawn(move || accept_tcp(inner2, listener)));
        }
        let mut unix_path = None;
        if let Some(path) = &self.unix {
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            let inner2 = Arc::clone(&inner);
            accept_threads.push(thread::spawn(move || accept_unix(inner2, listener)));
        }

        Ok(Server {
            inner,
            accept_threads,
            tcp_addr,
            unix_path,
            stopped: false,
        })
    }
}

/// A running server. Dropping it shuts it down (joining all threads).
pub struct Server {
    inner: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    stopped: bool,
}

impl Server {
    /// Start configuring a server over `db`. Installs the engine's
    /// firing sink on [`ServerBuilder::start`].
    pub fn builder(db: SharedDatabase) -> ServerBuilder {
        ServerBuilder {
            db,
            config: ServerConfig::default(),
            tcp: None,
            unix: None,
        }
    }

    /// The bound TCP address, if TCP was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if one was requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The underlying database handle.
    pub fn db(&self) -> &SharedDatabase {
        &self.inner.db
    }

    /// Graceful shutdown: stop accepting, wake every session (each
    /// aborts its open transaction), join all threads, uninstall the
    /// firing sink, and remove the Unix socket file.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.conn_threads.lock());
        for h in handles {
            let _ = h.join();
        }
        self.inner.db.set_firing_sink(None);
        if let Some(p) = &self.unix_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_tcp(inner: Arc<Shared>, listener: TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_session(&inner, Conn::Tcp(stream)),
            Err(_) => thread::sleep(inner.config.poll_interval),
        }
    }
}

fn accept_unix(inner: Arc<Shared>, listener: UnixListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_session(&inner, Conn::Unix(stream)),
            Err(_) => thread::sleep(inner.config.poll_interval),
        }
    }
}

fn spawn_session(inner: &Arc<Shared>, conn: Conn) {
    let conn_id = inner.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
    let write_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<ServerMsg>();
    let writer = thread::spawn(move || writer_loop(write_conn, rx));
    let inner2 = Arc::clone(inner);
    let reader = thread::spawn(move || session_loop(inner2, conn_id, conn, tx));
    inner.conn_threads.lock().extend([writer, reader]);
}

/// Drain the outbox to the socket; exits when every sender (session
/// loop + subscription entry) is gone or the peer stops reading.
fn writer_loop(mut conn: Conn, rx: mpsc::Receiver<ServerMsg>) {
    while let Ok(msg) = rx.recv() {
        let Ok(mut line) = serde_json::to_string(&msg) else {
            continue;
        };
        line.push('\n');
        if conn.write_all(line.as_bytes()).is_err() {
            break;
        }
    }
    conn.shutdown_both();
}

fn notice(code: &str, message: String) -> ServerMsg {
    ServerMsg::Reply {
        id: 0,
        result: ReplyResult::Err(WireError {
            code: code.to_string(),
            message,
            retryable: false,
        }),
    }
}

fn session_loop(inner: Arc<Shared>, conn_id: u64, mut conn: Conn, tx: Outbox) {
    let _ = conn.set_blocking();
    let _ = conn.set_read_timeout(Some(inner.config.poll_interval));
    let mut lines = LineReader::new(inner.config.max_line_bytes);
    let mut open_txn: Option<TxnId> = None;
    let mut last_activity = Instant::now();

    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let (Some(t), Some(limit)) = (open_txn, inner.config.txn_idle_timeout) {
            if last_activity.elapsed() >= limit {
                let _ = inner.db.abort(t);
                open_txn = None;
                let _ = tx.send(notice(
                    "txn_timeout",
                    "open transaction aborted after idle timeout".to_string(),
                ));
            }
        }
        match lines.read_event(&mut conn) {
            Ok(LineEvent::Line(line)) => {
                last_activity = Instant::now();
                handle_line(&inner, conn_id, &line, &mut open_txn, &tx);
            }
            Ok(LineEvent::Tick) => continue,
            Ok(LineEvent::Overlong) => {
                let _ = tx.send(notice(
                    "overlong",
                    format!("request line exceeds {} bytes", inner.config.max_line_bytes),
                ));
            }
            Ok(LineEvent::Eof) | Err(_) => break,
        }
    }

    // Disconnect (or shutdown): release everything the session held.
    inner.subs.lock().remove(&conn_id);
    if let Some(t) = open_txn {
        let _ = inner.db.abort(t);
    }
    conn.shutdown_both();
    // `tx` drops here; the writer flushes its queue and exits.
}

fn handle_line(
    inner: &Arc<Shared>,
    conn_id: u64,
    line: &str,
    open_txn: &mut Option<TxnId>,
    tx: &Outbox,
) {
    if line.trim().is_empty() {
        return;
    }
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(notice("parse", format!("malformed request: {e}")));
            return;
        }
    };
    let result = match execute(inner, conn_id, req.cmd, open_txn, tx) {
        Ok(reply) => ReplyResult::Ok(reply),
        Err(e) => ReplyResult::Err(e),
    };
    let _ = tx.send(ServerMsg::Reply { id: req.id, result });
}

fn no_txn() -> WireError {
    WireError::new("no_txn", "no open transaction in this session")
}

/// Close out a transactional engine call: if the engine finalized the
/// transaction while failing (trigger-requested abort), forget it.
fn finish<T>(
    inner: &Shared,
    open_txn: &mut Option<TxnId>,
    t: TxnId,
    r: Result<T, ode_db::OdeError>,
) -> Result<T, WireError> {
    match r {
        Ok(v) => Ok(v),
        Err(e) => {
            if !inner.db.txn_open(t) {
                *open_txn = None;
            }
            Err(WireError::from_ode(&e))
        }
    }
}

fn execute(
    inner: &Arc<Shared>,
    conn_id: u64,
    cmd: Command,
    open_txn: &mut Option<TxnId>,
    tx: &Outbox,
) -> Result<Reply, WireError> {
    match cmd {
        Command::Ping => Ok(Reply::Pong),
        Command::DefineClass(spec) => {
            let def = compile_class(&spec).map_err(|e| WireError::from_ode(&e))?;
            inner
                .db
                .with(|db| db.define_class(def))
                .map_err(|e| WireError::from_ode(&e))?;
            Ok(Reply::Unit)
        }
        Command::Begin { user } => {
            if open_txn.is_some() {
                return Err(WireError::new(
                    "txn_open",
                    "session already has an open transaction",
                ));
            }
            let t = inner.db.begin(user);
            *open_txn = Some(t);
            Ok(Reply::Begun { txn: t.0 })
        }
        Command::Commit => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner.db.commit(t);
            if !inner.db.txn_open(t) {
                *open_txn = None;
            }
            r.map_err(|e| WireError::from_ode(&e))?;
            Ok(Reply::Unit)
        }
        Command::Abort => {
            // Idempotent: a transaction the engine already finalized
            // (trigger abort, idle timeout) aborts to Unit as well.
            if let Some(t) = open_txn.take() {
                let _ = inner.db.abort(t);
            }
            Ok(Reply::Unit)
        }
        Command::New { class, overrides } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let ovr: Vec<(&str, Value)> = overrides
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let r = inner.db.with(|db| db.create_object(t, &class, &ovr));
            finish(inner, open_txn, t, r).map(|id| Reply::Object { id: id.0 })
        }
        Command::Call {
            object,
            method,
            args,
        } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner
                .db
                .with(|db| db.call(t, ObjectId(object), &method, &args));
            finish(inner, open_txn, t, r).map(Reply::Value)
        }
        Command::Delete { object } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner.db.with(|db| db.delete_object(t, ObjectId(object)));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::Activate {
            object,
            trigger,
            params,
        } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner
                .db
                .with(|db| db.activate_trigger(t, ObjectId(object), &trigger, &params));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::Deactivate { object, trigger } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner
                .db
                .with(|db| db.deactivate_trigger(t, ObjectId(object), &trigger));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::AdvanceClockBy { ms } => {
            inner.db.with(|db| db.advance_clock_by(ms));
            Ok(Reply::Unit)
        }
        Command::AdvanceClockTo { ms } => {
            inner.db.with(|db| db.advance_clock_to(ms));
            Ok(Reply::Unit)
        }
        Command::Snapshot => {
            let snap = inner
                .db
                .with(|db| db.snapshot())
                .map_err(|e| WireError::from_ode(&e))?;
            let json = snap.to_json().map_err(|e| WireError::from_ode(&e))?;
            Ok(Reply::SnapshotTaken { json })
        }
        Command::Restore { snapshot } => {
            let snap = Snapshot::from_json(&snapshot).map_err(|e| WireError::from_ode(&e))?;
            inner
                .db
                .with(|db| db.restore(&snap))
                .map_err(|e| WireError::from_ode(&e))?;
            Ok(Reply::Unit)
        }
        Command::Stats => {
            let (s, clock_ms) = inner.db.with(|db| (db.stats(), db.now()));
            Ok(Reply::Stats(WireStats {
                events_posted: s.events_posted,
                symbols_stepped: s.symbols_stepped,
                triggers_fired: s.triggers_fired,
                txns_committed: s.txns_committed,
                txns_aborted: s.txns_aborted,
                clock_ms,
            }))
        }
        Command::Subscribe => {
            inner.subs.lock().insert(conn_id, tx.clone());
            Ok(Reply::Unit)
        }
        Command::Unsubscribe => {
            inner.subs.lock().remove(&conn_id);
            Ok(Reply::Unit)
        }
        Command::TakeOutput => {
            let out = inner.db.with(|db| db.take_output());
            Ok(Reply::Output(out))
        }
        Command::PeekField { object, field } => {
            let v = inner.db.with(|db| db.peek_field(ObjectId(object), &field));
            Ok(Reply::Value(v.unwrap_or(Value::Null)))
        }
    }
}
