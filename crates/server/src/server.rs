//! The server: thread-per-connection sessions over a [`SharedDatabase`].
//!
//! ## Session model
//!
//! Each connection is one *session* holding at most one open
//! transaction. The engine mutex is held only for the duration of each
//! individual command, so sessions interleave at transaction granularity
//! exactly like in-process users of [`SharedDatabase`]: conflicting
//! object access surfaces as a retryable `lock_conflict` error (the
//! engine never blocks on locks, so there is no deadlock), and the
//! client aborts and retries.
//!
//! ## Robustness
//!
//! * Reads poll with a short timeout ([`ServerConfig::poll_interval`])
//!   so every session notices shutdown promptly and can expire idle
//!   transactions ([`ServerConfig::txn_idle_timeout`]) — partial lines
//!   survive the ticks (see [`crate::codec::LineReader`]).
//! * Malformed or overlong lines answer with a structured `id: 0` error
//!   notice; the connection stays open and usable.
//! * A disconnect (or shutdown) aborts the session's open transaction,
//!   releasing its object locks.
//!
//! ## Firing fan-out
//!
//! The engine's firing sink runs with the engine locked, so it must
//! never touch a socket: it only enqueues the [`Firing`] onto each
//! subscribed connection's outbox channel. A dedicated writer thread
//! per connection drains the outbox, so a slow subscriber delays only
//! itself. Failed deliveries (a full-gone outbox, a dead socket) are
//! counted in the `subscriber_drops` stat rather than silently
//! discarded.
//!
//! ## Durability
//!
//! With [`ServerBuilder::wal_dir`], the server recovers the directory
//! on startup (wire-defined classes from `schema.wal`, then the latest
//! checkpoint plus log tail via [`ode_db::DiskWal`]) and streams every
//! subsequent engine op back out through the engine's log sink. A WAL
//! write or fsync failure degrades gracefully: the offending session's
//! transaction is aborted, the command answers a retryable `wal`
//! error, and the server latches **read-only** (mutating commands are
//! refused; reads, aborts, and subscriptions keep working) instead of
//! panicking or serving un-durable writes.

use std::cell::Cell;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ode_core::Value;
use ode_db::durability::frame;
use ode_db::engine::{FiringSink, LogSink};
use ode_db::replication::Applier;
use ode_db::{
    DiskWal, DurableRecord, FiringNotice, LogOp, ObjectId, SegmentReader, SharedDatabase, SharedIo,
    Snapshot, StdIo, TxnId, WalConfig, WalFlusher,
};
use parking_lot::Mutex;

use crate::codec::{LineEvent, LineReader};
use crate::conn::Conn;
use crate::protocol::{
    hex_encode, Command, Firing, Reply, ReplyResult, Request, ServerMsg, WireError, WireStats,
};
use crate::repl::{run_replica, ReplSource, ReplicaState, StreamFault};
use crate::spec::{compile_class, ClassSpec};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum request-line length in bytes; longer lines are discarded
    /// with an `overlong` notice.
    pub max_line_bytes: usize,
    /// Read-timeout tick: how often idle sessions poll the shutdown
    /// flag and the idle-transaction timer.
    pub poll_interval: Duration,
    /// Abort a session's open transaction after this much inactivity
    /// (`None` disables the timer).
    pub txn_idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_line_bytes: 256 * 1024,
            poll_interval: Duration::from_millis(25),
            txn_idle_timeout: None,
        }
    }
}

type Outbox = mpsc::Sender<ServerMsg>;
type Subscribers = Arc<Mutex<HashMap<u64, Outbox>>>;

/// The server's durability state (present when started with a WAL dir).
pub(crate) struct WalState {
    /// The WAL handle (internally synchronized; see [`DiskWal`]'s lock
    /// order — the engine lock is only ever held around the cheap
    /// buffer+assign-LSN step, never an fsync).
    pub(crate) wal: DiskWal,
    pub(crate) io: SharedIo,
    /// The WAL directory, re-scanned by `Replicate` handshakes.
    pub(crate) dir: PathBuf,
    /// `<wal-dir>/schema.wal`: framed `ClassSpec` JSON, one record per
    /// wire-defined class, replayed (in `ClassId` order) before the op
    /// WAL on recovery.
    pub(crate) schema_path: PathBuf,
    /// Latched after the first WAL write/fsync failure: mutating
    /// commands answer a retryable `wal` error until restart.
    pub(crate) read_only: AtomicBool,
    /// Replication subscribers: connections that sent `Replicate`. The
    /// WAL's durable sink ships each record to them as it becomes
    /// durable (under the WAL's disk lock), so live shipping
    /// serializes with `frozen` handshakes and a primary crash can
    /// never have shipped a record recovery then loses.
    pub(crate) repl_subs: Subscribers,
}

thread_local! {
    /// LSN of the last record this thread appended through the log
    /// sink. The sink runs synchronously on the committing thread (with
    /// the engine locked), so after `commit()` returns this holds the
    /// commit record's LSN — the one the session must wait on before
    /// acking.
    static LAST_WAL_LSN: Cell<Option<u64>> = const { Cell::new(None) };
}

pub(crate) struct Shared {
    pub(crate) db: SharedDatabase,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) subs: Subscribers,
    pub(crate) conn_threads: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) next_conn: AtomicU64,
    pub(crate) wal: Option<Arc<WalState>>,
    /// Firing notifications that never reached a subscriber (outbox
    /// gone or socket write failed).
    pub(crate) subscriber_drops: Arc<AtomicU64>,
    /// Replica status when started with `replicate_from`.
    pub(crate) repl: Option<Arc<ReplicaState>>,
    /// The installed sinks, kept so the replica runner can re-install
    /// them after rebuilding the engine for a snapshot jump.
    pub(crate) log_sink: Option<LogSink>,
    pub(crate) firing_sink: Option<FiringSink>,
}

/// Configures and starts a [`Server`].
pub struct ServerBuilder {
    db: SharedDatabase,
    config: ServerConfig,
    tcp: Option<String>,
    unix: Option<PathBuf>,
    wal_dir: Option<PathBuf>,
    wal_config: WalConfig,
    wal_io: Option<SharedIo>,
    replicate_from: Option<ReplSource>,
    repl_fault_plan: HashMap<u64, StreamFault>,
}

impl ServerBuilder {
    /// Serve TCP on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port;
    /// read the bound address back with [`Server::tcp_addr`]).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Serve a Unix-domain socket at `path` (a stale socket file is
    /// removed first).
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.unix = Some(path.into());
        self
    }

    /// Override the default [`ServerConfig`].
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Persist every engine op to a write-ahead log under `dir`. On
    /// start the directory is recovered first: wire-defined classes
    /// replay from `schema.wal`, then the newest checkpoint restores
    /// and the log tail replays on top of it.
    pub fn wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Override the default [`WalConfig`] (segment size, fsync policy).
    /// Only meaningful together with [`ServerBuilder::wal_dir`].
    pub fn wal_config(mut self, cfg: WalConfig) -> Self {
        self.wal_config = cfg;
        self
    }

    /// Override the WAL's I/O layer (fault injection in tests). Only
    /// meaningful together with [`ServerBuilder::wal_dir`].
    pub fn wal_io(mut self, io: SharedIo) -> Self {
        self.wal_io = Some(io);
        self
    }

    /// Run as a read replica of the primary at `source`: refuse
    /// mutations with `read_only_replica`, tail the primary's WAL
    /// stream, and serve reads, stats, and subscriptions from the
    /// applied state. Combine with [`ServerBuilder::wal_dir`] to give
    /// the replica a local log for catch-up restart.
    pub fn replicate_from(mut self, source: ReplSource) -> Self {
        self.replicate_from = Some(source);
        self
    }

    /// Inject deterministic faults into the replication stream, keyed
    /// by received-record count (see [`StreamFault`]). Test hook; only
    /// meaningful together with [`ServerBuilder::replicate_from`].
    pub fn repl_fault_plan(mut self, plan: HashMap<u64, StreamFault>) -> Self {
        self.repl_fault_plan = plan;
        self
    }

    /// Bind the listeners, recover the WAL directory (if configured),
    /// install the firing and log sinks, and start the accept threads.
    pub fn start(self) -> std::io::Result<Server> {
        let is_replica = self.replicate_from.is_some();
        // Recover *before* installing the log sink: replayed ops must
        // not be re-appended to the log they came from. A replica
        // bootstraps through an `Applier` instead of `restore_into` so
        // the id maps of transactions its local log left open stay
        // live for the stream to resume mid-transaction.
        let mut applier = Applier::new();
        let wal = match &self.wal_dir {
            None => None,
            Some(dir) => {
                let io = self
                    .wal_io
                    .clone()
                    .unwrap_or_else(|| SharedIo::new(StdIo::new()));
                let schema_path = dir.join("schema.wal");
                let (wal, recovery) = DiskWal::open(dir, self.wal_config, io.clone())
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let specs = load_schema(&io, &schema_path).map_err(std::io::Error::other)?;
                applier = self
                    .db
                    .with(|db| -> Result<Applier, String> {
                        for spec in &specs {
                            let def = compile_class(spec).map_err(|e| e.to_string())?;
                            db.define_class(def).map_err(|e| e.to_string())?;
                        }
                        if is_replica {
                            Applier::bootstrap(db, &recovery).map_err(|e| e.to_string())
                        } else {
                            recovery.restore_into(db).map_err(|e| e.to_string())?;
                            // Replay re-emits historical firing lines;
                            // don't serve them as fresh output.
                            db.take_output();
                            Ok(Applier::new())
                        }
                    })
                    .map_err(std::io::Error::other)?;
                Some(Arc::new(WalState {
                    wal,
                    io,
                    dir: dir.clone(),
                    schema_path,
                    read_only: AtomicBool::new(false),
                    repl_subs: Arc::new(Mutex::new(HashMap::new())),
                }))
            }
        };
        let mut log_sink: Option<LogSink> = None;
        let mut wal_flusher = None;
        if let Some(ws) = &wal {
            // Shipping moves to the WAL's durable sink: records reach
            // replication subscribers only once the durable watermark
            // covers them, so a primary crash can never have shipped a
            // record its own recovery then loses. The sink runs under
            // the WAL's disk lock — the same lock `frozen` handshakes
            // hold — so the handoff from history to live stream still
            // has no gap and no duplicate. Capturing only the subscriber
            // map (not the WalState) keeps the WAL out of an Arc cycle.
            let sink_subs = Arc::clone(&ws.repl_subs);
            ws.wal
                .set_durable_sink(Some(Arc::new(move |records: &[DurableRecord]| {
                    let subs = sink_subs.lock();
                    if subs.is_empty() || records.is_empty() {
                        return;
                    }
                    let head = records.last().expect("non-empty").lsn + 1;
                    for r in records {
                        let msg = ServerMsg::ReplOp {
                            lsn: r.lsn,
                            head,
                            frame: hex_encode(&r.frame),
                        };
                        for tx in subs.values() {
                            let _ = tx.send(msg.clone());
                        }
                    }
                })));
            wal_flusher = ws.wal.start_flusher();
            let sink_wal = ws.wal.clone();
            // Runs with the engine locked, on the committing thread.
            // Under the group policies this only buffers and assigns
            // the LSN — the fsync happens on the flusher thread, and
            // the session waits for it *outside* the engine lock (see
            // `Command::Commit`). Errors poison the wal; the session
            // that triggered the write surfaces them from `handle_line`.
            let sink: LogSink = Arc::new(move |op: &LogOp| {
                if let Ok(lsn) = sink_wal.append(op) {
                    LAST_WAL_LSN.with(|c| c.set(Some(lsn)));
                }
            });
            log_sink = Some(Arc::clone(&sink));
            self.db.set_log_sink(Some(sink));
        }

        let subscriber_drops = Arc::new(AtomicU64::new(0));
        let subs: Subscribers = Arc::new(Mutex::new(HashMap::new()));
        let sink_subs = Arc::clone(&subs);
        let sink_drops = Arc::clone(&subscriber_drops);
        let firing_sink: FiringSink = Arc::new(move |n: &FiringNotice| {
            let msg = ServerMsg::Firing(Firing::from_notice(n));
            for tx in sink_subs.lock().values() {
                if tx.send(msg.clone()).is_err() {
                    sink_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        self.db.set_firing_sink(Some(Arc::clone(&firing_sink)));

        let repl = self
            .replicate_from
            .as_ref()
            .map(|_| Arc::new(ReplicaState::new(applier.next_lsn())));
        let inner = Arc::new(Shared {
            db: self.db,
            config: self.config,
            shutdown: AtomicBool::new(false),
            subs,
            conn_threads: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            wal,
            subscriber_drops,
            repl,
            log_sink,
            firing_sink: Some(firing_sink),
        });

        let mut repl_thread = None;
        if let Some(source) = self.replicate_from {
            let inner2 = Arc::clone(&inner);
            let plan = self.repl_fault_plan;
            repl_thread = Some(thread::spawn(move || {
                run_replica(inner2, source, applier, plan)
            }));
        }

        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &self.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let inner2 = Arc::clone(&inner);
            accept_threads.push(thread::spawn(move || accept_tcp(inner2, listener)));
        }
        let mut unix_path = None;
        if let Some(path) = &self.unix {
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            let inner2 = Arc::clone(&inner);
            accept_threads.push(thread::spawn(move || accept_unix(inner2, listener)));
        }

        Ok(Server {
            inner,
            accept_threads,
            repl_thread,
            wal_flusher,
            tcp_addr,
            unix_path,
            stopped: false,
        })
    }
}

/// A running server. Dropping it shuts it down (joining all threads).
pub struct Server {
    inner: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    repl_thread: Option<JoinHandle<()>>,
    wal_flusher: Option<WalFlusher>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    stopped: bool,
}

impl Server {
    /// Start configuring a server over `db`. Installs the engine's
    /// firing sink on [`ServerBuilder::start`].
    pub fn builder(db: SharedDatabase) -> ServerBuilder {
        ServerBuilder {
            db,
            config: ServerConfig::default(),
            tcp: None,
            unix: None,
            wal_dir: None,
            wal_config: WalConfig::default(),
            wal_io: None,
            replicate_from: None,
            repl_fault_plan: HashMap::new(),
        }
    }

    /// The bound TCP address, if TCP was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if one was requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The underlying database handle.
    pub fn db(&self) -> &SharedDatabase {
        &self.inner.db
    }

    /// Graceful shutdown: stop accepting, wake every session (each
    /// aborts its open transaction), join all threads, uninstall the
    /// firing sink, and remove the Unix socket file.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.repl_thread.take() {
            let _ = h.join();
        }
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.conn_threads.lock());
        for h in handles {
            let _ = h.join();
        }
        self.inner.db.set_firing_sink(None);
        self.inner.db.set_log_sink(None);
        // Every session is gone, so no more appends: drain the pending
        // queue (the flusher's stop does a final flush), then push any
        // EveryN/Never-policy unsynced bytes to disk, best effort.
        if let Some(f) = self.wal_flusher.take() {
            f.stop();
        }
        if let Some(ws) = &self.inner.wal {
            let _ = ws.wal.sync();
            ws.wal.set_durable_sink(None);
        }
        if let Some(p) = &self.unix_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_tcp(inner: Arc<Shared>, listener: TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_session(&inner, Conn::Tcp(stream)),
            Err(_) => thread::sleep(inner.config.poll_interval),
        }
    }
}

fn accept_unix(inner: Arc<Shared>, listener: UnixListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_session(&inner, Conn::Unix(stream)),
            Err(_) => thread::sleep(inner.config.poll_interval),
        }
    }
}

fn spawn_session(inner: &Arc<Shared>, conn: Conn) {
    let conn_id = inner.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
    let write_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<ServerMsg>();
    let drops = Arc::clone(&inner.subscriber_drops);
    let writer = thread::spawn(move || writer_loop(write_conn, rx, drops));
    let inner2 = Arc::clone(inner);
    let reader = thread::spawn(move || session_loop(inner2, conn_id, conn, tx));
    inner.conn_threads.lock().extend([writer, reader]);
}

/// Drain the outbox to the socket; exits when every sender (session
/// loop + subscription entry) is gone or the peer stops reading. Firing
/// notifications stranded by a dead socket count as subscriber drops.
fn writer_loop(mut conn: Conn, rx: mpsc::Receiver<ServerMsg>, drops: Arc<AtomicU64>) {
    while let Ok(msg) = rx.recv() {
        let Ok(mut line) = serde_json::to_string(&msg) else {
            continue;
        };
        line.push('\n');
        if conn.write_all(line.as_bytes()).is_err() {
            let stranded = std::iter::once(msg)
                .chain(rx.try_iter())
                .filter(|m| matches!(m, ServerMsg::Firing(_)))
                .count();
            drops.fetch_add(stranded as u64, Ordering::Relaxed);
            break;
        }
    }
    conn.shutdown_both();
}

fn notice(code: &str, message: String) -> ServerMsg {
    ServerMsg::Reply {
        id: 0,
        result: ReplyResult::Err(WireError {
            code: code.to_string(),
            message,
            retryable: false,
        }),
    }
}

fn session_loop(inner: Arc<Shared>, conn_id: u64, mut conn: Conn, tx: Outbox) {
    let _ = conn.set_blocking();
    let _ = conn.set_read_timeout(Some(inner.config.poll_interval));
    let mut lines = LineReader::new(inner.config.max_line_bytes);
    let mut open_txn: Option<TxnId> = None;
    let mut last_activity = Instant::now();
    // Set once this connection sends `Replicate`; the session then
    // reports the head periodically so an idle replica tracks lag.
    let mut replicating = false;
    let mut last_heartbeat = Instant::now();

    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if replicating && last_heartbeat.elapsed() >= Duration::from_millis(250) {
            last_heartbeat = Instant::now();
            if let Some(ws) = &inner.wal {
                // The head a replica should chase is the durable one:
                // buffered-but-unflushed records aren't shippable yet.
                let head = ws.wal.durable_lsn();
                let _ = tx.send(ServerMsg::ReplHeartbeat { head });
            }
        }
        if let (Some(t), Some(limit)) = (open_txn, inner.config.txn_idle_timeout) {
            if last_activity.elapsed() >= limit {
                let _ = inner.db.abort(t);
                open_txn = None;
                let _ = tx.send(notice(
                    "txn_timeout",
                    "open transaction aborted after idle timeout".to_string(),
                ));
            }
        }
        match lines.read_event(&mut conn) {
            Ok(LineEvent::Line(line)) => {
                last_activity = Instant::now();
                handle_line(&inner, conn_id, &line, &mut open_txn, &tx, &mut replicating);
            }
            Ok(LineEvent::Tick) => continue,
            Ok(LineEvent::Overlong) => {
                let _ = tx.send(notice(
                    "overlong",
                    format!("request line exceeds {} bytes", inner.config.max_line_bytes),
                ));
            }
            Ok(LineEvent::Eof) | Err(_) => break,
        }
    }

    // Disconnect (or shutdown): release everything the session held.
    inner.subs.lock().remove(&conn_id);
    if let Some(ws) = &inner.wal {
        ws.repl_subs.lock().remove(&conn_id);
    }
    if let Some(t) = open_txn {
        let _ = inner.db.abort(t);
    }
    conn.shutdown_both();
    // `tx` drops here; the writer flushes its queue and exits.
}

fn handle_line(
    inner: &Arc<Shared>,
    conn_id: u64,
    line: &str,
    open_txn: &mut Option<TxnId>,
    tx: &Outbox,
    replicating: &mut bool,
) {
    if line.trim().is_empty() {
        return;
    }
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(notice("parse", format!("malformed request: {e}")));
            return;
        }
    };
    let is_mutation = mutates(&req.cmd);
    let mut result = match execute(inner, conn_id, req.cmd, open_txn, tx, replicating) {
        Ok(reply) => ReplyResult::Ok(reply),
        Err(e) => ReplyResult::Err(e),
    };
    // Degradation check: if a mutating command left the WAL poisoned,
    // the engine may have state the log does not. Latch read-only,
    // abort the session's transaction, and answer a retryable `wal`
    // error — even over an in-memory success: a commit whose log record
    // never reached disk will not survive recovery, so the client must
    // treat it as failed.
    let refused = matches!(&result, ReplyResult::Err(e) if e.code == "read_only");
    if is_mutation && !refused {
        if let Some(ws) = &inner.wal {
            if let Some(msg) = ws.wal.poisoned() {
                ws.read_only.store(true, Ordering::SeqCst);
                if let Some(t) = open_txn.take() {
                    let _ = inner.db.abort(t);
                }
                result = ReplyResult::Err(WireError {
                    code: "wal".to_string(),
                    message: format!("write-ahead log failed; server is now read-only: {msg}"),
                    retryable: true,
                });
            }
        }
    }
    let _ = tx.send(ServerMsg::Reply { id: req.id, result });
}

/// Commands the WAL must capture (state writers). Everything else —
/// reads, aborts, subscriptions — stays allowed in read-only mode:
/// aborts need no durability because recovery discards uncommitted
/// effects anyway.
fn mutates(cmd: &Command) -> bool {
    !matches!(
        cmd,
        Command::Ping
            | Command::Abort
            | Command::Snapshot
            | Command::Stats
            | Command::Subscribe
            | Command::Unsubscribe
            | Command::TakeOutput
            | Command::PeekField { .. }
            | Command::Replicate { .. }
            | Command::Promote
    )
}

/// Read the framed `ClassSpec` records from `schema.wal`. A missing
/// file means no wire-defined classes; a torn trailing record (crash
/// between define and append) is truncated away like an op-log tail.
pub(crate) fn load_schema(io: &SharedIo, path: &Path) -> Result<Vec<ClassSpec>, String> {
    let bytes = match io.with(|io| io.read(path)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("schema wal: {e}")),
    };
    let (frames, tail) = frame::decode_all(&bytes)
        .map_err(|e| format!("schema wal corrupt at offset {}: {}", e.offset, e.reason))?;
    if let frame::Tail::Torn { offset } = tail {
        io.with(|io| io.truncate(path, offset))
            .map_err(|e| format!("schema wal: {e}"))?;
    }
    let mut specs = Vec::with_capacity(frames.len());
    for f in &frames {
        let json = std::str::from_utf8(f).map_err(|e| format!("schema wal: {e}"))?;
        specs.push(serde_json::from_str(json).map_err(|e| format!("schema wal: {e}"))?);
    }
    Ok(specs)
}

/// Append one framed `ClassSpec` to `schema.wal` and fsync it. Called
/// with the engine locked, right after the in-memory define succeeds.
pub(crate) fn append_schema(io: &SharedIo, path: &Path, spec: &ClassSpec) -> Result<(), String> {
    let json = serde_json::to_string(spec).map_err(|e| e.to_string())?;
    let rec = frame::encode(json.as_bytes());
    io.with(|io| {
        io.append(path, &rec)?;
        io.fsync(path)
    })
    .map_err(|e| e.to_string())
}

fn no_txn() -> WireError {
    WireError::new("no_txn", "no open transaction in this session")
}

/// Close out a transactional engine call: if the engine finalized the
/// transaction while failing (trigger-requested abort), forget it.
fn finish<T>(
    inner: &Shared,
    open_txn: &mut Option<TxnId>,
    t: TxnId,
    r: Result<T, ode_db::OdeError>,
) -> Result<T, WireError> {
    match r {
        Ok(v) => Ok(v),
        Err(e) => {
            if !inner.db.txn_open(t) {
                *open_txn = None;
            }
            Err(WireError::from_ode(&e))
        }
    }
}

fn execute(
    inner: &Arc<Shared>,
    conn_id: u64,
    cmd: Command,
    open_txn: &mut Option<TxnId>,
    tx: &Outbox,
    replicating: &mut bool,
) -> Result<Reply, WireError> {
    if let Some(ws) = &inner.wal {
        if mutates(&cmd) && ws.read_only.load(Ordering::SeqCst) {
            return Err(WireError::new(
                "read_only",
                "server is read-only after a write-ahead log failure; restart to recover",
            ));
        }
    }
    // An unpromoted replica refuses every state writer except its own
    // local `Checkpoint` (log maintenance): writes belong on the
    // primary, and the stream is the only mutation source here.
    if let Some(rs) = &inner.repl {
        if mutates(&cmd)
            && !rs.promoted.load(Ordering::SeqCst)
            && !matches!(cmd, Command::Checkpoint)
        {
            return Err(WireError::new(
                "read_only_replica",
                "this server is a read replica; write through the primary or Promote it",
            ));
        }
    }
    match cmd {
        Command::Ping => Ok(Reply::Pong),
        Command::DefineClass(spec) => {
            let def = compile_class(&spec).map_err(|e| WireError::from_ode(&e))?;
            match &inner.wal {
                None => {
                    inner
                        .db
                        .with(|db| db.define_class(def))
                        .map_err(|e| WireError::from_ode(&e))?;
                }
                // Define and append under one engine lock so no op that
                // references the class can be logged before the class
                // record is durable. A crash between the two tears the
                // schema.wal tail harmlessly (truncated on recovery).
                Some(ws) => inner.db.with(|db| -> Result<(), WireError> {
                    db.define_class(def).map_err(|e| WireError::from_ode(&e))?;
                    append_schema(&ws.io, &ws.schema_path, &spec).map_err(|msg| {
                        ws.read_only.store(true, Ordering::SeqCst);
                        WireError {
                            code: "wal".to_string(),
                            message: format!("schema log write failed: {msg}"),
                            retryable: true,
                        }
                    })?;
                    // Ship the new class while the WAL is frozen so it
                    // serializes with Replicate handshakes (which read
                    // schema.wal under the same freeze).
                    ws.wal.frozen(|_| {
                        for rtx in ws.repl_subs.lock().values() {
                            let _ = rtx.send(ServerMsg::ReplSchema(spec.clone()));
                        }
                    });
                    Ok(())
                })?,
            }
            Ok(Reply::Unit)
        }
        Command::Begin { user } => {
            if open_txn.is_some() {
                return Err(WireError::new(
                    "txn_open",
                    "session already has an open transaction",
                ));
            }
            let t = inner.db.begin(user);
            *open_txn = Some(t);
            Ok(Reply::Begun { txn: t.0 })
        }
        Command::Commit => {
            let t = open_txn.ok_or_else(no_txn)?;
            LAST_WAL_LSN.with(|c| c.set(None));
            let r = inner.db.commit(t);
            if !inner.db.txn_open(t) {
                *open_txn = None;
            }
            r.map_err(|e| WireError::from_ode(&e))?;
            // The in-memory commit is done and the engine mutex is
            // released; other sessions proceed. Ack only once the
            // commit record is durable — under group commit this blocks
            // (outside every lock) until a batch fsync covers it, and
            // one fsync releases every session waiting here. Inline
            // policies are already durable to their own standard, so
            // the wait returns immediately.
            if let Some(ws) = &inner.wal {
                if let Some(lsn) = LAST_WAL_LSN.with(|c| c.get()) {
                    ws.wal.wait_durable(lsn).map_err(|e| WireError {
                        code: "wal".to_string(),
                        message: e.to_string(),
                        retryable: true,
                    })?;
                }
            }
            Ok(Reply::Unit)
        }
        Command::Abort => {
            // Idempotent: a transaction the engine already finalized
            // (trigger abort, idle timeout) aborts to Unit as well.
            if let Some(t) = open_txn.take() {
                let _ = inner.db.abort(t);
            }
            Ok(Reply::Unit)
        }
        Command::New { class, overrides } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let ovr: Vec<(&str, Value)> = overrides
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let r = inner.db.with(|db| db.create_object(t, &class, &ovr));
            finish(inner, open_txn, t, r).map(|id| Reply::Object { id: id.0 })
        }
        Command::Call {
            object,
            method,
            args,
        } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner
                .db
                .with(|db| db.call(t, ObjectId(object), &method, &args));
            finish(inner, open_txn, t, r).map(Reply::Value)
        }
        Command::Delete { object } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner.db.with(|db| db.delete_object(t, ObjectId(object)));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::Activate {
            object,
            trigger,
            params,
        } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner
                .db
                .with(|db| db.activate_trigger(t, ObjectId(object), &trigger, &params));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::Deactivate { object, trigger } => {
            let t = open_txn.ok_or_else(no_txn)?;
            let r = inner
                .db
                .with(|db| db.deactivate_trigger(t, ObjectId(object), &trigger));
            finish(inner, open_txn, t, r).map(|()| Reply::Unit)
        }
        Command::AdvanceClockBy { ms } => {
            inner.db.with(|db| db.advance_clock_by(ms));
            Ok(Reply::Unit)
        }
        Command::AdvanceClockTo { ms } => {
            inner.db.with(|db| db.advance_clock_to(ms));
            Ok(Reply::Unit)
        }
        Command::Snapshot => {
            let snap = inner
                .db
                .with(|db| db.snapshot())
                .map_err(|e| WireError::from_ode(&e))?;
            let json = snap.to_json().map_err(|e| WireError::from_ode(&e))?;
            Ok(Reply::SnapshotTaken { json })
        }
        Command::Restore { snapshot } => {
            if inner.wal.is_some() {
                // A state jump the log never saw would desync replay.
                return Err(WireError::new(
                    "restore_unsupported",
                    "Restore is not allowed on a WAL-backed server; use Checkpoint and recovery",
                ));
            }
            let snap = Snapshot::from_json(&snapshot).map_err(|e| WireError::from_ode(&e))?;
            inner
                .db
                .with(|db| db.restore(&snap))
                .map_err(|e| WireError::from_ode(&e))?;
            Ok(Reply::Unit)
        }
        Command::Checkpoint => {
            let Some(ws) = &inner.wal else {
                return Err(WireError::new(
                    "no_wal",
                    "server was started without a WAL directory",
                ));
            };
            // Snapshot and checkpoint under one engine lock so the
            // checkpoint's LSN exactly matches the snapshotted state
            // (lock order engine → wal, same as the log sink). That
            // means every session stalls for the duration — measure and
            // report it so operators see the cost.
            let started = Instant::now();
            let report = inner.db.with(|db| -> Result<_, WireError> {
                let snap = db.snapshot().map_err(|e| WireError::from_ode(&e))?;
                ws.wal.checkpoint(&snap).map_err(|e| WireError {
                    code: "wal".to_string(),
                    message: e.to_string(),
                    retryable: true,
                })
            })?;
            let stall = started.elapsed();
            eprintln!(
                "checkpoint: lsn {} in {:?} (engine stalled), swept {} segment file(s)",
                report.lsn, stall, report.swept_segments
            );
            Ok(Reply::Checkpointed {
                lsn: report.lsn,
                swept_segments: report.swept_segments,
                stall_ms: stall.as_millis() as u64,
            })
        }
        Command::Stats => {
            let (s, clock_ms) = inner.db.with(|db| (db.stats(), db.now()));
            let (mut read_only, wal_lsn, wal_stats) = match &inner.wal {
                Some(ws) => (
                    ws.read_only.load(Ordering::SeqCst),
                    Some(ws.wal.lsn()),
                    Some(ws.wal.stats()),
                ),
                None => (false, None, None),
            };
            let (replica, repl_connected, last_applied_lsn, replica_lag_lsn) = match &inner.repl {
                Some(rs) => {
                    let applied = rs.applied.load(Ordering::SeqCst);
                    let head = rs.head.load(Ordering::SeqCst).max(applied);
                    let promoted = rs.promoted.load(Ordering::SeqCst);
                    read_only = read_only || !promoted;
                    (
                        true,
                        rs.connected.load(Ordering::SeqCst),
                        Some(applied),
                        if promoted { None } else { Some(head - applied) },
                    )
                }
                None => (false, false, None, None),
            };
            Ok(Reply::Stats(WireStats {
                events_posted: s.events_posted,
                symbols_stepped: s.symbols_stepped,
                triggers_fired: s.triggers_fired,
                txns_committed: s.txns_committed,
                txns_aborted: s.txns_aborted,
                clock_ms,
                subscriber_drops: inner.subscriber_drops.load(Ordering::Relaxed),
                read_only,
                wal_lsn,
                durable_lsn: wal_stats.as_ref().map(|s| s.durable_lsn),
                fsyncs_total: wal_stats.as_ref().map_or(0, |s| s.fsyncs_total),
                group_commit_batches: wal_stats.as_ref().map_or(0, |s| s.group_commit_batches),
                group_commit_max_batch: wal_stats.as_ref().map_or(0, |s| s.group_commit_max_batch),
                replica,
                repl_connected,
                last_applied_lsn,
                replica_lag_lsn,
            }))
        }
        Command::Subscribe => {
            inner.subs.lock().insert(conn_id, tx.clone());
            Ok(Reply::Unit)
        }
        Command::Unsubscribe => {
            inner.subs.lock().remove(&conn_id);
            Ok(Reply::Unit)
        }
        Command::TakeOutput => {
            let out = inner.db.with(|db| db.take_output());
            Ok(Reply::Output(out))
        }
        Command::PeekField { object, field } => {
            let v = inner.db.with(|db| db.peek_field(ObjectId(object), &field));
            Ok(Reply::Value(v.unwrap_or(Value::Null)))
        }
        Command::Replicate { from_lsn } => {
            let Some(ws) = &inner.wal else {
                return Err(WireError::new(
                    "no_wal",
                    "server was started without a WAL directory; nothing to replicate",
                ));
            };
            // Freeze the WAL across scan + registration: the durable
            // sink ships under the disk lock the freeze holds, so the
            // handoff from historical records to live shipping has no
            // gap and no duplicate. The freeze's head is the durable
            // watermark — exactly what the on-disk scan contains, and
            // the most a primary may ever ship.
            let (start_lsn, head) = ws.wal.frozen(|head| -> Result<(u64, u64), WireError> {
                if from_lsn > head {
                    return Err(WireError::new(
                        "bad_lsn",
                        format!("requested lsn {from_lsn} is beyond the durable head {head}"),
                    ));
                }
                let scan = SegmentReader::scan(&ws.dir, &ws.io)
                    .map_err(|e| WireError::new("wal", format!("log scan failed: {e}")))?;
                let schema = load_schema(&ws.io, &ws.schema_path)
                    .map_err(|msg| WireError::new("wal", format!("schema scan failed: {msg}")))?;
                let (start_lsn, snapshot) = if from_lsn < scan.base_lsn {
                    // The log before the checkpoint is gone; bootstrap
                    // the replica from the checkpoint snapshot instead.
                    let bytes = scan.checkpoint.clone().ok_or_else(|| {
                        WireError::new(
                            "wal",
                            "log starts past the requested lsn with no checkpoint",
                        )
                    })?;
                    let json = String::from_utf8(bytes)
                        .map_err(|e| WireError::new("wal", format!("checkpoint not utf-8: {e}")))?;
                    (scan.base_lsn, Some(json))
                } else {
                    (from_lsn, None)
                };
                let _ = tx.send(ServerMsg::ReplSnapshot {
                    lsn: start_lsn,
                    schema,
                    snapshot,
                });
                for (lsn, payload) in scan.records_from(start_lsn) {
                    let _ = tx.send(ServerMsg::ReplOp {
                        lsn,
                        head,
                        frame: hex_encode(&frame::encode(payload)),
                    });
                }
                ws.repl_subs.lock().insert(conn_id, tx.clone());
                Ok((start_lsn, head))
            })?;
            *replicating = true;
            Ok(Reply::Replicating { start_lsn, head })
        }
        Command::Promote => {
            let Some(rs) = &inner.repl else {
                return Err(WireError::new(
                    "not_replica",
                    "this server was not started as a replica",
                ));
            };
            if !rs.promoted.load(Ordering::SeqCst) {
                rs.stop.store(true, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while !rs.finished.load(Ordering::SeqCst) {
                    if Instant::now() >= deadline {
                        return Err(WireError {
                            code: "promote_timeout".to_string(),
                            message: "replication stream did not drain in time; retry Promote"
                                .to_string(),
                            retryable: true,
                        });
                    }
                    thread::sleep(inner.config.poll_interval);
                }
                rs.promoted.store(true, Ordering::SeqCst);
            }
            Ok(Reply::Promoted {
                lsn: rs.applied.load(Ordering::SeqCst),
            })
        }
    }
}
