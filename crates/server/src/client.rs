//! A blocking client for the wire protocol, with typed helpers and a
//! [`Client::txn`] retry loop mirroring
//! [`ode_db::SharedDatabase::run_txn`].
//!
//! Trigger-firing notifications ([`crate::protocol::Firing`]) arrive
//! interleaved with replies on subscribed connections; the client
//! buffers any firing it reads while waiting for a reply, and
//! [`Client::poll_firing`] / [`Client::next_firing`] drain that buffer
//! before touching the socket.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use ode_core::Value;

use crate::codec::{LineEvent, LineReader};
use crate::conn::Conn;
use crate::protocol::{
    Command, Firing, Reply, ReplyResult, Request, ServerMsg, WireError, WireRow, WireStats,
};
use crate::spec::ClassSpec;

/// Client-side history-query parameters, mirroring
/// [`Command::Query`] field for field (every field a conjunct;
/// `None`/empty = unconstrained). `QuerySpec::default()` matches
/// everything up to the server's row cap.
#[derive(Clone, Debug, Default)]
pub struct QuerySpec {
    /// Class name.
    pub class: Option<String>,
    /// Global object id.
    pub object: Option<u64>,
    /// Event kind (fixed kind name or method name).
    pub kind: Option<String>,
    /// `"before"` or `"after"`.
    pub qualifier: Option<String>,
    /// Argument predicates `(index, op, value)`.
    pub args: Vec<(u64, String, Value)>,
    /// Minimum posting seq (inclusive).
    pub min_seq: Option<u64>,
    /// Maximum posting seq (inclusive).
    pub max_seq: Option<u64>,
    /// Minimum commit-time ms (inclusive).
    pub min_time: Option<u64>,
    /// Maximum commit-time ms (inclusive).
    pub max_time: Option<u64>,
    /// Row cap.
    pub limit: Option<u64>,
}

/// Outcome of [`Client::query`]: the streamed rows plus the summary
/// from the [`Reply::QueryDone`] line.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Matching rows, in the order the server streamed them.
    pub rows: Vec<WireRow>,
    /// The row cap cut matching short — more rows exist.
    pub truncated: bool,
    /// Segments decoded across all shards.
    pub segments_scanned: u64,
    /// Segments pruned by zone metadata alone.
    pub segments_skipped: u64,
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered the request with a structured error.
    Server(WireError),
    /// [`Client::txn`] gave up: every attempt failed with a retryable
    /// error.
    RetriesExhausted {
        /// Transaction attempts made (initial try plus retries).
        attempts: u32,
        /// The last retryable server error.
        last: WireError,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code, e.message),
            ClientError::RetriesExhausted { attempts, last } => write!(
                f,
                "transaction failed after {attempts} attempts; last error [{}]: {}",
                last.code, last.message
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client (one session on the server).
pub struct Client {
    write: Conn,
    read: Conn,
    lines: LineReader,
    next_id: u64,
    pending: VecDeque<Firing>,
    notices: Vec<WireError>,
    /// How long [`Client::request`] waits for its reply.
    pub request_timeout: Duration,
    /// Retry budget for [`Client::txn`].
    pub max_retries: u32,
    /// First-retry backoff of [`Client::txn`]; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single [`Client::txn`] backoff sleep.
    pub backoff_cap: Duration,
    /// Seed decorrelating this client's backoff jitter from its
    /// neighbors'. Defaults to the process id; tests pin it.
    pub backoff_seed: u64,
}

/// The delay before retry `attempt` (1-based): exponential doubling
/// from `base`, capped at `cap`, with deterministic "equal jitter" — a
/// hash of `(seed, attempt)` picks a point in `[d/2, d]`, so clients
/// that collided on a lock spread out instead of colliding again.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(20);
    let ceiling = base.checked_mul(1u32 << shift).map_or(cap, |d| d.min(cap));
    let nanos = ceiling.as_nanos() as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    // splitmix64 of the (seed, attempt) pair.
    let mut z = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let floor = nanos / 2;
    Duration::from_nanos(floor + z % (nanos - floor + 1))
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let s = TcpStream::connect(addr)?;
        let _ = s.set_nodelay(true);
        Client::from_conn(Conn::Tcp(s))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Client> {
        let s = UnixStream::connect(path)?;
        Client::from_conn(Conn::Unix(s))
    }

    fn from_conn(write: Conn) -> std::io::Result<Client> {
        let read = write.try_clone()?;
        Ok(Client {
            write,
            read,
            lines: LineReader::new(16 * 1024 * 1024),
            next_id: 0,
            pending: VecDeque::new(),
            notices: Vec::new(),
            request_timeout: Duration::from_secs(30),
            max_retries: 64,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(5),
            backoff_seed: u64::from(std::process::id()),
        })
    }

    /// Send a command and wait for its reply, buffering any firings
    /// that arrive in between.
    pub fn request(&mut self, cmd: Command) -> Result<Reply, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let mut line = serde_json::to_string(&Request { id, cmd })
            .map_err(|e| ClientError::Protocol(format!("encode failed: {e}")))?;
        line.push('\n');
        self.write.write_all(line.as_bytes())?;
        self.read.set_read_timeout(Some(self.request_timeout))?;
        loop {
            match self.read_msg()? {
                Some(ServerMsg::Firing(f)) => self.pending.push_back(f),
                Some(ServerMsg::Reply { id: rid, result }) => {
                    if rid == id {
                        return match result {
                            ReplyResult::Ok(r) => Ok(r),
                            ReplyResult::Err(e) => Err(ClientError::Server(e)),
                        };
                    } else if rid == 0 {
                        if let ReplyResult::Err(e) = result {
                            self.notices.push(e);
                        }
                    } else {
                        return Err(ClientError::Protocol(format!(
                            "unexpected reply id {rid} (awaiting {id})"
                        )));
                    }
                }
                // Replication stream messages are handled by the
                // replica runner, not this client; skip them.
                Some(_) => {}
                None => {
                    return Err(ClientError::Protocol(
                        "timed out waiting for the reply".to_string(),
                    ))
                }
            }
        }
    }

    /// Read one server message; `None` on read timeout.
    fn read_msg(&mut self) -> Result<Option<ServerMsg>, ClientError> {
        match self.lines.read_event(&mut self.read)? {
            LineEvent::Line(l) => {
                let msg: ServerMsg = serde_json::from_str(&l)
                    .map_err(|e| ClientError::Protocol(format!("bad server line: {e}")))?;
                Ok(Some(msg))
            }
            LineEvent::Tick => Ok(None),
            LineEvent::Eof => Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            )),
            LineEvent::Overlong => Err(ClientError::Protocol(
                "server line exceeded the client-side cap".to_string(),
            )),
        }
    }

    /// The next buffered or incoming firing, waiting up to `timeout`.
    pub fn poll_firing(&mut self, timeout: Duration) -> Result<Option<Firing>, ClientError> {
        if let Some(f) = self.pending.pop_front() {
            return Ok(Some(f));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.read.set_read_timeout(Some(remaining))?;
            match self.read_msg()? {
                Some(ServerMsg::Firing(f)) => return Ok(Some(f)),
                Some(ServerMsg::Reply { id, result }) => {
                    if id == 0 {
                        if let ReplyResult::Err(e) = result {
                            self.notices.push(e);
                        }
                    } else {
                        return Err(ClientError::Protocol(format!(
                            "unsolicited reply id {id} while polling firings"
                        )));
                    }
                }
                Some(_) => {}
                None => return Ok(None),
            }
        }
    }

    /// Like [`Client::poll_firing`] but errors on timeout.
    pub fn next_firing(&mut self, timeout: Duration) -> Result<Firing, ClientError> {
        self.poll_firing(timeout)?.ok_or_else(|| {
            ClientError::Protocol("timed out waiting for a trigger firing".to_string())
        })
    }

    /// Drain unsolicited server error notices (`id: 0` replies:
    /// overlong lines, parse failures, idle-transaction timeouts).
    pub fn drain_notices(&mut self) -> Vec<WireError> {
        std::mem::take(&mut self.notices)
    }

    // ------------------------------------------------------ typed helpers

    /// `Ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(Command::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// `DefineClass`.
    pub fn define_class(&mut self, spec: ClassSpec) -> Result<(), ClientError> {
        unit(self.request(Command::DefineClass(spec))?)
    }

    /// `Begin` as `user`; returns the transaction id.
    pub fn begin(&mut self, user: impl Into<Value>) -> Result<u64, ClientError> {
        match self.request(Command::Begin { user: user.into() })? {
            Reply::Begun { txn } => Ok(txn),
            other => Err(unexpected("Begun", &other)),
        }
    }

    /// `Commit`.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        unit(self.request(Command::Commit)?)
    }

    /// `Abort` (idempotent).
    pub fn abort(&mut self) -> Result<(), ClientError> {
        unit(self.request(Command::Abort)?)
    }

    /// `New`; returns the object id.
    pub fn new_object(
        &mut self,
        class: &str,
        overrides: &[(&str, Value)],
    ) -> Result<u64, ClientError> {
        let overrides = overrides
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        match self.request(Command::New {
            class: class.to_string(),
            overrides,
        })? {
            Reply::Object { id } => Ok(id),
            other => Err(unexpected("Object", &other)),
        }
    }

    /// `Call`; returns the method's value.
    pub fn call(
        &mut self,
        object: u64,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ClientError> {
        match self.request(Command::Call {
            object,
            method: method.to_string(),
            args: args.to_vec(),
        })? {
            Reply::Value(v) => Ok(v),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// `Delete`.
    pub fn delete(&mut self, object: u64) -> Result<(), ClientError> {
        unit(self.request(Command::Delete { object })?)
    }

    /// `Activate`.
    pub fn activate(
        &mut self,
        object: u64,
        trigger: &str,
        params: &[Value],
    ) -> Result<(), ClientError> {
        unit(self.request(Command::Activate {
            object,
            trigger: trigger.to_string(),
            params: params.to_vec(),
            replay_history: false,
        })?)
    }

    /// Retroactive `Activate` (`replay_history: true`): the server
    /// replays the object's indexed history through the trigger first,
    /// firing on past occurrences. Returns `(fired, scanned, active)`.
    pub fn activate_replay(
        &mut self,
        object: u64,
        trigger: &str,
        params: &[Value],
    ) -> Result<(u64, u64, bool), ClientError> {
        match self.request(Command::Activate {
            object,
            trigger: trigger.to_string(),
            params: params.to_vec(),
            replay_history: true,
        })? {
            Reply::Replayed {
                fired,
                scanned,
                active,
            } => Ok((fired, scanned, active)),
            other => Err(unexpected("Replayed", &other)),
        }
    }

    /// `Query`: run a history query and collect the streamed row
    /// chunks until the terminating [`Reply::QueryDone`] arrives.
    /// Firings that interleave with the row stream are buffered for
    /// [`Client::poll_firing`] as usual.
    pub fn query(&mut self, spec: QuerySpec) -> Result<QueryOutcome, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let cmd = Command::Query {
            class: spec.class,
            object: spec.object,
            kind: spec.kind,
            qualifier: spec.qualifier,
            args: spec.args,
            min_seq: spec.min_seq,
            max_seq: spec.max_seq,
            min_time: spec.min_time,
            max_time: spec.max_time,
            limit: spec.limit,
        };
        let mut line = serde_json::to_string(&Request { id, cmd })
            .map_err(|e| ClientError::Protocol(format!("encode failed: {e}")))?;
        line.push('\n');
        self.write.write_all(line.as_bytes())?;
        self.read.set_read_timeout(Some(self.request_timeout))?;
        let mut rows = Vec::new();
        loop {
            match self.read_msg()? {
                Some(ServerMsg::Firing(f)) => self.pending.push_back(f),
                Some(ServerMsg::Rows {
                    id: rid,
                    rows: chunk,
                }) => {
                    if rid == id {
                        rows.extend(chunk);
                    }
                }
                Some(ServerMsg::Reply { id: rid, result }) => {
                    if rid == id {
                        return match result {
                            ReplyResult::Ok(Reply::QueryDone {
                                truncated,
                                segments_scanned,
                                segments_skipped,
                                ..
                            }) => Ok(QueryOutcome {
                                rows,
                                truncated,
                                segments_scanned,
                                segments_skipped,
                            }),
                            ReplyResult::Ok(other) => Err(unexpected("QueryDone", &other)),
                            ReplyResult::Err(e) => Err(ClientError::Server(e)),
                        };
                    } else if rid == 0 {
                        if let ReplyResult::Err(e) = result {
                            self.notices.push(e);
                        }
                    } else {
                        return Err(ClientError::Protocol(format!(
                            "unexpected reply id {rid} (awaiting {id})"
                        )));
                    }
                }
                Some(_) => {}
                None => {
                    return Err(ClientError::Protocol(
                        "timed out waiting for the reply".to_string(),
                    ))
                }
            }
        }
    }

    /// `Deactivate`.
    pub fn deactivate(&mut self, object: u64, trigger: &str) -> Result<(), ClientError> {
        unit(self.request(Command::Deactivate {
            object,
            trigger: trigger.to_string(),
        })?)
    }

    /// `AdvanceClockBy`.
    pub fn advance_clock_by(&mut self, ms: u64) -> Result<(), ClientError> {
        unit(self.request(Command::AdvanceClockBy { ms })?)
    }

    /// `AdvanceClockTo`.
    pub fn advance_clock_to(&mut self, ms: u64) -> Result<(), ClientError> {
        unit(self.request(Command::AdvanceClockTo { ms })?)
    }

    /// `Snapshot`; returns the snapshot JSON.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        match self.request(Command::Snapshot)? {
            Reply::SnapshotTaken { json } => Ok(json),
            other => Err(unexpected("SnapshotTaken", &other)),
        }
    }

    /// `Restore`.
    pub fn restore(&mut self, snapshot: String) -> Result<(), ClientError> {
        unit(self.request(Command::Restore { snapshot })?)
    }

    /// `Stats`.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.request(Command::Stats)? {
            Reply::Stats(s) => Ok(*s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// `Subscribe`.
    pub fn subscribe(&mut self) -> Result<(), ClientError> {
        unit(self.request(Command::Subscribe)?)
    }

    /// `Unsubscribe`.
    pub fn unsubscribe(&mut self) -> Result<(), ClientError> {
        unit(self.request(Command::Unsubscribe)?)
    }

    /// `TakeOutput`.
    pub fn take_output(&mut self) -> Result<Vec<String>, ClientError> {
        match self.request(Command::TakeOutput)? {
            Reply::Output(lines) => Ok(lines),
            other => Err(unexpected("Output", &other)),
        }
    }

    /// `Promote`: flip a replica writable; returns the LSN its history
    /// continues from. Refuses with `promote_lagging` when un-applied
    /// upstream records are known to exist — see
    /// [`Client::promote_force`].
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        match self.request(Command::Promote { force: false })? {
            Reply::Promoted { lsn, .. } => Ok(lsn),
            other => Err(unexpected("Promoted", &other)),
        }
    }

    /// `Promote` with `force: true`: promote even when the replica
    /// lags its upstream, accepting the loss of the un-applied tail
    /// (the fence demotes it everywhere on rejoin). Returns the
    /// continuation LSN and the new epoch.
    pub fn promote_force(&mut self) -> Result<(u64, u64), ClientError> {
        match self.request(Command::Promote { force: true })? {
            Reply::Promoted { lsn, epoch } => Ok((lsn, epoch)),
            other => Err(unexpected("Promoted", &other)),
        }
    }

    /// `Demote`: announce to the server that `epoch` exists elsewhere.
    /// If that is above the server's own epoch it latches read-only
    /// (typed `deposed` on mutations). Returns the server's epoch
    /// after the announcement.
    pub fn demote(&mut self, epoch: u64) -> Result<u64, ClientError> {
        match self.request(Command::Demote { epoch })? {
            Reply::Demoted { epoch } => Ok(epoch),
            other => Err(unexpected("Demoted", &other)),
        }
    }

    /// `PeekField`.
    pub fn peek_field(&mut self, object: u64, field: &str) -> Result<Value, ClientError> {
        match self.request(Command::PeekField {
            object,
            field: field.to_string(),
        })? {
            Reply::Value(v) => Ok(v),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Run `f` inside a transaction as `user`: begin, run, commit.
    /// Retryable server errors (`lock_conflict`, `wal`) abort and rerun
    /// `f` after a capped, jittered exponential backoff
    /// ([`backoff_delay`]), up to [`Client::max_retries`] retries — the
    /// wire analogue of [`ode_db::SharedDatabase::run_txn`]. An
    /// exhausted budget returns [`ClientError::RetriesExhausted`] with
    /// the attempt count and the last retryable error.
    pub fn txn<T>(
        &mut self,
        user: &str,
        mut f: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            self.begin(user)?;
            let r = f(self).and_then(|v| self.commit().map(|()| v));
            match r {
                Ok(v) => return Ok(v),
                Err(ClientError::Server(e)) if e.retryable => {
                    self.abort()?;
                    if attempts > self.max_retries {
                        return Err(ClientError::RetriesExhausted { attempts, last: e });
                    }
                    std::thread::sleep(backoff_delay(
                        attempts,
                        self.backoff_base,
                        self.backoff_cap,
                        self.backoff_seed,
                    ));
                }
                Err(e) => {
                    let _ = self.abort();
                    return Err(e);
                }
            }
        }
    }
}

fn unit(r: Reply) -> Result<(), ClientError> {
    match r {
        Reply::Unit => Ok(()),
        other => Err(unexpected("Unit", &other)),
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} reply, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Duration = Duration::from_micros(50);
    const CAP: Duration = Duration::from_millis(5);

    /// The un-jittered ceiling the schedule doubles toward.
    fn ceiling(attempt: u32) -> Duration {
        (BASE * 2u32.pow((attempt - 1).min(20))).min(CAP)
    }

    /// Simulate a client's whole retry schedule on a mock clock: sum
    /// the delays [`Client::txn`] would sleep instead of sleeping them.
    #[test]
    fn schedule_is_jittered_exponential_with_cap() {
        let mut mock_clock = Duration::ZERO;
        for attempt in 1..=30 {
            let d = backoff_delay(attempt, BASE, CAP, 42);
            let c = ceiling(attempt);
            assert!(
                c / 2 <= d && d <= c,
                "attempt {attempt}: {d:?} outside [{:?}, {c:?}]",
                c / 2
            );
            mock_clock += d;
        }
        // 30 attempts: 7 doubling steps to the 5ms cap, then flat. The
        // whole schedule is bounded by 30 caps and jitter keeps it over
        // half the ceilings' sum.
        assert!(mock_clock <= CAP * 30);
        assert!(mock_clock >= (1..=30).map(ceiling).sum::<Duration>() / 2);
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        for attempt in 1..=10 {
            assert_eq!(
                backoff_delay(attempt, BASE, CAP, 7),
                backoff_delay(attempt, BASE, CAP, 7),
            );
        }
        let differs = (1..=10).any(|attempt| {
            backoff_delay(attempt, BASE, CAP, 7) != backoff_delay(attempt, BASE, CAP, 8)
        });
        assert!(differs, "two seeds produced identical 10-step schedules");
    }

    #[test]
    fn late_attempts_saturate_at_the_cap() {
        for attempt in [8, 20, 1000, u32::MAX] {
            let d = backoff_delay(attempt, BASE, CAP, 3);
            assert!(CAP / 2 <= d && d <= CAP, "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        for attempt in 1..=5 {
            assert_eq!(
                backoff_delay(attempt, Duration::ZERO, Duration::ZERO, 9),
                Duration::ZERO
            );
        }
    }
}
