//! A socket that is either TCP or Unix-domain, with the small uniform
//! surface the server and client need (clone, timeouts, shutdown).

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A connected stream socket.
pub enum Conn {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Unix(UnixStream),
}

impl Conn {
    /// Clone the handle (shared underlying socket).
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Set (or clear) the read timeout.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Force blocking mode (accepted sockets may inherit the listener's
    /// non-blocking flag on some platforms).
    pub fn set_blocking(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(false),
            Conn::Unix(s) => s.set_nonblocking(false),
        }
    }

    /// Switch non-blocking mode (the reactor runs every socket
    /// non-blocking and multiplexes readiness instead).
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(on),
            Conn::Unix(s) => s.set_nonblocking(on),
        }
    }

    /// The raw descriptor, for readiness registration.
    pub fn as_raw_fd(&self) -> RawFd {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Shut down both directions.
    pub fn shutdown_both(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            Conn::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}
