//! The wire protocol: newline-delimited JSON, one [`Request`] per line
//! from client to server, one [`ServerMsg`] per line back.
//!
//! Every request carries a client-chosen `id`; the server answers each
//! request with exactly one `Reply` echoing that id. Connections that
//! have sent [`Command::Subscribe`] additionally receive unsolicited
//! [`ServerMsg::Firing`] lines as triggers fire, interleaved between
//! replies. Unsolicited *error* notices (malformed line, line-length
//! overflow, idle-transaction timeout) are delivered as replies with
//! `id: 0` — clients never use 0 as a request id.
//!
//! All types serialize with serde's externally-tagged enum
//! representation: a unit variant is its name as a JSON string
//! (`"Ping"`), a payload variant is a one-key object
//! (`{"Begin":{"user":"alice"}}`).

use ode_core::Value;
use ode_db::OdeError;
use serde::{Deserialize, Serialize};

use crate::spec::ClassSpec;

/// A client request: a client-chosen correlation id (must be non-zero)
/// plus the command.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Correlation id echoed in the reply. `0` is reserved for
    /// unsolicited server notices.
    pub id: u64,
    /// The command to execute.
    pub cmd: Command,
}

/// The command surface — the full paper API of the in-process engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Define a class from a declarative spec (trigger events in the
    /// paper's §3 surface syntax, method bodies in the mask expression
    /// grammar).
    DefineClass(ClassSpec),
    /// Begin a transaction as `user`; the session may hold at most one
    /// open transaction.
    Begin {
        /// The transaction's user value (readable through `user()`).
        user: Value,
    },
    /// Commit the session's open transaction.
    Commit,
    /// Abort the session's open transaction (idempotent: aborting a
    /// transaction the engine already finalized succeeds).
    Abort,
    /// Create an object (requires an open transaction).
    New {
        /// Class name.
        class: String,
        /// Field overrides applied over the class defaults.
        overrides: Vec<(String, Value)>,
    },
    /// Invoke a member function (requires an open transaction).
    Call {
        /// Target object id.
        object: u64,
        /// Method name.
        method: String,
        /// Positional arguments.
        args: Vec<Value>,
    },
    /// Delete an object (requires an open transaction).
    Delete {
        /// Target object id.
        object: u64,
    },
    /// Activate a trigger on an object (requires an open transaction).
    Activate {
        /// Target object id.
        object: u64,
        /// Trigger name.
        trigger: String,
        /// Activation parameters.
        params: Vec<Value>,
        /// Retroactive activation: replay the object's indexed event
        /// history through the trigger's automaton first, firing on
        /// past occurrences ([`ServerMsg::Firing`] lines with `retro`
        /// set) and installing the resulting monitoring state — as if
        /// the trigger had been active since inception. Requires the
        /// server to run with `--history`; the reply is
        /// [`Reply::Replayed`] instead of [`Reply::Unit`].
        replay_history: bool,
    },
    /// Deactivate a trigger on an object (requires an open transaction).
    Deactivate {
        /// Target object id.
        object: u64,
        /// Trigger name.
        trigger: String,
    },
    /// Advance the virtual clock by `ms` milliseconds.
    AdvanceClockBy {
        /// Milliseconds to advance by.
        ms: u64,
    },
    /// Advance the virtual clock to an absolute time.
    AdvanceClockTo {
        /// Target virtual time in milliseconds.
        ms: u64,
    },
    /// Snapshot the quiescent store to JSON.
    Snapshot,
    /// Restore a snapshot previously taken with [`Command::Snapshot`]
    /// (the classes must already be defined).
    Restore {
        /// The snapshot JSON.
        snapshot: String,
    },
    /// Durably checkpoint the store into the server's WAL directory and
    /// truncate the log it supersedes. Requires the server to have been
    /// started with a WAL (`--wal-dir`) and a quiescent engine (no open
    /// transactions).
    Checkpoint,
    /// Read the engine counters and clock.
    Stats,
    /// Start streaming trigger-firing notifications to this connection.
    Subscribe,
    /// Stop streaming trigger-firing notifications.
    Unsubscribe,
    /// Drain the database output log.
    TakeOutput,
    /// Read one field of an object without posting events.
    PeekField {
        /// Target object id.
        object: u64,
        /// Field name.
        field: String,
    },
    /// Turn this connection into a replication stream: the server (which
    /// must have a WAL) replies [`Reply::Replicating`] and then feeds the
    /// connection [`ServerMsg::ReplSnapshot`] followed by every WAL
    /// record from the negotiated start LSN onward, live, interleaved
    /// with [`ServerMsg::ReplHeartbeat`] lines. Sent by a replica server,
    /// not by ordinary clients.
    Replicate {
        /// Per-shard: the first LSN the replica still needs from that
        /// shard's stream (its local head). The vector length must
        /// match the primary's shard count, and no entry may exceed
        /// that shard's head. A single-shard replica sends one entry.
        from_lsns: Vec<u64>,
        /// The highest epoch the replica has observed. A claim *above*
        /// the server's own epoch deposes the server (another primary
        /// was elected past it); a claim *below* it triggers the
        /// per-shard fork fence check against the epoch table.
        epoch: u64,
    },
    /// Promote a replica to writable: stop the tailing loop, abort
    /// transactions the stream left open, durably bump the epoch
    /// (`LogOp::EpochBump` in every shard WAL + the epoch table), and
    /// accept mutations from then on. Fails with `not_replica` on a
    /// server that never replicated, and with `promote_lagging` when
    /// un-applied records are known to exist upstream unless `force`.
    Promote {
        /// Promote even when `replica_lag_lsn > 0`, accepting the loss
        /// of the un-applied tail.
        force: bool,
    },
    /// Tell a server it has been deposed: epoch `epoch` exists
    /// elsewhere. If `epoch` is above the server's own, it latches
    /// read-only (typed `deposed` on mutations) until its history
    /// catches up under a new parent. Idempotent; never mutates data.
    Demote {
        /// The higher epoch being announced.
        epoch: u64,
    },
    /// Query the committed event history (requires `--history`). Every
    /// field is a conjunct; `None`/empty means unconstrained. Matching
    /// rows stream back as [`ServerMsg::Rows`] chunks (in shard-major
    /// order, store order within a shard) followed by one
    /// [`Reply::QueryDone`]. Needs no open transaction and is allowed
    /// on read-only replicas.
    Query {
        /// Class name.
        class: Option<String>,
        /// Global object id.
        object: Option<u64>,
        /// Event kind: a fixed kind name (`create`, `delete`, `read`,
        /// `update`, `access`, `tbegin`, `tcomplete`, `tcommit`,
        /// `tabort`, `start`, `time`) or a method name.
        kind: Option<String>,
        /// Qualifier, `"before"` or `"after"`.
        qualifier: Option<String>,
        /// Argument predicates `(index, op, value)` with op one of
        /// `eq`, `ne`, `lt`, `le`, `gt`, `ge`; all must hold.
        args: Vec<(u64, String, Value)>,
        /// Minimum posting seq (inclusive).
        min_seq: Option<u64>,
        /// Maximum posting seq (inclusive).
        max_seq: Option<u64>,
        /// Minimum commit-time virtual clock ms (inclusive).
        min_time: Option<u64>,
        /// Maximum commit-time virtual clock ms (inclusive).
        max_time: Option<u64>,
        /// Row cap; the server also imposes its own ceiling.
        limit: Option<u64>,
    },
}

/// One server-to-client line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ServerMsg {
    /// The answer to a request (or an unsolicited notice when `id` is 0).
    Reply {
        /// The request's correlation id.
        id: u64,
        /// Outcome.
        result: ReplyResult,
    },
    /// A trigger-firing notification (subscribed connections only).
    Firing(Firing),
    /// A chunk of matching history rows for an in-flight
    /// [`Command::Query`], delivered before its reply.
    Rows {
        /// The query request's correlation id.
        id: u64,
        /// The rows, in store order.
        rows: Vec<WireRow>,
    },
    /// First message of a replication stream: the primary's full schema
    /// and, when the replica's `from_lsn` predates the primary's oldest
    /// retained record, the checkpoint snapshot to bootstrap from.
    ReplSnapshot {
        /// Which shard stream this bootstrap belongs to (always `0`
        /// on a single-shard primary).
        shard: u64,
        /// The LSN the stream starts at. With a snapshot this is the
        /// LSN the snapshot covers; records follow from here.
        lsn: u64,
        /// Every class defined on the primary, in definition order. The
        /// replica defines the ones it doesn't have (schema catch-up on
        /// every reconnect).
        schema: Vec<ClassSpec>,
        /// Snapshot JSON to restore before applying records, or `None`
        /// when the log alone covers the replica's catch-up.
        snapshot: Option<String>,
        /// The server's epoch at handshake time.
        epoch: u64,
        /// Set when the replica's `from_lsn` proved it holds records
        /// from a deposed fork: the LSN of the first epoch bump past
        /// the replica's claimed epoch. Everything the replica holds
        /// beyond this LSN is fork debris — it must discard the shard's
        /// local history and re-replicate from scratch. No records
        /// follow a fencing bootstrap.
        fence_lsn: Option<u64>,
    },
    /// One shipped WAL record.
    ReplOp {
        /// Which shard's WAL stream the record belongs to (always `0`
        /// on a single-shard primary). LSNs are per-shard sequences.
        shard: u64,
        /// The record's log sequence number within its shard stream.
        lsn: u64,
        /// That shard's head LSN at ship time (drives lag reporting).
        head: u64,
        /// The record as a hex-encoded CRC32 frame
        /// ([`ode_db::durability::frame`]) — the replica verifies the
        /// checksum end to end before applying.
        frame: String,
        /// The shipper's epoch at ship time. A frame stamped below the
        /// receiver's observed epoch is from a deposed lineage and is
        /// rejected (`stale_epoch`) before it touches the engine.
        epoch: u64,
    },
    /// A compressed archive of WAL records, shipped during replica
    /// catch-up when the requested `from_lsn` predates the primary's
    /// live log but the archive chain still covers it. Cheaper than a
    /// snapshot bootstrap: the replica replays records instead of
    /// discarding its state.
    ReplArchive {
        /// Which shard stream the archived records belong to.
        shard: u64,
        /// The LSN of the archive's first record.
        base_lsn: u64,
        /// Records in the archive (the replica verifies the decoded
        /// count against this).
        records: u64,
        /// The archive file bytes (CRC-framed, LZ-compressed), hex
        /// encoded like [`ServerMsg::ReplOp`] frames.
        data: String,
        /// The shipper's epoch at ship time.
        epoch: u64,
    },
    /// A class defined on the primary mid-stream.
    ReplSchema(ClassSpec),
    /// Periodic head report so an idle replica still tracks lag and
    /// detects a dead link.
    ReplHeartbeat {
        /// Which shard stream the head report is for.
        shard: u64,
        /// That shard's current head LSN on the primary.
        head: u64,
        /// The sender's epoch. A heartbeat carrying a higher epoch than
        /// the receiver has observed deposes the receiver's own write
        /// authority (it learns a newer primary exists).
        epoch: u64,
    },
}

/// Request outcome. (The vendored serde has no `Result` impl, so the
/// protocol carries its own two-variant enum.)
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ReplyResult {
    /// Success.
    Ok(Reply),
    /// Failure.
    Err(WireError),
}

/// Successful reply payloads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Reply {
    /// Command completed with nothing to return.
    Unit,
    /// Answer to [`Command::Ping`].
    Pong,
    /// A freshly created object.
    Object {
        /// The new object's id.
        id: u64,
    },
    /// A method return value or peeked field.
    Value(Value),
    /// A freshly begun transaction.
    Begun {
        /// The transaction id.
        txn: u64,
    },
    /// Engine counters (boxed: the stats block dwarfs every other
    /// reply; the wire format is unchanged).
    Stats(Box<WireStats>),
    /// A snapshot of the store.
    SnapshotTaken {
        /// The snapshot JSON (opaque to clients).
        json: String,
    },
    /// Drained output-log lines.
    Output(Vec<String>),
    /// A durable checkpoint completed.
    Checkpointed {
        /// The log sequence number the checkpoint covers.
        lsn: u64,
        /// Superseded segment files the retention sweep deleted —
        /// `0` here over and over means retention is not reclaiming,
        /// and Replicate handshakes will keep falling back to
        /// snapshot bootstraps.
        swept_segments: u64,
        /// How long the snapshot + checkpoint held the engine lock —
        /// every session stalls for this long. The retention sweep runs
        /// *after* the locks drop, so its cost shows up in `sweep_ms`,
        /// not here.
        stall_ms: u64,
        /// How long the post-checkpoint sweep took after the engine
        /// locks were released (file deletion in plain mode; a queue
        /// hand-off to the archiver thread in `--wal-archive` mode).
        sweep_ms: u64,
    },
    /// Answer to [`Command::Replicate`]: the stream is established.
    /// (The stream's first messages may already be queued before this
    /// reply; replicas must tolerate either order.)
    Replicating {
        /// Per shard: the LSN that shard's stream starts at (≥ the
        /// requested `from_lsns[s]` only when a snapshot bootstrap
        /// jumps past it; otherwise equal to it).
        start_lsns: Vec<u64>,
        /// Per shard: that shard's head LSN at handshake time.
        heads: Vec<u64>,
        /// The serving node's epoch at handshake time.
        epoch: u64,
    },
    /// Answer to [`Command::Promote`]: the replica is now writable.
    Promoted {
        /// The LSN of the last record applied before promotion — the
        /// point the new primary's history continues from.
        lsn: u64,
        /// The epoch the node was promoted into (durable before this
        /// reply is sent).
        epoch: u64,
    },
    /// Answer to [`Command::Demote`].
    Demoted {
        /// The server's epoch after processing the announcement.
        epoch: u64,
    },
    /// Answer to [`Command::Query`], after every [`ServerMsg::Rows`]
    /// chunk for the query has been delivered.
    QueryDone {
        /// Rows streamed back.
        rows: u64,
        /// The row cap cut matching short — more rows exist.
        truncated: bool,
        /// Segments whose bodies were decoded, across all shards.
        segments_scanned: u64,
        /// Segments pruned by zone metadata alone, across all shards.
        segments_skipped: u64,
    },
    /// Answer to a retroactive [`Command::Activate`] (`replay_history`).
    Replayed {
        /// Past occurrences the trigger fired on (each also streamed to
        /// subscribers as a retro [`ServerMsg::Firing`]).
        fired: u64,
        /// Stored events of the object that were replayed through the
        /// automaton.
        scanned: u64,
        /// Whether the trigger is still monitoring (`false` once a
        /// non-perpetual trigger consumed a past firing).
        active: bool,
    },
}

/// A structured protocol error.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireError {
    /// Stable machine-readable code (`lock_conflict`, `no_txn`, …).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Whether aborting and retrying the transaction may succeed.
    pub retryable: bool,
}

impl WireError {
    /// Build a non-retryable error.
    pub fn new(code: &str, message: impl Into<String>) -> WireError {
        WireError {
            code: code.to_string(),
            message: message.into(),
            retryable: false,
        }
    }

    /// Map an engine error onto a wire error. Lock conflicts are the
    /// only retryable class: the engine returns them immediately rather
    /// than blocking, so the client aborts and retries (no deadlock).
    pub fn from_ode(e: &OdeError) -> WireError {
        let (code, retryable) = match e {
            OdeError::LockConflict { .. } => ("lock_conflict", true),
            OdeError::Aborted(_) => ("aborted", false),
            OdeError::ClassExists(_) => ("class_exists", false),
            OdeError::UnknownClass(_) => ("unknown_class", false),
            OdeError::UnknownObject(_) | OdeError::ObjectDeleted(_) => ("unknown_object", false),
            OdeError::UnknownMethod { .. } => ("unknown_method", false),
            OdeError::UnknownTrigger { .. } => ("unknown_trigger", false),
            OdeError::WrongArgCount { .. } => ("bad_args", false),
            OdeError::UnknownTxn(_) => ("unknown_txn", false),
            OdeError::Event(_) | OdeError::ImpossibleEvent { .. } => ("bad_event", false),
            OdeError::Mask(_) => ("bad_mask", false),
            OdeError::Method(_) => ("engine", false),
        };
        WireError {
            code: code.to_string(),
            message: e.to_string(),
            retryable,
        }
    }
}

/// Engine counters plus the virtual clock, as served by
/// [`Command::Stats`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireStats {
    /// Basic events posted to objects.
    pub events_posted: u64,
    /// Automaton steps taken.
    pub symbols_stepped: u64,
    /// Trigger firings (object and schema triggers).
    pub triggers_fired: u64,
    /// Committed transactions.
    pub txns_committed: u64,
    /// Aborted transactions.
    pub txns_aborted: u64,
    /// Current virtual time in milliseconds.
    pub clock_ms: u64,
    /// Firing notifications dropped because a subscriber's outbox or
    /// socket write failed.
    pub subscriber_drops: u64,
    /// Connections currently open (sessions live on the reactor loop,
    /// or legacy session threads).
    pub conns_open: u64,
    /// Connections refused by the `--max-conns` accept guard with a
    /// `server_full` notice since startup.
    pub conns_rejected: u64,
    /// Whether the server currently refuses mutations: latched after a
    /// WAL failure, or running as an unpromoted replica.
    pub read_only: bool,
    /// The WAL's next log sequence number (`None` when running without
    /// a WAL). On a replica this is the *local* WAL's head, which
    /// trails `last_applied_lsn` only by records not yet flushed.
    pub wal_lsn: Option<u64>,
    /// One past the highest LSN the WAL guarantees durable (`None`
    /// without a WAL). Under group commit this trails `wal_lsn` by the
    /// records buffered for the next batch fsync; commits are only
    /// acked at or below it.
    pub durable_lsn: Option<u64>,
    /// Total fsyncs the WAL has issued since startup (`0` without a
    /// WAL). With group commit this grows far slower than
    /// `txns_committed` — that gap is the batching win.
    pub fsyncs_total: u64,
    /// Group-commit flush cycles completed (`0` under inline fsync
    /// policies).
    pub group_commit_batches: u64,
    /// The most commits/aborts ever made durable by one fsync — `>1`
    /// proves batching engaged.
    pub group_commit_max_batch: u64,
    /// Whether this server was started as a replica
    /// (`--replicate-from`). Stays `true` after promotion.
    pub replica: bool,
    /// Whether the replication stream to the primary is currently
    /// established (`false` on non-replicas, while reconnecting, and
    /// after promotion).
    pub repl_connected: bool,
    /// One past the LSN of the last record this replica applied
    /// (`None` on non-replicas).
    pub last_applied_lsn: Option<u64>,
    /// How many records the primary is ahead: its last reported head
    /// minus `last_applied_lsn`. `None` on non-replicas and after
    /// promotion; `0` when caught up.
    pub replica_lag_lsn: Option<u64>,
    /// How many engine shards the server runs (`1` unless started with
    /// `--shards N`).
    pub shards: u64,
    /// Per shard: transactions committed wholly on that shard plus
    /// cross-shard commits it participated in. Skew here means the
    /// workload's objects hash unevenly.
    pub shard_commits: Vec<u64>,
    /// Per shard: cumulative microseconds sessions spent *waiting* for
    /// that shard's engine lock — the contention signal sharding is
    /// meant to drive down. Flat and near-zero at `--shards N` with a
    /// partitionable workload; one hot entry means a hot shard.
    pub shard_lock_wait_us: Vec<u64>,
    /// Whether the event-history store is on (`--history`).
    pub hist_enabled: bool,
    /// Sealed history segments, summed across shards.
    pub hist_segments: u64,
    /// History rows indexed (sealed + active), summed across shards.
    pub hist_rows: u64,
    /// Bytes across sealed history segment files, summed across shards.
    pub hist_disk_bytes: u64,
    /// Per shard: one past the last commit LSN folded into that shard's
    /// history store. Trails the shard's `durable_lsn` only by batches
    /// the background indexer has not drained yet.
    pub hist_indexed_lsns: Vec<u64>,
    /// History queries served, summed across shards.
    pub hist_queries: u64,
    /// Rows returned across all history queries.
    pub hist_rows_returned: u64,
    /// Segments pruned by zone metadata across all history queries —
    /// the segment-skipping win.
    pub hist_segments_skipped: u64,
    /// Retroactive trigger replays served from the history store.
    pub hist_retro_replays: u64,
    /// The node's current primary-election epoch: the highest it has
    /// observed by promotion, by applying a shipped `EpochBump`, or by
    /// being fenced/demoted.
    pub epoch: u64,
    /// Whether the node is deposed: it observed an epoch (handshake,
    /// heartbeat, or explicit `Demote`) that its own history has not
    /// caught up to. A deposed node refuses mutations (`deposed`) and
    /// refuses to serve `Replicate`.
    pub deposed: bool,
    /// Milliseconds since the replication runner last heard from its
    /// upstream (handshake reply, heartbeat, or shipped record).
    /// `None` on non-replicas, after promotion, and before the first
    /// contact. The runner itself reconnects when this exceeds three
    /// heartbeat intervals.
    pub repl_heartbeat_age_ms: Option<u64>,
    /// Frames and handshakes this node refused because they carried a
    /// stale epoch — nonzero means a deposed primary (or its subtree)
    /// tried to ship or rejoin with forked history.
    pub stale_epoch_rejections: u64,
    /// Wall-clock milliseconds startup recovery spent replaying the
    /// WAL (all shards; `0` without a WAL).
    pub recovery_ms: u64,
    /// Segment files replayed by startup recovery, summed across
    /// shards.
    pub segments_replayed: u64,
    /// Segments made archive-durable (and unlinked) since startup,
    /// summed across shards (`0` unless `--wal-archive`).
    pub archive_segments: u64,
    /// Compressed bytes written to the archive since startup, summed
    /// across shards.
    pub archive_bytes: u64,
    /// Segments swept by a checkpoint but not yet durable in the
    /// archive — the archiver's backlog. Persistently nonzero means
    /// the archiver can't keep up with checkpoint cadence.
    pub archive_lag_segments: u64,
}

/// A trigger firing as streamed to subscribers — the wire image of
/// [`ode_db::FiringNotice`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Firing {
    /// The engine shard the firing was detected on (`0` unless the
    /// server runs sharded).
    pub shard: u64,
    /// Firing sequence number, strictly increasing and unique *within
    /// its shard* (each shard's engine numbers its own firings).
    pub seq: u64,
    /// The detecting transaction (firings of transactions that later
    /// abort are still streamed; correlate by this id).
    pub txn: u64,
    /// The object whose trigger fired.
    pub object: u64,
    /// The object's class.
    pub class: String,
    /// The trigger's name.
    pub trigger: String,
    /// The completing basic event, rendered in §3 syntax
    /// (`after withdraw`).
    pub event: String,
    /// Arguments of the completing event.
    pub args: Vec<Value>,
    /// Captured constituent-event arguments (capture-enabled triggers).
    pub captured: Vec<CapturedEvent>,
    /// A retroactive firing: produced by replaying stored history
    /// during a `replay_history` activation, with `seq` the original
    /// posting's seq. The trigger's action did not run.
    pub retro: bool,
}

/// One captured constituent event of a composite firing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CapturedEvent {
    /// The constituent basic event, rendered in §3 syntax.
    pub event: String,
    /// Its most recently captured arguments.
    pub args: Vec<Value>,
}

impl Firing {
    /// Convert an engine notice to its wire image. The notice's object
    /// id is shard-local; `shard`/`shard_count` translate it to the
    /// global id clients address (the identity map when unsharded).
    pub fn from_notice(n: &ode_db::FiringNotice, shard: usize, shard_count: usize) -> Firing {
        Firing {
            shard: shard as u64,
            seq: n.seq,
            txn: n.txn.0,
            object: ode_db::to_global(n.object, shard, shard_count).0,
            class: n.class.clone(),
            trigger: n.trigger.clone(),
            event: n.event.to_string(),
            args: n.args.clone(),
            captured: n
                .captured
                .iter()
                .map(|(b, a)| CapturedEvent {
                    event: b.to_string(),
                    args: a.clone(),
                })
                .collect(),
            retro: n.retro,
        }
    }
}

/// One committed history row as returned by [`Command::Query`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireRow {
    /// Engine posting seq (unique within its shard, stable across
    /// restarts).
    pub seq: u64,
    /// The engine shard the posting happened on.
    pub shard: u64,
    /// Virtual-clock milliseconds at commit time.
    pub time: u64,
    /// Committing transaction id.
    pub txn: u64,
    /// Global object id.
    pub object: u64,
    /// Class name.
    pub class: String,
    /// The basic event, rendered in §3 syntax (`after withdraw`).
    pub event: String,
    /// The posting's arguments.
    pub args: Vec<Value>,
}

/// Hex-encode bytes for embedding a binary frame in a JSON line.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode [`hex_encode`] output; `None` on odd length or non-hex bytes.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex");
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 7,
            cmd: Command::Call {
                object: 3,
                method: "withdraw".into(),
                args: vec![Value::Str("bolt".into()), Value::Int(5)],
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 7);
        match back.cmd {
            Command::Call {
                object,
                method,
                args,
            } => {
                assert_eq!(object, 3);
                assert_eq!(method, "withdraw");
                assert_eq!(args.len(), 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unit_commands_serialize_as_strings() {
        let json = serde_json::to_string(&Command::Ping).unwrap();
        assert_eq!(json, "\"Ping\"");
        let back: Command = serde_json::from_str("\"Commit\"").unwrap();
        assert!(matches!(back, Command::Commit));
    }

    #[test]
    fn reply_result_round_trips() {
        let msg = ServerMsg::Reply {
            id: 1,
            result: ReplyResult::Err(WireError::new("no_txn", "no open transaction")),
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: ServerMsg = serde_json::from_str(&json).unwrap();
        match back {
            ServerMsg::Reply { id, result } => {
                assert_eq!(id, 1);
                match result {
                    ReplyResult::Err(e) => assert_eq!(e.code, "no_txn"),
                    ReplyResult::Ok(_) => panic!("expected Err"),
                }
            }
            other => panic!("expected Reply, got {other:?}"),
        }
    }

    #[test]
    fn lock_conflict_maps_retryable() {
        let e = OdeError::LockConflict {
            object: ode_db::ObjectId(1),
            holder: ode_db::TxnId(2),
        };
        let w = WireError::from_ode(&e);
        assert_eq!(w.code, "lock_conflict");
        assert!(w.retryable);
    }
}
