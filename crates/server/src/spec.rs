//! Declarative class specifications — how a network client defines an
//! O++ class over the wire.
//!
//! A [`ClassSpec`] is pure data: field defaults, method bodies written
//! as small sequences of [`MethodOp`]s whose expressions use the mask
//! grammar (parsed with [`ode_core::parse_mask`]), side-effect-free mask
//! functions, and triggers whose composite events are given as *text* in
//! the paper's §3 surface syntax (parsed with [`ode_core::parse_event`]).
//! [`compile_class`] lowers the spec to an [`ode_db::ClassDef`]; all
//! parse errors surface at define time, never at call time.
//!
//! Method and mask expressions evaluate against an environment binding
//! the declared parameters positionally and the object's fields by name,
//! plus three record builtins: `get(rec, key)`, `put(rec, key, val)`
//! (functional update), and `ifelse(cond, a, b)`. Mask-function bodies
//! additionally see `user()`, the calling transaction's user value.

use std::collections::BTreeMap;
use std::sync::Arc;

use ode_core::{parse_mask, MaskEnv, MaskExpr, Value};
use ode_db::{Action, ActionCtx, ClassDef, MaskFnCtx, MethodCtx, MethodKind, OdeError};
use serde::{Deserialize, Serialize};

/// A wire-transmissible class definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Fields with default values.
    pub fields: Vec<FieldSpec>,
    /// Public member functions.
    pub methods: Vec<MethodSpec>,
    /// Mask functions (usable inside trigger-event masks).
    pub masks: Vec<MaskFnSpec>,
    /// Triggers, in declaration order.
    pub triggers: Vec<TriggerSpec>,
    /// Triggers auto-activated in the constructor.
    pub activate_on_create: Vec<String>,
}

/// A field with its default value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name.
    pub name: String,
    /// Default value for new objects.
    pub default: Value,
}

/// A member function.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodSpec {
    /// Method name.
    pub name: String,
    /// `true` posts `before/after update` events, `false` posts
    /// `before/after read` (Section 3.1).
    pub update: bool,
    /// Declared parameter names (bound positionally at call time).
    pub params: Vec<String>,
    /// The body, executed in order.
    pub body: Vec<MethodOp>,
}

/// One step of a method body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum MethodOp {
    /// Evaluate `expr` and store the result into `field`.
    Set {
        /// Target field.
        field: String,
        /// Mask-grammar expression over params, fields, and builtins.
        expr: String,
    },
    /// Append `text` to the output log, substituting `{param}`
    /// placeholders with argument values.
    Emit {
        /// The template text.
        text: String,
    },
    /// Fail the call (engine error, transaction continues) unless
    /// `expr` evaluates to true.
    Require {
        /// Mask-grammar condition.
        expr: String,
        /// Error message on failure.
        message: String,
    },
}

/// A side-effect-free mask function, e.g. the paper's
/// `authorized(user())` or `reorder(i)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaskFnSpec {
    /// Function name.
    pub name: String,
    /// Parameter names (bound positionally).
    pub params: Vec<String>,
    /// Mask-grammar body; also sees object fields and `user()`.
    pub expr: String,
}

/// A trigger declaration: `name: [perpetual] event ==> action`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TriggerSpec {
    /// Trigger name.
    pub name: String,
    /// Perpetual triggers stay active after firing; once-only triggers
    /// deactivate (Section 2).
    pub perpetual: bool,
    /// The composite event, in §3 surface syntax.
    pub event: String,
    /// The action run when the trigger fires.
    pub action: ActionSpec,
    /// Capture constituent-event arguments as the composite unfolds.
    pub capture: bool,
    /// Monitor the full history including aborted transactions
    /// (Section 6).
    pub full_history: bool,
}

/// A declarative trigger action.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ActionSpec {
    /// Abort the surrounding transaction (`==> tabort`).
    Abort,
    /// Append a line to the output log.
    Emit(String),
    /// Call a member function with no arguments.
    Call(String),
    /// Call a member function with the completing event's arguments —
    /// the shape of the paper's T2 `order(i)`.
    CallWithEventArgs {
        /// Method to call.
        method: String,
    },
    /// Re-activate this trigger (T2 "must be explicitly reactivated").
    Reactivate,
    /// Run several actions in order.
    Seq(Vec<ActionSpec>),
}

/// Record/value builtins shared by method and mask-function
/// environments.
fn builtin(name: &str, args: &[Value]) -> Option<Value> {
    match name {
        "get" => {
            let key = match args.get(1)? {
                Value::Str(s) => s.as_str(),
                _ => return None,
            };
            args.first()?.member(key).cloned()
        }
        "put" => {
            let mut rec = match args.first()? {
                Value::Record(m) => m.clone(),
                _ => return None,
            };
            let key = match args.get(1)? {
                Value::Str(s) => s.clone(),
                _ => return None,
            };
            rec.insert(key, args.get(2)?.clone());
            Some(Value::Record(rec))
        }
        "ifelse" => {
            if args.first()?.as_bool()? {
                args.get(1).cloned()
            } else {
                args.get(2).cloned()
            }
        }
        _ => None,
    }
}

/// Mask-grammar environment for method bodies: params positionally,
/// fields by name, record builtins.
struct MethodOpEnv<'a, 'b> {
    names: &'a [String],
    ctx: &'a MethodCtx<'b>,
}

impl MaskEnv for MethodOpEnv<'_, '_> {
    fn param(&self, name: &str) -> Option<Value> {
        let i = self.names.iter().position(|n| n == name)?;
        self.ctx.args().get(i).cloned()
    }
    fn field(&self, name: &str) -> Option<Value> {
        self.ctx.get(name).cloned()
    }
    fn call(&self, name: &str, args: &[Value]) -> Option<Value> {
        builtin(name, args)
    }
}

/// Mask-grammar environment for mask-function bodies: params
/// positionally, fields by name, `user()` plus record builtins.
struct MaskSpecEnv<'a> {
    names: &'a [String],
    args: &'a [Value],
    fields: &'a BTreeMap<String, Value>,
    user: &'a Value,
}

impl MaskEnv for MaskSpecEnv<'_> {
    fn param(&self, name: &str) -> Option<Value> {
        let i = self.names.iter().position(|n| n == name)?;
        self.args.get(i).cloned()
    }
    fn field(&self, name: &str) -> Option<Value> {
        self.fields.get(name).cloned()
    }
    fn call(&self, name: &str, args: &[Value]) -> Option<Value> {
        if name == "user" && args.is_empty() {
            return Some(self.user.clone());
        }
        builtin(name, args)
    }
}

enum CompiledOp {
    Set { field: String, expr: MaskExpr },
    Emit { text: String },
    Require { expr: MaskExpr, message: String },
}

fn compile_ops(body: &[MethodOp]) -> Result<Vec<CompiledOp>, OdeError> {
    body.iter()
        .map(|op| {
            Ok(match op {
                MethodOp::Set { field, expr } => CompiledOp::Set {
                    field: field.clone(),
                    expr: parse_mask(expr).map_err(OdeError::Event)?,
                },
                MethodOp::Emit { text } => CompiledOp::Emit { text: text.clone() },
                MethodOp::Require { expr, message } => CompiledOp::Require {
                    expr: parse_mask(expr).map_err(OdeError::Event)?,
                    message: message.clone(),
                },
            })
        })
        .collect()
}

fn substitute(template: &str, names: &[String], ctx: &MethodCtx<'_>) -> String {
    let mut out = template.to_string();
    for (i, name) in names.iter().enumerate() {
        let needle = format!("{{{name}}}");
        if out.contains(&needle) {
            let val = ctx.args().get(i).map(|v| v.to_string()).unwrap_or_default();
            out = out.replace(&needle, &val);
        }
    }
    out
}

fn run_ops(
    ops: &[CompiledOp],
    names: &[String],
    ctx: &mut MethodCtx<'_>,
) -> Result<Value, OdeError> {
    for op in ops {
        match op {
            CompiledOp::Set { field, expr } => {
                let v = {
                    let env = MethodOpEnv { names, ctx };
                    expr.eval(&env).map_err(OdeError::Mask)?
                };
                ctx.set(field.clone(), v);
            }
            CompiledOp::Emit { text } => {
                let line = substitute(text, names, ctx);
                ctx.emit(line);
            }
            CompiledOp::Require { expr, message } => {
                let ok = {
                    let env = MethodOpEnv { names, ctx };
                    expr.eval_bool(&env).map_err(OdeError::Mask)?
                };
                if !ok {
                    return Err(OdeError::Method(message.clone()));
                }
            }
        }
    }
    Ok(Value::Null)
}

fn run_action(spec: &ActionSpec, ctx: &mut ActionCtx<'_>) -> Result<(), OdeError> {
    match spec {
        ActionSpec::Abort => ctx.tabort(),
        ActionSpec::Emit(s) => {
            ctx.emit(s.clone());
            Ok(())
        }
        ActionSpec::Call(m) => ctx.call(m, &[]).map(|_| ()),
        ActionSpec::CallWithEventArgs { method } => {
            let args = ctx.event_args().to_vec();
            ctx.call(method, &args).map(|_| ())
        }
        ActionSpec::Reactivate => {
            let t = ctx.trigger().to_string();
            ctx.activate(&t, &[])
        }
        ActionSpec::Seq(items) => {
            for s in items {
                run_action(s, ctx)?;
            }
            Ok(())
        }
    }
}

fn compile_action(spec: &ActionSpec) -> Action {
    match spec {
        ActionSpec::Abort => Action::Abort,
        ActionSpec::Emit(s) => Action::Emit(s.clone()),
        ActionSpec::Call(m) => Action::Call(m.clone()),
        other => {
            let owned = other.clone();
            Action::Native(Arc::new(move |ctx| run_action(&owned, ctx)))
        }
    }
}

/// Lower a [`ClassSpec`] to an engine [`ClassDef`]. Event-syntax and
/// mask-grammar errors surface here, at define time.
pub fn compile_class(spec: &ClassSpec) -> Result<ClassDef, OdeError> {
    let mut b = ClassDef::builder(&spec.name);
    for f in &spec.fields {
        b = b.field(&f.name, f.default.clone());
    }
    for m in &spec.methods {
        let ops = compile_ops(&m.body)?;
        let names = m.params.clone();
        let kind = if m.update {
            MethodKind::Update
        } else {
            MethodKind::Read
        };
        let param_refs: Vec<&str> = m.params.iter().map(String::as_str).collect();
        b = b.method(&m.name, kind, &param_refs, move |ctx| {
            run_ops(&ops, &names, ctx)
        });
    }
    for mf in &spec.masks {
        let expr = parse_mask(&mf.expr).map_err(OdeError::Event)?;
        let names = mf.params.clone();
        b = b.mask_fn(&mf.name, move |ctx: &MaskFnCtx<'_>, args: &[Value]| {
            let env = MaskSpecEnv {
                names: &names,
                args,
                fields: ctx.fields,
                user: ctx.user,
            };
            expr.eval(&env).ok()
        });
    }
    for t in &spec.triggers {
        b = b.trigger(&t.name, t.perpetual, &t.event, compile_action(&t.action));
        if t.capture {
            b = b.capture_params();
        }
        if t.full_history {
            b = b.full_history();
        }
    }
    let activate: Vec<&str> = spec.activate_on_create.iter().map(String::as_str).collect();
    b = b.activate_on_create(&activate);
    b.build()
}

/// A ready-made stockroom-shaped spec (the paper's running example):
/// a record field of item quantities, `withdraw`/`deposit` methods
/// written with the record builtins, an `authorized` mask function,
/// an abort trigger T1 and an emit trigger T6. Shared by the
/// integration tests, the examples, and bench E11.
pub fn stockroom_spec() -> ClassSpec {
    ClassSpec {
        name: "room".into(),
        fields: vec![FieldSpec {
            name: "items".into(),
            default: Value::record([("bolt", Value::Int(500)), ("gear", Value::Int(100))]),
        }],
        methods: vec![
            MethodSpec {
                name: "withdraw".into(),
                update: true,
                params: vec!["i".into(), "q".into()],
                body: vec![MethodOp::Set {
                    field: "items".into(),
                    expr: "put(items, i, get(items, i) - q)".into(),
                }],
            },
            MethodSpec {
                name: "deposit".into(),
                update: true,
                params: vec!["i".into(), "q".into()],
                body: vec![MethodOp::Set {
                    field: "items".into(),
                    expr: "put(items, i, get(items, i) + q)".into(),
                }],
            },
        ],
        masks: vec![MaskFnSpec {
            name: "authorized".into(),
            params: vec!["u".into()],
            expr: "u != \"mallory\"".into(),
        }],
        triggers: vec![
            TriggerSpec {
                name: "T1".into(),
                perpetual: true,
                event: "before withdraw && !authorized(user())".into(),
                action: ActionSpec::Abort,
                capture: false,
                full_history: false,
            },
            TriggerSpec {
                name: "T6".into(),
                perpetual: true,
                event: "after withdraw(i, q) && q > 100".into(),
                action: ActionSpec::Emit("large withdrawal".into()),
                capture: false,
                full_history: false,
            },
        ],
        activate_on_create: vec!["T1".into(), "T6".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_db::Database;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = stockroom_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClassSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "room");
        assert_eq!(back.methods.len(), 2);
        assert_eq!(back.triggers.len(), 2);
    }

    #[test]
    fn compiled_spec_runs_the_paper_semantics() {
        let mut db = Database::new();
        db.define_class(compile_class(&stockroom_spec()).unwrap())
            .unwrap();

        let txn = db.begin_as(Value::Str("alice".into()));
        let room = db.create_object(txn, "room", &[]).unwrap();
        db.call(
            txn,
            room,
            "withdraw",
            &[Value::Str("bolt".into()), Value::Int(150)],
        )
        .unwrap();
        db.commit(txn).unwrap();

        assert_eq!(
            db.peek_field(room, "items").unwrap().member("bolt"),
            Some(&Value::Int(350))
        );
        assert!(db.output().iter().any(|l| l.contains("large withdrawal")));

        // T1: mallory's withdraw aborts the whole transaction.
        let txn = db.begin_as(Value::Str("mallory".into()));
        let r = db.call(
            txn,
            room,
            "withdraw",
            &[Value::Str("bolt".into()), Value::Int(1)],
        );
        assert!(matches!(r, Err(OdeError::Aborted(_))));
        assert_eq!(
            db.peek_field(room, "items").unwrap().member("bolt"),
            Some(&Value::Int(350)),
            "aborted withdraw must roll back"
        );
    }

    #[test]
    fn require_op_fails_the_call_without_aborting() {
        let spec = ClassSpec {
            name: "guarded".into(),
            fields: vec![FieldSpec {
                name: "n".into(),
                default: Value::Int(0),
            }],
            methods: vec![MethodSpec {
                name: "bump".into(),
                update: true,
                params: vec!["by".into()],
                body: vec![
                    MethodOp::Require {
                        expr: "by > 0".into(),
                        message: "bump must be positive".into(),
                    },
                    MethodOp::Set {
                        field: "n".into(),
                        expr: "n + by".into(),
                    },
                    MethodOp::Emit {
                        text: "bumped by {by}".into(),
                    },
                ],
            }],
            masks: vec![],
            triggers: vec![],
            activate_on_create: vec![],
        };
        let mut db = Database::new();
        db.define_class(compile_class(&spec).unwrap()).unwrap();
        let txn = db.begin();
        let obj = db.create_object(txn, "guarded", &[]).unwrap();
        let r = db.call(txn, obj, "bump", &[Value::Int(-1)]);
        assert!(matches!(r, Err(OdeError::Method(_))));
        db.call(txn, obj, "bump", &[Value::Int(3)]).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.peek_field(obj, "n"), Some(Value::Int(3)));
        assert!(db.output().iter().any(|l| l == "bumped by 3"));
    }

    #[test]
    fn bad_event_syntax_fails_at_compile() {
        let mut spec = stockroom_spec();
        spec.triggers[0].event = "before tcommit".into();
        assert!(compile_class(&spec).is_err());
    }

    #[test]
    fn bad_method_expr_fails_at_compile() {
        let mut spec = stockroom_spec();
        spec.methods[0].body = vec![MethodOp::Set {
            field: "items".into(),
            expr: "put(items, i,".into(),
        }];
        assert!(compile_class(&spec).is_err());
    }
}
