//! End-to-end wire test: the paper's stockroom scenario driven by
//! concurrent TCP clients, with exactly-once firing delivery to every
//! subscriber.
//!
//! Eight worker clients hammer one `room` object with withdrawals
//! (retrying on lock conflicts), mallory's withdrawals are aborted by
//! trigger T1, and nine subscribed clients must each observe every
//! trigger firing exactly once — asserted by comparing the set of
//! delivered sequence numbers against the engine's `triggers_fired`
//! counter window.

use std::thread;
use std::time::Duration;

use ode_core::Value;
use ode_db::{Database, SharedDatabase};
use ode_server::spec::stockroom_spec;
use ode_server::{Client, ClientError, Server};

const WORKERS: usize = 8;
const TXNS_PER_WORKER: usize = 20;
const MALLORY_ATTEMPTS: usize = 5;

/// Quantities cycle 50, 90, 130; only 130 (> 100) fires T6.
fn quantity(i: usize) -> i64 {
    [50, 90, 130][i % 3]
}

#[test]
fn concurrent_tcp_clients_with_exactly_once_firings() {
    let db = SharedDatabase::new(Database::new());
    let mut server = Server::builder(db.clone())
        .tcp("127.0.0.1:0")
        .start()
        .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");

    // Admin: define the class and create one well-stocked room.
    let mut admin = Client::connect_tcp(addr).expect("connect");
    let mut spec = stockroom_spec();
    spec.fields[0].default = Value::record([
        ("bolt", Value::Int(1_000_000)),
        ("gear", Value::Int(1_000_000)),
    ]);
    admin.define_class(spec).expect("define");
    let room = admin
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("create room");

    // Baseline firing counter, then attach the subscribers.
    let fired_before = admin.stats().expect("stats").triggers_fired;
    let mut subscribers: Vec<Client> = (0..WORKERS + 1)
        .map(|_| {
            let mut c = Client::connect_tcp(addr).expect("connect subscriber");
            c.subscribe().expect("subscribe");
            c
        })
        .collect();

    // Eight workers withdraw concurrently, each txn retried on
    // lock_conflict by Client::txn.
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            thread::spawn(move || {
                let mut c = Client::connect_tcp(addr).expect("connect worker");
                for i in 0..TXNS_PER_WORKER {
                    let q = quantity(i);
                    c.txn(&format!("worker-{w}"), |c| {
                        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(q)])
                    })
                    .expect("withdraw txn commits after retries");
                }
            })
        })
        .collect();

    // Mallory's withdrawals trip T1 (`before withdraw &&
    // !authorized(user())` ==> abort): the engine finalizes the
    // transaction, the server reports a non-retryable `aborted` error.
    let mallory = thread::spawn(move || {
        let mut c = Client::connect_tcp(addr).expect("connect mallory");
        for _ in 0..MALLORY_ATTEMPTS {
            loop {
                c.begin("mallory").expect("begin");
                match c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(10)]) {
                    Err(ClientError::Server(e)) if e.retryable => {
                        // A worker holds the room lock; try again.
                        c.abort().expect("abort before retry");
                        thread::sleep(Duration::from_micros(200));
                    }
                    Err(ClientError::Server(e)) => {
                        assert_eq!(e.code, "aborted", "T1 aborts mallory's transaction");
                        c.abort().expect("abort is idempotent");
                        break;
                    }
                    other => panic!("mallory's withdraw should abort, got {other:?}"),
                }
            }
        }
    });

    for h in workers {
        h.join().expect("worker thread");
    }
    mallory.join().expect("mallory thread");

    // Every committed withdrawal really happened, exactly once: no
    // lost updates despite the retries.
    let withdrawn_per_worker: i64 = (0..TXNS_PER_WORKER).map(quantity).sum();
    let expected_bolt = 1_000_000 - WORKERS as i64 * withdrawn_per_worker;
    let bolt = admin
        .peek_field(room, "items")
        .expect("peek")
        .member("bolt")
        .and_then(Value::as_int)
        .expect("bolt is an int");
    assert_eq!(bolt, expected_bolt);

    // The firing window: T6 once per q=130 withdrawal plus T1 once per
    // mallory attempt.
    let t6_firings = WORKERS * (0..TXNS_PER_WORKER).filter(|&i| quantity(i) > 100).count();
    let fired_after = admin.stats().expect("stats").triggers_fired;
    assert_eq!(
        fired_after - fired_before,
        (t6_firings + MALLORY_ATTEMPTS) as u64,
        "every T1/T6 firing counted once"
    );

    // Exactly-once delivery: each subscriber sees precisely the seq
    // window (N0, N1], no duplicates, no extras.
    let expected: std::collections::BTreeSet<u64> = (fired_before + 1..=fired_after).collect();
    for (si, sub) in subscribers.iter_mut().enumerate() {
        let mut seen = std::collections::BTreeSet::new();
        while seen.len() < expected.len() {
            let f = sub
                .next_firing(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("subscriber {si}: missing firings: {e}"));
            assert!(
                seen.insert(f.seq),
                "subscriber {si}: duplicate firing seq {}",
                f.seq
            );
            assert!(
                f.trigger == "T1" || f.trigger == "T6",
                "unexpected trigger {}",
                f.trigger
            );
        }
        assert_eq!(seen, expected, "subscriber {si}: wrong firing set");
        // And nothing extra trickles in afterwards.
        assert!(
            sub.poll_firing(Duration::from_millis(150))
                .expect("poll")
                .is_none(),
            "subscriber {si}: extra firing after the window"
        );
    }

    // T6's emissions reached the shared output log.
    let output = admin.take_output().expect("take output");
    let large = output
        .iter()
        .filter(|l| l.contains("large withdrawal"))
        .count();
    assert_eq!(large, t6_firings);

    server.shutdown();
}
