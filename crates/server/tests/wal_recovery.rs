//! End-to-end durability: a WAL-backed server restarted from its log
//! directory serves exactly the state committed before it went down —
//! wire-defined classes, object fields, trigger automata — and a WAL
//! write failure degrades the live server to read-only instead of
//! panicking or silently serving un-durable writes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ode_core::Value;
use ode_db::{Database, Fault, FaultyIo, FsyncPolicy, SharedDatabase, SharedIo, WalConfig};
use ode_server::protocol::Command;
use ode_server::spec::stockroom_spec;
use ode_server::{Client, ClientError, Server};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ode-wal-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny segments so even a short session rotates; fsync every op so a
/// fault-injection plan hits deterministic places.
fn small_cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 512,
        fsync: FsyncPolicy::Always,
        archive: false,
    }
}

fn start_server(dir: &Path) -> Server {
    Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(small_cfg())
        .start()
        .expect("server starts")
}

fn bolt(c: &mut Client, room: u64) -> i64 {
    c.peek_field(room, "items")
        .expect("peek")
        .member("bolt")
        .and_then(Value::as_int)
        .expect("bolt is an int")
}

#[test]
fn committed_state_survives_a_restart() {
    let dir = tmp_dir("restart");

    // Generation one: define the class over the wire, mutate, go down.
    let (room, bolt_before) = {
        let mut server = start_server(&dir);
        let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("connect");
        c.define_class(stockroom_spec()).expect("define");
        let room = c.txn("admin", |c| c.new_object("room", &[])).expect("room");
        for _ in 0..3 {
            c.txn("alice", |c| {
                c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(120)])
            })
            .expect("withdraw");
        }
        // An uncommitted transaction must NOT survive.
        c.begin("alice").expect("begin");
        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(99)])
            .expect("call in doomed txn");
        let bolt_before = 500 - 3 * 120;
        server.shutdown();
        (room, bolt_before)
    };

    // Generation two: a fresh engine recovered purely from the
    // directory.
    let mut server = start_server(&dir);
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("reconnect");
    assert_eq!(
        bolt(&mut c, room),
        bolt_before,
        "committed withdrawals only"
    );
    let stats = c.stats().expect("stats");
    assert!(!stats.read_only);
    assert!(stats.wal_lsn.expect("wal-backed") > 0);
    assert_eq!(stats.subscriber_drops, 0);

    // The schema came back through schema.wal: methods, masks, and
    // trigger automata all work without re-defining anything.
    c.txn("alice", |c| {
        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(1)])
    })
    .expect("class recovered");
    c.begin("mallory").expect("begin");
    match c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(1)]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "aborted", "T1 still guards"),
        other => panic!("mallory must still be aborted by T1, got {other:?}"),
    }
    c.abort().expect("abort");
    assert_eq!(bolt(&mut c, room), bolt_before - 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_and_recovery_stays_exact() {
    let dir = tmp_dir("checkpoint");
    let room;
    {
        let mut server = start_server(&dir);
        let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("connect");
        c.define_class(stockroom_spec()).expect("define");
        room = c.txn("admin", |c| c.new_object("room", &[])).expect("room");
        for _ in 0..4 {
            c.txn("alice", |c| {
                c.call(room, "withdraw", &[Value::from("gear"), Value::Int(5)])
            })
            .expect("withdraw");
        }

        // Restore is a state jump the log would never see: refused.
        let snap = c.snapshot().expect("snapshot");
        match c.restore(snap) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, "restore_unsupported"),
            other => panic!("Restore must be refused on a WAL-backed server, got {other:?}"),
        }

        match c.request(Command::Checkpoint).expect("checkpoint") {
            ode_server::protocol::Reply::Checkpointed {
                lsn,
                swept_segments,
                ..
            } => {
                assert!(lsn > 0);
                // Generation zero had live segments; the sweep must
                // report reclaiming them.
                assert!(swept_segments > 0, "checkpoint swept no segments");
            }
            other => panic!("expected Checkpointed, got {other:?}"),
        }
        // The checkpoint superseded generation zero's segments.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().any(|n| n.starts_with("checkpoint-")),
            "no checkpoint file in {names:?}"
        );
        assert!(
            !names.iter().any(|n| n.starts_with("segment-0000000000-")),
            "generation 0 segments survived the checkpoint: {names:?}"
        );

        // And the log keeps growing after the checkpoint.
        c.txn("bob", |c| {
            c.call(room, "withdraw", &[Value::from("gear"), Value::Int(7)])
        })
        .expect("post-checkpoint withdraw");
        server.shutdown();
    }

    let mut server = start_server(&dir);
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("reconnect");
    let gear = c
        .peek_field(room, "items")
        .expect("peek")
        .member("gear")
        .and_then(Value::as_int)
        .expect("gear is an int");
    assert_eq!(gear, 100 - 4 * 5 - 7, "checkpoint + tail replay is exact");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_failure_latches_read_only_and_the_prefix_recovers() {
    let dir = tmp_dir("degrade");

    // Let the schema append, object creation, and two withdrawals
    // through, then fail every mutating file op from #40 on.
    let plan: HashMap<u64, Fault> = (40..400).map(|k| (k, Fault::FailOp)).collect();
    let io = SharedIo::new(FaultyIo::new(plan));
    let mut server = Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .wal_dir(&dir)
        .wal_config(small_cfg())
        .wal_io(io)
        .start()
        .expect("server starts");
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("connect");
    c.define_class(stockroom_spec()).expect("define");
    let room = c.txn("admin", |c| c.new_object("room", &[])).expect("room");

    // Withdraw until the injected failure bites. `txn` retries the
    // retryable `wal` error once, then hits the read-only latch.
    let mut committed = 0i64;
    let failure = loop {
        let r = c
            .begin("alice")
            .and_then(|_| c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(10)]))
            .and_then(|_| c.commit());
        match r {
            Ok(()) => committed += 1,
            Err(ClientError::Server(e)) => break e,
            Err(other) => panic!("unexpected client failure: {other}"),
        }
        assert!(committed < 50, "fault plan never fired");
    };
    assert_eq!(failure.code, "wal", "first failure surfaces as a wal error");
    assert!(failure.retryable, "the client may retry (and learn worse)");

    // The server is alive but read-only: reads fine, writes refused.
    c.abort().expect("abort still allowed");
    let stats = c.stats().expect("stats still allowed");
    assert!(stats.read_only, "read-only latched");
    assert!(bolt(&mut c, room) <= 500, "peek still allowed");
    match c.begin("alice") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "read_only");
            assert!(!e.retryable);
        }
        other => panic!("Begin must be refused in read-only mode, got {other:?}"),
    }
    server.shutdown();

    // Recovery with a healthy io serves the durable prefix: every
    // withdrawal acknowledged before the failure, nothing after it.
    let mut server = start_server(&dir);
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("reconnect");
    let recovered = bolt(&mut c, room);
    assert_eq!(
        recovered,
        500 - committed * 10,
        "exactly the acknowledged transactions survive"
    );
    assert!(
        !c.stats().expect("stats").read_only,
        "fresh start is writable"
    );
    c.txn("alice", |c| {
        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(10)])
    })
    .expect("writes work again after recovery");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
