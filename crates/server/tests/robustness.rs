//! Robustness: malformed and overlong input answers with structured
//! errors on a still-usable connection, disconnects and shutdowns
//! release transaction locks, idle transactions expire, and the
//! session-level transaction protocol rejects misuse.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ode_core::Value;
use ode_db::{Database, SharedDatabase};
use ode_server::spec::stockroom_spec;
use ode_server::{Client, ClientError, ReplyResult, Server, ServerConfig, ServerMsg};

fn start_server(config: ServerConfig) -> (Server, std::net::SocketAddr) {
    let db = SharedDatabase::new(Database::new());
    let server = Server::builder(db)
        .tcp("127.0.0.1:0")
        .config(config)
        .start()
        .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");
    (server, addr)
}

fn define_stockroom(addr: std::net::SocketAddr) -> (Client, u64) {
    let mut admin = Client::connect_tcp(addr).expect("connect");
    admin.define_class(stockroom_spec()).expect("define");
    let room = admin
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("create room");
    (admin, room)
}

/// Read one NDJSON server message from a raw socket.
fn read_msg(reader: &mut BufReader<TcpStream>) -> ServerMsg {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read server line");
    serde_json::from_str(&line).expect("valid server message")
}

#[test]
fn malformed_request_gets_structured_error_and_connection_survives() {
    let (mut server, addr) = start_server(ServerConfig::default());
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writer.write_all(b"this is not json\n").unwrap();
    match read_msg(&mut reader) {
        ServerMsg::Reply {
            id: 0,
            result: ReplyResult::Err(e),
        } => assert_eq!(e.code, "parse"),
        other => panic!("expected a parse notice, got {other:?}"),
    }

    // The same connection still answers real requests.
    writer.write_all(b"{\"id\":1,\"cmd\":\"Ping\"}\n").unwrap();
    match read_msg(&mut reader) {
        ServerMsg::Reply {
            id: 1,
            result: ReplyResult::Ok(_),
        } => {}
        other => panic!("expected a pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn overlong_line_is_discarded_with_notice() {
    let (mut server, addr) = start_server(ServerConfig {
        max_line_bytes: 64,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let mut big = vec![b'x'; 500];
    big.push(b'\n');
    writer.write_all(&big).unwrap();
    match read_msg(&mut reader) {
        ServerMsg::Reply {
            id: 0,
            result: ReplyResult::Err(e),
        } => assert_eq!(e.code, "overlong"),
        other => panic!("expected an overlong notice, got {other:?}"),
    }

    writer.write_all(b"{\"id\":7,\"cmd\":\"Ping\"}\n").unwrap();
    match read_msg(&mut reader) {
        ServerMsg::Reply {
            id: 7,
            result: ReplyResult::Ok(_),
        } => {}
        other => panic!("expected a pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn disconnect_mid_txn_releases_object_locks() {
    let (mut server, addr) = start_server(ServerConfig::default());
    let (mut admin, room) = define_stockroom(addr);

    // Client A opens a transaction and touches the room (write lock),
    // then vanishes without committing.
    {
        let mut a = Client::connect_tcp(addr).expect("connect A");
        a.begin("a").expect("begin");
        a.call(room, "withdraw", &[Value::from("bolt"), Value::Int(50)])
            .expect("withdraw");
        // Drop: the socket closes, the server aborts A's transaction.
    }

    // Client B can lock the same object once the server has noticed;
    // Client::txn retries through the race.
    let mut b = Client::connect_tcp(addr).expect("connect B");
    b.txn("b", |c| {
        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(70)])
    })
    .expect("B's withdraw commits after A's lock is released");

    // A's uncommitted withdrawal rolled back; only B's counts.
    let bolt = admin
        .peek_field(room, "items")
        .expect("peek")
        .member("bolt")
        .and_then(Value::as_int)
        .expect("bolt");
    assert_eq!(bolt, 500 - 70);
    server.shutdown();
}

#[test]
fn idle_transaction_expires_with_notice() {
    let (mut server, addr) = start_server(ServerConfig {
        txn_idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let (_admin, room) = define_stockroom(addr);

    let mut c = Client::connect_tcp(addr).expect("connect");
    c.begin("sleepy").expect("begin");
    std::thread::sleep(Duration::from_millis(400));

    // The server aborted the idle transaction: the next transactional
    // command answers `no_txn`, and the timeout notice is buffered.
    match c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(10)]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "no_txn"),
        other => panic!("expected no_txn after idle expiry, got {other:?}"),
    }
    assert!(
        c.drain_notices().iter().any(|n| n.code == "txn_timeout"),
        "the session was told its transaction timed out"
    );
    server.shutdown();
}

#[test]
fn session_txn_protocol_misuse_is_rejected() {
    let (mut server, addr) = start_server(ServerConfig::default());
    let mut c = Client::connect_tcp(addr).expect("connect");

    // Commit with nothing open.
    match c.commit() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "no_txn"),
        other => panic!("expected no_txn, got {other:?}"),
    }
    // Abort is idempotent even with nothing open.
    c.abort().expect("abort with no txn is Ok");
    // Begin twice.
    c.begin("u").expect("begin");
    match c.request(ode_server::Command::Begin {
        user: Value::from("u"),
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "txn_open"),
        other => panic!("expected txn_open, got {other:?}"),
    }
    c.abort().expect("abort");
    server.shutdown();
}

#[test]
fn graceful_shutdown_aborts_open_txns_and_closes_sessions() {
    let (mut server, addr) = start_server(ServerConfig::default());
    let (_admin, room) = define_stockroom(addr);
    let db = server.db().clone();

    let mut c = Client::connect_tcp(addr).expect("connect");
    c.begin("c").expect("begin");
    c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(200)])
        .expect("withdraw");

    // Shut down with the transaction still open: the session aborts it
    // and every thread joins (shutdown returns).
    server.shutdown();

    // The client sees the connection close.
    match c.ping() {
        Err(_) => {}
        Ok(()) => panic!("server should have closed the session"),
    }

    // The lock is gone and the withdrawal rolled back: the database is
    // immediately usable in-process.
    let bolt = db
        .run_txn("after", |t| {
            t.db.call(
                t.txn,
                ode_db::ObjectId(room),
                "deposit",
                &[Value::from("bolt"), Value::Int(1)],
            )
        })
        .map(|_| db.with(|d| d.peek_field(ode_db::ObjectId(room), "items")))
        .expect("db usable after shutdown")
        .and_then(|v| v.member("bolt").and_then(Value::as_int))
        .expect("bolt");
    assert_eq!(bolt, 500 + 1, "uncommitted withdrawal rolled back");
}

#[test]
fn unix_socket_sessions_work() {
    let dir = std::env::temp_dir().join(format!("ode-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ode.sock");

    let db = SharedDatabase::new(Database::new());
    let mut server = Server::builder(db).unix(&path).start().expect("bind unix");
    let mut c = Client::connect_unix(server.unix_path().unwrap()).expect("connect unix");
    c.ping().expect("pong over unix");
    c.define_class(stockroom_spec()).expect("define over unix");
    let room = c.txn("u", |c| c.new_object("room", &[])).expect("create");
    let v = c.peek_field(room, "items").expect("peek");
    assert!(v.member("bolt").is_some());

    server.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
