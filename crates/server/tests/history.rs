//! End-to-end event history over the wire: the `--history` gate,
//! `Query` filters / row cap / streamed rows, histstore stats,
//! retroactive `Activate { replay_history: true }` with subscriber
//! notifications, and restart stability of queries and firing seqs.

use std::path::{Path, PathBuf};
use std::time::Duration;

use ode_core::Value;
use ode_db::{Database, SharedDatabase};
use ode_server::spec::{ActionSpec, ClassSpec, FieldSpec, MethodOp, MethodSpec, TriggerSpec};
use ode_server::{Client, ClientError, QuerySpec, Server};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ode-history-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A meter with two triggers, neither auto-activated: history is
/// recorded trigger-free, then retro activation replays it.
fn meter_spec() -> ClassSpec {
    ClassSpec {
        name: "meter".into(),
        fields: vec![FieldSpec {
            name: "n".into(),
            default: Value::Int(0),
        }],
        methods: vec![MethodSpec {
            name: "bump".into(),
            update: true,
            params: vec!["amt".into()],
            body: vec![MethodOp::Set {
                field: "n".into(),
                expr: "n + amt".into(),
            }],
        }],
        masks: vec![],
        triggers: vec![
            TriggerSpec {
                name: "big".into(),
                perpetual: true,
                event: "after bump(amt) && amt > 10".into(),
                action: ActionSpec::Emit("big bump".into()),
                capture: false,
                full_history: false,
            },
            TriggerSpec {
                name: "once".into(),
                perpetual: false,
                event: "after bump".into(),
                action: ActionSpec::Emit("first bump".into()),
                capture: false,
                full_history: false,
            },
        ],
        activate_on_create: vec![],
    }
}

fn start(dir: &Path, shards: usize, history: bool) -> Server {
    let mut b = Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .shards(shards)
        .wal_dir(dir);
    if history {
        b = b.history(true);
    }
    b.start().expect("server starts")
}

/// Commit one `bump(amt)` per element, alternating objects.
fn run_bumps(c: &mut Client, objs: &[u64], amts: &[i64]) {
    for (i, amt) in amts.iter().enumerate() {
        let obj = objs[i % objs.len()];
        c.txn("alice", |c| c.call(obj, "bump", &[Value::Int(*amt)]))
            .expect("bump");
    }
}

#[test]
fn history_requires_wal_and_is_off_by_default() {
    // Builder refuses history without a WAL directory.
    let err = match Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .history(true)
        .start()
    {
        Err(e) => e,
        Ok(_) => panic!("history without wal must fail"),
    };
    assert!(err.to_string().contains("WAL"), "{err}");

    // Without the flag, Query and replay_history are typed errors and
    // stats report the store off.
    let dir = tmp_dir("off");
    let mut server = start(&dir, 1, false);
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("connect");
    c.define_class(meter_spec()).expect("define");
    let obj = c.txn("admin", |c| c.new_object("meter", &[])).expect("obj");
    run_bumps(&mut c, &[obj], &[5, 20]);

    match c.query(QuerySpec::default()) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "no_history"),
        other => panic!("expected no_history, got {other:?}"),
    }
    c.begin("admin").expect("begin");
    match c.activate_replay(obj, "big", &[]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "no_history"),
        other => panic!("expected no_history, got {other:?}"),
    }
    c.abort().expect("abort");
    // Plain activation still works — the gate only closes replay.
    c.txn("admin", |c| c.activate(obj, "big", &[]))
        .expect("live activate");
    let stats = c.stats().expect("stats");
    assert!(!stats.hist_enabled);
    assert_eq!(stats.hist_rows, 0);
    assert_eq!(stats.hist_segments, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_filters_row_cap_and_stats() {
    let dir = tmp_dir("query");
    let mut server = start(&dir, 2, true);
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("connect");
    c.define_class(meter_spec()).expect("define");
    let a = c.txn("admin", |c| c.new_object("meter", &[])).expect("a");
    let b = c.txn("admin", |c| c.new_object("meter", &[])).expect("b");
    let amts: Vec<i64> = vec![5, 25, 7, 40, 11, 3, 60, 2];
    run_bumps(&mut c, &[a, b], &amts);

    // All `after bump` postings, across both shards.
    let bumps = c
        .query(QuerySpec {
            kind: Some("bump".into()),
            qualifier: Some("after".into()),
            ..QuerySpec::default()
        })
        .expect("query");
    assert_eq!(bumps.rows.len(), amts.len());
    assert!(!bumps.truncated);
    for r in &bumps.rows {
        assert_eq!(r.class, "meter");
        assert_eq!(r.event, "after bump");
        assert!(r.object == a || r.object == b);
    }
    // Rows from one shard arrive seq-ordered.
    for shard in [0u64, 1u64] {
        let seqs: Vec<u64> = bumps
            .rows
            .iter()
            .filter(|r| r.shard == shard)
            .map(|r| r.seq)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    // Argument predicate: amt > 10.
    let big = c
        .query(QuerySpec {
            kind: Some("bump".into()),
            qualifier: Some("after".into()),
            args: vec![(0, "gt".into(), Value::Int(10))],
            ..QuerySpec::default()
        })
        .expect("query");
    let want: Vec<i64> = amts.iter().copied().filter(|q| *q > 10).collect();
    assert_eq!(big.rows.len(), want.len());
    for r in &big.rows {
        assert!(r.args[0].as_int().unwrap() > 10);
    }

    // Object filter pins one object; limit forces truncation.
    let only_a = c
        .query(QuerySpec {
            object: Some(a),
            kind: Some("bump".into()),
            qualifier: Some("after".into()),
            ..QuerySpec::default()
        })
        .expect("query");
    assert!(only_a.rows.iter().all(|r| r.object == a));
    assert_eq!(only_a.rows.len(), amts.len().div_ceil(2));
    let capped = c
        .query(QuerySpec {
            kind: Some("bump".into()),
            qualifier: Some("after".into()),
            limit: Some(3),
            ..QuerySpec::default()
        })
        .expect("query");
    assert_eq!(capped.rows.len(), 3);
    assert!(capped.truncated);

    // Unknown names match nothing (not an error); bad spellings are.
    let ghost = c
        .query(QuerySpec {
            class: Some("no_such_class".into()),
            ..QuerySpec::default()
        })
        .expect("query");
    assert!(ghost.rows.is_empty() && !ghost.truncated);
    match c.query(QuerySpec {
        qualifier: Some("sideways".into()),
        ..QuerySpec::default()
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "bad_query"),
        other => panic!("expected bad_query, got {other:?}"),
    }
    match c.query(QuerySpec {
        args: vec![(0, "spaceship".into(), Value::Int(1))],
        ..QuerySpec::default()
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "bad_query"),
        other => panic!("expected bad_query, got {other:?}"),
    }

    let stats = c.stats().expect("stats");
    assert!(stats.hist_enabled);
    assert!(stats.hist_rows > 0);
    assert!(stats.hist_queries >= 6);
    assert!(stats.hist_rows_returned >= bumps.rows.len() as u64);
    assert_eq!(stats.hist_indexed_lsns.len(), 2);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retro_activation_streams_past_firings_and_survives_restart() {
    let dir = tmp_dir("retro");
    let a;
    let big_seqs: Vec<u64>;
    {
        let mut server = start(&dir, 1, true);
        let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("connect");
        c.define_class(meter_spec()).expect("define");
        a = c.txn("admin", |c| c.new_object("meter", &[])).expect("a");
        run_bumps(&mut c, &[a], &[5, 25, 7, 40, 11]);

        // The occurrences a since-inception "big" trigger would fire
        // on, straight from the store.
        let expect = c
            .query(QuerySpec {
                object: Some(a),
                kind: Some("bump".into()),
                qualifier: Some("after".into()),
                args: vec![(0, "gt".into(), Value::Int(10))],
                ..QuerySpec::default()
            })
            .expect("query");
        big_seqs = expect.rows.iter().map(|r| r.seq).collect();
        assert_eq!(big_seqs.len(), 3);

        // A subscriber watches the retro firings arrive.
        let mut sub = Client::connect_tcp(server.tcp_addr().unwrap()).expect("sub");
        sub.subscribe().expect("subscribe");

        let (fired, scanned, active) = c
            .txn("admin", |c| c.activate_replay(a, "big", &[]))
            .expect("retro activate");
        assert_eq!(fired, 3, "fires on exactly the amt>10 occurrences");
        assert!(scanned as usize >= big_seqs.len());
        assert!(active, "perpetual trigger keeps monitoring");

        let mut got = Vec::new();
        while got.len() < fired as usize {
            let f = sub
                .next_firing(Duration::from_secs(5))
                .expect("retro firing streamed");
            assert!(f.retro);
            assert_eq!(f.trigger, "big");
            assert_eq!(f.object, a);
            assert_eq!(f.event, "after bump");
            got.push(f.seq);
        }
        assert_eq!(got, big_seqs, "retro firing seqs are the posting seqs");

        // The installed instance now monitors live: the next big bump
        // fires normally (retro=false), small ones don't.
        run_bumps(&mut c, &[a], &[2, 30]);
        let f = sub
            .next_firing(Duration::from_secs(5))
            .expect("live firing");
        assert!(!f.retro);
        assert_eq!(f.trigger, "big");
        assert_eq!(f.args, vec![Value::Int(30)]);

        // Non-perpetual trigger: replay fires once, then inactive.
        let (fired, _scanned, active) = c
            .txn("admin", |c| c.activate_replay(a, "once", &[]))
            .expect("retro once");
        assert_eq!(fired, 1);
        assert!(!active);

        let stats = c.stats().expect("stats");
        assert!(stats.hist_retro_replays >= 2);
        server.shutdown();
    }

    // Restart: the store (rebuilt or reopened) serves identical rows,
    // so replayed firing seqs are stable across the restart.
    let mut server = start(&dir, 1, true);
    let mut c = Client::connect_tcp(server.tcp_addr().unwrap()).expect("reconnect");
    let expect = c
        .query(QuerySpec {
            object: Some(a),
            kind: Some("bump".into()),
            qualifier: Some("after".into()),
            args: vec![(0, "gt".into(), Value::Int(10))],
            max_seq: big_seqs.last().copied(),
            ..QuerySpec::default()
        })
        .expect("query after restart");
    let seqs: Vec<u64> = expect.rows.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, big_seqs, "posting seqs stable across restart");

    // The retro-activated instances survived through the WAL: "once"
    // stays spent (second activation is refused as already active? No
    // — deactivated instances may re-activate), and a fresh replay of
    // "big" on a *new* object starts clean.
    let b = c.txn("admin", |c| c.new_object("meter", &[])).expect("b");
    run_bumps(&mut c, &[b], &[50]);
    let (fired, _scanned, active) = c
        .txn("admin", |c| c.activate_replay(b, "big", &[]))
        .expect("retro on b");
    assert_eq!(fired, 1);
    assert!(active);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
