//! Split-brain fencing end to end: a deterministic partition forks the
//! history, a forced promotion bumps the epoch, the deposed primary
//! latches read-only with typed refusals, and a rejoining forked node
//! is fenced and healed until every surviving WAL is record-for-record
//! identical. Plus the cascading-tree shape the epochs make safe: a
//! depth-2 replica tree that mirrors state and firing seqs exactly,
//! and a leaf that re-parents to a fallback upstream when its mid-tier
//! dies.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ode_core::Value;
use ode_db::{Database, FsyncPolicy, SegmentReader, SharedDatabase, SharedIo, StdIo, WalConfig};
use ode_server::protocol::{Command, Firing};
use ode_server::spec::stockroom_spec;
use ode_server::{Client, ClientError, ReplSource, Server, StreamFault};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ode-split-brain-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny segments, fsync every op: every commit ships immediately and
/// the replica's cursor is exact at any fault boundary.
fn cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 512,
        fsync: FsyncPolicy::Always,
        archive: false,
    }
}

fn start_primary(dir: &Path) -> Server {
    Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(cfg())
        .start()
        .expect("primary starts")
}

fn tcp_source(upstream: &Server) -> ReplSource {
    ReplSource::Tcp(upstream.tcp_addr().expect("upstream tcp").to_string())
}

/// A replica with an explicit upstream list (the first entry is the
/// preferred parent, the rest are re-parenting fallbacks).
fn start_replica_chain(
    dir: &Path,
    sources: Vec<ReplSource>,
    plan: HashMap<u64, StreamFault>,
) -> Server {
    let mut b = Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(cfg())
        .repl_fault_plan(plan);
    for s in sources {
        b = b.replicate_from(s);
    }
    b.start().expect("replica starts")
}

fn start_replica(dir: &Path, upstream: &Server, plan: HashMap<u64, StreamFault>) -> Server {
    start_replica_chain(dir, vec![tcp_source(upstream)], plan)
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Poll a replica until its applied cursor reaches `target` records.
fn wait_applied(c: &mut Client, target: u64) {
    wait_until(
        || c.stats().expect("stats").last_applied_lsn == Some(target),
        &format!("replica to apply {target} records"),
    );
}

fn collect_firings(c: &mut Client, n: usize) -> Vec<Firing> {
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while got.len() < n {
        assert!(
            Instant::now() < deadline,
            "expected {n} firings, got {} so far: {got:?}",
            got.len()
        );
        if let Some(f) = c.poll_firing(Duration::from_millis(100)).expect("poll") {
            got.push(f);
        }
    }
    got
}

/// The observable identity of a firing sequence.
fn keys(firings: &[Firing]) -> Vec<(u64, u64, u64, String, String)> {
    firings
        .iter()
        .map(|f| (f.seq, f.txn, f.object, f.trigger.clone(), f.event.clone()))
        .collect()
}

/// The committed record stream of a (shut-down) server's WAL
/// directory, as `(lsn, line)` pairs.
fn wal_records(dir: &Path) -> Vec<(u64, String)> {
    let scan = SegmentReader::scan(dir, &SharedIo::new(StdIo::new())).expect("scan");
    scan.records_from(0)
        .map(|(lsn, p)| (lsn, String::from_utf8(p.to_vec()).expect("utf8")))
        .collect()
}

fn bolt(c: &mut Client, room: u64) -> i64 {
    c.peek_field(room, "items")
        .expect("peek")
        .member("bolt")
        .and_then(Value::as_int)
        .expect("bolt is an int")
}

fn withdraw(c: &mut Client, room: u64, user: &str, qty: i64) {
    c.txn(user, |c| {
        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(qty)])
    })
    .expect("withdraw");
}

/// The full split-brain story on one pair of nodes: partition, forced
/// promotion at a known fork point, typed fencing of the deposed
/// primary, and a fence-driven heal on rejoin that ends with both WALs
/// record-for-record identical — with the bumped epoch surviving a
/// restart of the promoted node.
#[test]
fn forced_promotion_fences_the_forked_primary() {
    let adir = tmp_dir("fence-a");
    let bdir = tmp_dir("fence-b");

    let mut a = start_primary(&adir);
    let mut ac = Client::connect_tcp(a.tcp_addr().unwrap()).expect("connect");
    ac.define_class(stockroom_spec()).expect("define");
    let room = ac
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");
    withdraw(&mut ac, room, "alice", 120);
    let fork_lsn = ac.stats().expect("stats").wal_lsn.expect("wal");

    // The partition fires on receipt of record `fork_lsn`, so the
    // replica applies exactly the shared prefix and nothing after — a
    // deterministic fork point, however far ahead the primary runs.
    let plan: HashMap<u64, StreamFault> =
        [(fork_lsn, StreamFault::Partition)].into_iter().collect();
    let mut b = start_replica(&bdir, &a, plan);
    let mut bc = Client::connect_tcp(b.tcp_addr().unwrap()).expect("connect");
    wait_until(
        || {
            let s = bc.stats().expect("stats");
            s.last_applied_lsn == Some(fork_lsn) && s.repl_connected
        },
        "replica to reach the fork point",
    );
    assert!(
        bc.stats().expect("stats").repl_heartbeat_age_ms.is_some(),
        "a live stream reports its upstream's heartbeat age"
    );

    // The old primary keeps taking writes into the partition: the fork.
    for _ in 0..3 {
        withdraw(&mut ac, room, "alice", 7);
    }
    wait_until(
        || !bc.stats().expect("stats").repl_connected,
        "the partition to cut the stream",
    );
    assert_eq!(
        bc.stats().expect("stats").last_applied_lsn,
        Some(fork_lsn),
        "the partition pinned the replica at the fork point"
    );

    // An un-forced Promote refuses: the replica knows it lags the last
    // head its upstream reported.
    match bc.promote() {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "promote_lagging");
            assert!(e.retryable, "retryable: the lag may drain");
        }
        other => panic!("a lagging promote must refuse, got {other:?}"),
    }

    // Forced promotion: accept losing the un-applied tail, bump the
    // epoch durably, take writes.
    let (lsn, epoch) = bc.promote_force().expect("forced promote");
    assert_eq!(lsn, fork_lsn);
    assert_eq!(epoch, 1);
    let stats = bc.stats().expect("stats");
    assert_eq!(stats.epoch, 1);
    assert!(!stats.read_only && !stats.deposed);
    assert_eq!(
        stats.repl_heartbeat_age_ms, None,
        "a promoted node has no upstream to age"
    );

    // The new lineage diverges from the fork with different writes.
    withdraw(&mut bc, room, "bob", 11);
    withdraw(&mut bc, room, "bob", 13);
    assert_ne!(bolt(&mut ac, room), bolt(&mut bc, room), "histories forked");

    // Fencing: announcing the new epoch latches the old primary
    // read-only with a typed refusal naming the cure.
    assert_eq!(ac.demote(1).expect("demote"), 1);
    match ac.begin("alice") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "deposed"),
        other => panic!("a deposed primary must refuse writes, got {other:?}"),
    }
    let stats = ac.stats().expect("stats");
    assert!(stats.deposed);
    assert_eq!(stats.epoch, 1, "it knows the epoch that deposed it");

    // A deposed node also refuses to serve replication: a handshake
    // claiming the new epoch is stale (this log never held bump 1),
    // and one claiming the old epoch hits the deposed latch.
    match ac.request(Command::Replicate {
        from_lsns: vec![0],
        epoch: 1,
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "stale_epoch"),
        other => panic!("expected stale_epoch, got {other:?}"),
    }
    match ac.request(Command::Replicate {
        from_lsns: vec![0],
        epoch: 0,
    }) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "deposed"),
        other => panic!("expected deposed, got {other:?}"),
    }
    assert!(ac.stats().expect("stats").stale_epoch_rejections >= 1);

    // Rejoin: restart the old primary's directory as a replica of the
    // new one. Its cursor runs past the fence (it kept writing after
    // the fork), so the upstream answers with a fencing snapshot and
    // the shard discards its forked history and re-replicates from
    // zero — no acked-post-deposal write survives anywhere.
    a.shutdown();
    let mut a = start_replica(&adir, &b, HashMap::new());
    let mut ac = Client::connect_tcp(a.tcp_addr().unwrap()).expect("reconnect");
    let target = bc.stats().expect("stats").wal_lsn.expect("wal");
    wait_applied(&mut ac, target);
    assert_eq!(
        bolt(&mut ac, room),
        500 - 120 - 11 - 13,
        "the healed node holds the new lineage, fork debris demoted"
    );
    let stats = ac.stats().expect("stats");
    assert_eq!(stats.epoch, 1, "the bump arrived in-band");
    assert!(!stats.deposed, "catching up to the bump clears the latch");
    assert!(stats.replica && stats.read_only);

    // Record-for-record identity across the surviving fork.
    a.shutdown();
    b.shutdown();
    let (a_log, b_log) = (wal_records(&adir), wal_records(&bdir));
    assert!(!a_log.is_empty());
    assert_eq!(a_log, b_log, "healed WAL mirrors the new lineage exactly");

    // The bumped epoch is durable: the promoted node restarts as a
    // plain primary, still at epoch 1, still writable.
    let mut b = start_primary(&bdir);
    let mut bc = Client::connect_tcp(b.tcp_addr().unwrap()).expect("reconnect");
    let stats = bc.stats().expect("stats");
    assert_eq!(stats.epoch, 1);
    assert!(!stats.deposed && !stats.read_only);
    withdraw(&mut bc, room, "alice", 1);
    b.shutdown();

    let _ = std::fs::remove_dir_all(&adir);
    let _ = std::fs::remove_dir_all(&bdir);
}

/// A depth-2 tree — primary → mid-tier → two leaves — mirrors state
/// and trigger firing sequences exactly at every level, and every
/// node's WAL is record-for-record identical. The primary holds one
/// stream no matter how wide the tree below the mid-tier grows.
#[test]
fn depth_two_tree_mirrors_state_and_firing_seqs() {
    let pdir = tmp_dir("tree-p");
    let mdir = tmp_dir("tree-m");
    let l1dir = tmp_dir("tree-l1");
    let l2dir = tmp_dir("tree-l2");

    let mut p = start_primary(&pdir);
    let mut pc = Client::connect_tcp(p.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    let room = pc
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");

    // The mid-tier replicates from the primary; the leaves replicate
    // from the mid-tier — its re-logged WAL re-serves the stream.
    let mut m = start_replica(&mdir, &p, HashMap::new());
    let mut l1 = start_replica(&l1dir, &m, HashMap::new());
    let mut l2 = start_replica(&l2dir, &m, HashMap::new());
    let mut mc = Client::connect_tcp(m.tcp_addr().unwrap()).expect("connect");
    let mut c1 = Client::connect_tcp(l1.tcp_addr().unwrap()).expect("connect");
    let mut c2 = Client::connect_tcp(l2.tcp_addr().unwrap()).expect("connect");
    let head = pc.stats().expect("stats").wal_lsn.expect("wal");
    for c in [&mut mc, &mut c1, &mut c2] {
        wait_applied(c, head);
    }

    let mut subs: Vec<Client> = [&p, &m, &l1, &l2]
        .iter()
        .map(|s| {
            let mut c = Client::connect_tcp(s.tcp_addr().unwrap()).expect("connect");
            c.subscribe().expect("subscribe");
            c
        })
        .collect();

    // Three T6-firing withdrawals ripple down both levels of the tree.
    for _ in 0..3 {
        withdraw(&mut pc, room, "alice", 120);
    }
    let head = pc.stats().expect("stats").wal_lsn.expect("wal");
    for c in [&mut mc, &mut c1, &mut c2] {
        wait_applied(c, head);
    }
    let fired: Vec<_> = subs.iter_mut().map(|c| collect_firings(c, 3)).collect();
    for f in &fired[1..] {
        assert_eq!(
            keys(&fired[0]),
            keys(f),
            "identical (seq, txn, object, trigger, event) at every tree level"
        );
    }
    let want = bolt(&mut pc, room);
    for c in [&mut mc, &mut c1, &mut c2] {
        assert_eq!(bolt(c, room), want);
    }

    // The mid-tier is both a follower (it ages its upstream's
    // heartbeats) and a server (the leaves are connected through it).
    let ms = mc.stats().expect("stats");
    assert!(ms.repl_connected && ms.repl_heartbeat_age_ms.is_some());
    for c in [&mut c1, &mut c2] {
        let s = c.stats().expect("stats");
        assert!(s.repl_connected && s.repl_heartbeat_age_ms.is_some());
        assert_eq!(s.epoch, 0);
    }

    l1.shutdown();
    l2.shutdown();
    m.shutdown();
    p.shutdown();
    let p_log = wal_records(&pdir);
    assert!(!p_log.is_empty());
    for dir in [&mdir, &l1dir, &l2dir] {
        assert_eq!(p_log, wal_records(dir), "every tree level mirrors the log");
    }
    for dir in [pdir, mdir, l1dir, l2dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Mid-tree failure: a leaf configured with a fallback upstream list
/// re-parents from the dead mid-tier to the primary and keeps
/// applying, without repeating or losing a record.
#[test]
fn leaf_reparents_to_fallback_when_mid_tier_dies() {
    let pdir = tmp_dir("reparent-p");
    let mdir = tmp_dir("reparent-m");
    let ldir = tmp_dir("reparent-l");

    let mut p = start_primary(&pdir);
    let mut pc = Client::connect_tcp(p.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    let room = pc
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");
    withdraw(&mut pc, room, "alice", 120);

    let mut m = start_replica(&mdir, &p, HashMap::new());
    let mut l = start_replica_chain(&ldir, vec![tcp_source(&m), tcp_source(&p)], HashMap::new());
    let mut lc = Client::connect_tcp(l.tcp_addr().unwrap()).expect("connect");
    wait_applied(&mut lc, pc.stats().expect("stats").wal_lsn.expect("wal"));

    // Kill the mid-tier and keep writing: the leaf's stream breaks, it
    // rotates to the fallback, and catches up directly from the
    // primary.
    m.shutdown();
    for _ in 0..2 {
        withdraw(&mut pc, room, "bob", 9);
    }
    let head = pc.stats().expect("stats").wal_lsn.expect("wal");
    wait_applied(&mut lc, head);
    let stats = lc.stats().expect("stats");
    assert!(stats.repl_connected, "re-parented to the fallback");
    assert_eq!(bolt(&mut lc, room), bolt(&mut pc, room));

    l.shutdown();
    p.shutdown();
    assert_eq!(
        wal_records(&pdir),
        wal_records(&ldir),
        "no repeats, no holes across the re-parent"
    );
    for dir in [pdir, mdir, ldir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
