//! Reactor-scale end-to-end tests: a five-digit subscriber population
//! on one event-loop thread, the `--max-conns` admission guard, and
//! ring/lock reclamation when connections die.
//!
//! The subscriber fleet is raw nonblocking sockets polled from a
//! single test thread — thread-per-subscriber would need thousands of
//! stacks, which is exactly the sickness the reactor cures on the
//! server side.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ode_core::Value;
use ode_db::{Database, SharedDatabase};
use ode_server::reactor::raise_nofile_limit;
use ode_server::spec::stockroom_spec;
use ode_server::{Client, ReplyResult, Server, ServerConfig, ServerMsg};

/// One raw subscriber: a nonblocking socket plus a partial-line carry.
struct RawSub {
    stream: TcpStream,
    buf: Vec<u8>,
    subscribed: bool,
    seqs: Vec<u64>,
}

impl RawSub {
    fn connect(addr: std::net::SocketAddr) -> RawSub {
        let mut stream = TcpStream::connect(addr).expect("connect subscriber");
        stream
            .write_all(b"{\"id\":1,\"cmd\":\"Subscribe\"}\n")
            .expect("send subscribe");
        stream.set_nonblocking(true).expect("nonblocking");
        RawSub {
            stream,
            buf: Vec::new(),
            subscribed: false,
            seqs: Vec::new(),
        }
    }

    /// Drain whatever the kernel has for us; parse complete lines.
    fn pump(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("server closed a live subscriber"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("subscriber read: {e}"),
            }
        }
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).collect();
            let text = std::str::from_utf8(&line[..nl]).expect("utf8 line");
            match serde_json::from_str::<ServerMsg>(text).expect("server message") {
                ServerMsg::Reply {
                    id: 1,
                    result: ReplyResult::Ok(_),
                } => self.subscribed = true,
                ServerMsg::Firing(f) => self.seqs.push(f.seq),
                other => panic!("unexpected message to subscriber: {other:?}"),
            }
        }
    }
}

fn start_server(config: ServerConfig) -> (Server, std::net::SocketAddr) {
    let db = SharedDatabase::new(Database::new());
    let server = Server::builder(db)
        .tcp("127.0.0.1:0")
        .config(config)
        .start()
        .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");
    (server, addr)
}

/// The tentpole numbers: up to ten thousand live subscriptions on one
/// poll loop, each observing every firing exactly once.
#[test]
fn ten_thousand_subscribers_exactly_once() {
    let limit = raise_nofile_limit();
    // Each subscriber costs two descriptors in this process (client
    // end + server end); keep a margin for the poller, WAL, and admin.
    let fleet = 10_000.min((limit.saturating_sub(256) / 2) as usize);
    assert!(fleet >= 1_000, "nofile limit too low for a fan-out test");
    const FIRINGS: usize = 6;

    let (mut server, addr) = start_server(ServerConfig::default());
    let mut admin = Client::connect_tcp(addr).expect("connect admin");
    let mut spec = stockroom_spec();
    spec.fields[0].default = Value::record([
        ("bolt", Value::Int(1_000_000)),
        ("gear", Value::Int(1_000_000)),
    ]);
    admin.define_class(spec).expect("define");
    let room = admin
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("create room");

    let mut subs: Vec<RawSub> = (0..fleet).map(|_| RawSub::connect(addr)).collect();

    // Wait until the server has processed every Subscribe — only then
    // is the firing window guaranteed to cover the whole fleet.
    let deadline = Instant::now() + Duration::from_secs(120);
    while subs.iter().any(|s| !s.subscribed) {
        assert!(Instant::now() < deadline, "subscribe handshakes timed out");
        for s in subs.iter_mut().filter(|s| !s.subscribed) {
            s.pump();
        }
    }
    let stats = admin.stats().expect("stats");
    assert_eq!(
        stats.conns_open,
        fleet as u64 + 1,
        "fleet + admin connected"
    );
    let fired_before = stats.triggers_fired;

    // Each q=130 withdrawal trips T6 exactly once.
    for _ in 0..FIRINGS {
        admin
            .txn("admin", |c| {
                c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(130)])
            })
            .expect("withdraw commits");
    }
    let fired_after = admin.stats().expect("stats").triggers_fired;
    assert_eq!(fired_after - fired_before, FIRINGS as u64);
    let expected: BTreeSet<u64> = (fired_before + 1..=fired_after).collect();

    let deadline = Instant::now() + Duration::from_secs(120);
    while subs.iter().any(|s| s.seqs.len() < FIRINGS) {
        assert!(Instant::now() < deadline, "fan-out delivery timed out");
        for s in subs.iter_mut().filter(|s| s.seqs.len() < FIRINGS) {
            s.pump();
        }
    }
    for (i, s) in subs.iter().enumerate() {
        let seen: BTreeSet<u64> = s.seqs.iter().copied().collect();
        assert_eq!(seen.len(), s.seqs.len(), "subscriber {i}: duplicate seq");
        assert_eq!(seen, expected, "subscriber {i}: wrong firing set");
    }
    assert_eq!(
        admin.stats().expect("stats").subscriber_drops,
        0,
        "no ring overflows at this scale"
    );

    // Ring reclamation: hang up the whole fleet and the server's
    // accounting must come back to just the admin session.
    drop(subs);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let open = admin.stats().expect("stats").conns_open;
        if open == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "teardown leaked connections: {open} still open"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

/// `--max-conns N`: connection N+1 is answered with a typed, retryable
/// `server_full` notice and closed; a slot freed by a disconnect is
/// immediately reusable.
#[test]
fn max_conns_rejects_with_server_full() {
    let (mut server, addr) = start_server(ServerConfig {
        max_conns: Some(2),
        ..ServerConfig::default()
    });
    let mut admin = Client::connect_tcp(addr).expect("connect admin");
    admin.ping().expect("admin ping");
    let mut second = Client::connect_tcp(addr).expect("connect second");
    second.ping().expect("second ping");

    // Third connection: accepted at the socket level, then refused
    // with a structured notice and an EOF.
    let over = TcpStream::connect(addr).expect("connect over-limit");
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read rejection");
    match serde_json::from_str::<ServerMsg>(&line).expect("rejection parses") {
        ServerMsg::Reply {
            id: 0,
            result: ReplyResult::Err(e),
        } => {
            assert_eq!(e.code, "server_full");
            assert!(e.retryable, "server_full is retryable");
        }
        other => panic!("expected server_full, got {other:?}"),
    }
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("eof"),
        0,
        "closed after notice"
    );

    let stats = admin.stats().expect("stats");
    assert_eq!(stats.conns_open, 2);
    assert_eq!(stats.conns_rejected, 1);

    // Free a slot; the guard must admit the next client.
    drop(second);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if admin.stats().expect("stats").conns_open == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut third = Client::connect_tcp(addr).expect("connect after free");
    third.ping().expect("reused slot answers");
    server.shutdown();
}

/// Peer disconnect mid-transaction: the reactor's teardown aborts the
/// open transaction, so the object lock is released without waiting
/// for the idle-timeout sweep.
#[test]
fn disconnect_releases_locks_and_conn_slot() {
    let (mut server, addr) = start_server(ServerConfig::default());
    let mut admin = Client::connect_tcp(addr).expect("connect admin");
    let mut spec = stockroom_spec();
    spec.fields[0].default = Value::record([("bolt", Value::Int(10_000))]);
    admin.define_class(spec).expect("define");
    let room = admin
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("create room");

    // Holder opens a transaction and touches the room, then vanishes.
    let mut holder = Client::connect_tcp(addr).expect("connect holder");
    holder.begin("holder").expect("begin");
    holder
        .call(room, "withdraw", &[Value::from("bolt"), Value::Int(5)])
        .expect("withdraw under open txn");
    drop(holder);

    // The lock comes free well before the 30s idle timeout;
    // Client::txn retries lock_conflict until it does.
    let deadline = Instant::now() + Duration::from_secs(20);
    admin
        .txn("admin", |c| {
            c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(1)])
        })
        .expect("lock released by teardown");
    assert!(
        Instant::now() < deadline,
        "teardown took pathologically long"
    );

    loop {
        if admin.stats().expect("stats").conns_open == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "holder's slot never reclaimed");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}
