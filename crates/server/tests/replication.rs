//! End-to-end replication: a read replica tailing a primary's WAL
//! serves the same committed state, fires the same triggers in the
//! same order with the same sequence numbers — through stream faults,
//! a restart mid-stream, and a checkpoint-based snapshot bootstrap —
//! and a promoted replica takes writes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ode_core::Value;
use ode_db::{
    shard_dir, shard_of, Database, FsyncPolicy, ObjectId, SegmentReader, SharedDatabase, SharedIo,
    StdIo, WalConfig,
};
use ode_server::protocol::{Command, Firing, Reply};
use ode_server::spec::stockroom_spec;
use ode_server::{Client, ClientError, ReplSource, Server, StreamFault};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ode-replication-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny segments so even short sessions rotate; fsync every op so the
/// replica's local WAL head is exact at any restart boundary.
fn cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 512,
        fsync: FsyncPolicy::Always,
        archive: false,
    }
}

fn start_primary(dir: &Path) -> Server {
    Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(cfg())
        .start()
        .expect("primary starts")
}

fn start_replica(dir: &Path, primary: &Server, plan: HashMap<u64, StreamFault>) -> Server {
    Server::builder(SharedDatabase::new(Database::new()))
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(cfg())
        .replicate_from(ReplSource::Tcp(
            primary.tcp_addr().expect("primary tcp").to_string(),
        ))
        .repl_fault_plan(plan)
        .start()
        .expect("replica starts")
}

/// Poll the replica's stats until it has applied everything the
/// primary has logged (`target` = the primary's `wal_lsn`).
fn wait_applied(c: &mut Client, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats().expect("replica stats");
        if stats.last_applied_lsn == Some(target) {
            assert_eq!(stats.replica_lag_lsn, Some(0), "caught up means zero lag");
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica never reached LSN {target}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn collect_firings(c: &mut Client, n: usize) -> Vec<Firing> {
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < n {
        assert!(
            Instant::now() < deadline,
            "expected {n} firings, got {} so far: {got:?}",
            got.len()
        );
        if let Some(f) = c.poll_firing(Duration::from_millis(100)).expect("poll") {
            got.push(f);
        }
    }
    got
}

/// The observable identity of a firing sequence.
fn keys(firings: &[Firing]) -> Vec<(u64, u64, u64, String, String)> {
    firings
        .iter()
        .map(|f| (f.seq, f.txn, f.object, f.trigger.clone(), f.event.clone()))
        .collect()
}

/// The committed record stream of a (shut-down) server's WAL
/// directory, as `(lsn, line)` pairs.
fn wal_records(dir: &Path) -> Vec<(u64, String)> {
    let scan = SegmentReader::scan(dir, &SharedIo::new(StdIo::new())).expect("scan");
    scan.records_from(0)
        .map(|(lsn, p)| (lsn, String::from_utf8(p.to_vec()).expect("utf8")))
        .collect()
}

fn bolt(c: &mut Client, room: u64) -> i64 {
    c.peek_field(room, "items")
        .expect("peek")
        .member("bolt")
        .and_then(Value::as_int)
        .expect("bolt is an int")
}

fn withdraw(c: &mut Client, room: u64, user: &str, qty: i64) {
    c.txn(user, |c| {
        c.call(room, "withdraw", &[Value::from("bolt"), Value::Int(qty)])
    })
    .expect("withdraw");
}

fn start_primary_sharded(dir: &Path, shards: usize) -> Server {
    Server::builder(SharedDatabase::new(Database::new()))
        .shards(shards)
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(cfg())
        .start()
        .expect("sharded primary starts")
}

fn start_replica_sharded(dir: &Path, primary: &Server, shards: usize) -> Server {
    Server::builder(SharedDatabase::new(Database::new()))
        .shards(shards)
        .tcp("127.0.0.1:0")
        .wal_dir(dir)
        .wal_config(cfg())
        .replicate_from(ReplSource::Tcp(
            primary.tcp_addr().expect("primary tcp").to_string(),
        ))
        .start()
        .expect("sharded replica starts")
}

/// The observable identity of a sharded firing set. Per-shard streams
/// guarantee order *within* a shard, not across shards, so compare
/// sorted by (shard, seq).
fn shard_keys(firings: &[Firing]) -> Vec<(u64, u64, u64, u64, String, String)> {
    let mut v: Vec<_> = firings
        .iter()
        .map(|f| {
            (
                f.shard,
                f.seq,
                f.txn,
                f.object,
                f.trigger.clone(),
                f.event.clone(),
            )
        })
        .collect();
    v.sort();
    v
}

/// A cross-shard withdrawal: one transaction touching both rooms, so
/// commit runs the ordered 2PC and stamps both shards' WALs.
fn cross_withdraw(c: &mut Client, rooms: (u64, u64), user: &str, qty: i64) {
    c.txn(user, |c| {
        c.call(rooms.0, "withdraw", &[Value::from("bolt"), Value::Int(qty)])?;
        c.call(rooms.1, "withdraw", &[Value::from("bolt"), Value::Int(qty)])
    })
    .expect("cross-shard withdraw");
}

#[test]
fn sharded_replica_mirrors_per_shard_streams_exactly() {
    let pdir = tmp_dir("sharded-p");
    let rdir = tmp_dir("sharded-r");

    let mut primary = start_primary_sharded(&pdir, 2);
    let mut pc = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    // Round-robin placement: the first room lands on shard 0, the
    // second on shard 1.
    let room_a = pc.txn("admin", |c| c.new_object("room", &[])).expect("a");
    let room_b = pc.txn("admin", |c| c.new_object("room", &[])).expect("b");
    let rooms = (room_a, room_b);
    assert_ne!(
        shard_of(ObjectId(room_a), 2),
        shard_of(ObjectId(room_b), 2),
        "rooms live on distinct shards"
    );
    let mut psub = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    psub.subscribe().expect("subscribe");

    let mut replica = start_replica_sharded(&rdir, &primary, 2);
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    let mut rsub = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    rsub.subscribe().expect("subscribe");

    // Two single-shard T6 withdrawals plus one cross-shard transaction
    // that fires T6 on both shards: four firings, two per shard.
    withdraw(&mut pc, room_a, "alice", 101);
    withdraw(&mut pc, room_b, "alice", 102);
    cross_withdraw(&mut pc, rooms, "bob", 103);
    let p1 = collect_firings(&mut psub, 4);
    let r1 = collect_firings(&mut rsub, 4);
    assert_eq!(shard_keys(&p1), shard_keys(&r1));
    for s in [0u64, 1] {
        assert!(p1.iter().any(|f| f.shard == s), "shard {s} fired: {p1:?}");
    }
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    assert_eq!(bolt(&mut rc, room_a), 500 - 101 - 103);
    assert_eq!(bolt(&mut rc, room_b), 500 - 102 - 103);

    // Down the replica mid-stream, commit a cross-shard transaction it
    // never saw, and restart it: per-shard cursors resume, no repeats,
    // no holes, and the per-shard firing counters ride through.
    replica.shutdown();
    cross_withdraw(&mut pc, rooms, "alice", 104);
    let p2 = collect_firings(&mut psub, 2);

    let mut replica = start_replica_sharded(&rdir, &primary, 2);
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("reconnect");
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    let mut rsub = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    rsub.subscribe().expect("subscribe");

    cross_withdraw(&mut pc, rooms, "bob", 105);
    let p3 = collect_firings(&mut psub, 2);
    let r3 = collect_firings(&mut rsub, 2);
    assert_eq!(shard_keys(&p3), shard_keys(&r3));
    for f in &r3 {
        let prev = p2.iter().find(|p| p.shard == f.shard).expect("same shard");
        assert_eq!(
            f.seq,
            prev.seq + 1,
            "shard {}'s firing counter rode through the restart",
            f.shard
        );
    }

    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    let (ps, rs) = (pc.stats().expect("stats"), rc.stats().expect("stats"));
    assert_eq!(ps.triggers_fired, rs.triggers_fired);
    assert_eq!(ps.txns_committed, rs.txns_committed);
    assert_eq!(ps.shards, 2);
    assert_eq!(ps.shard_commits.len(), 2);
    assert!(
        ps.shard_commits.iter().all(|&c| c > 0),
        "both shards committed: {:?}",
        ps.shard_commits
    );
    assert_eq!(bolt(&mut rc, room_a), bolt(&mut pc, room_a));
    assert_eq!(bolt(&mut rc, room_b), bolt(&mut pc, room_b));

    // Record-for-record equivalence, now per shard stream.
    replica.shutdown();
    primary.shutdown();
    for s in 0..2 {
        let p_log = wal_records(&shard_dir(&pdir, s, 2));
        let r_log = wal_records(&shard_dir(&rdir, s, 2));
        assert!(!p_log.is_empty(), "shard {s} logged");
        assert_eq!(p_log, r_log, "shard {s}: replica WAL mirrors the primary");
    }
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn replica_fires_identically_even_across_a_restart_mid_stream() {
    let pdir = tmp_dir("determinism-p");
    let rdir = tmp_dir("determinism-r");

    let mut primary = start_primary(&pdir);
    let mut pc = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    let room = pc
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");
    let mut psub = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    psub.subscribe().expect("subscribe");

    // The replica bootstraps from the full log (no checkpoint yet), so
    // its firing counter replays from zero exactly like the primary's.
    let mut replica = start_replica(&rdir, &primary, HashMap::new());
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    let mut rsub = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    rsub.subscribe().expect("subscribe");

    // Three large withdrawals, each firing T6 on the primary — and,
    // through the log stream, on the replica.
    for _ in 0..3 {
        withdraw(&mut pc, room, "alice", 120);
    }
    let p1 = collect_firings(&mut psub, 3);
    let r1 = collect_firings(&mut rsub, 3);
    assert_eq!(
        keys(&p1),
        keys(&r1),
        "identical (seq, txn, object, trigger, event) on both sides"
    );
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    assert_eq!(bolt(&mut rc, room), bolt(&mut pc, room));

    // Take the replica down mid-stream, advance the primary, and
    // restart the replica from its own directory: it resumes from its
    // local WAL head, catches up, and the firing sequence continues
    // exactly where the primary's did — no repeats, no holes.
    replica.shutdown();
    for _ in 0..2 {
        withdraw(&mut pc, room, "bob", 150);
    }
    let p2 = collect_firings(&mut psub, 2);

    let mut replica = start_replica(&rdir, &primary, HashMap::new());
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("reconnect");
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    let mut rsub = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    rsub.subscribe().expect("subscribe");
    withdraw(&mut pc, room, "alice", 130);
    let p3 = collect_firings(&mut psub, 1);
    let r3 = collect_firings(&mut rsub, 1);
    assert_eq!(keys(&p3), keys(&r3));
    assert_eq!(
        r3[0].seq,
        p2[1].seq + 1,
        "the replica's counter rode through the restart"
    );

    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    let (ps, rs) = (pc.stats().expect("stats"), rc.stats().expect("stats"));
    assert_eq!(
        ps.triggers_fired, rs.triggers_fired,
        "every firing happened exactly once on each side"
    );
    assert_eq!(ps.txns_committed, rs.txns_committed);
    assert_eq!(bolt(&mut rc, room), bolt(&mut pc, room));

    // The strongest determinism check: the replica re-logged what it
    // applied, and the two logs are record-for-record identical.
    replica.shutdown();
    primary.shutdown();
    let (p_log, r_log) = (wal_records(&pdir), wal_records(&rdir));
    assert!(!p_log.is_empty());
    assert_eq!(p_log, r_log, "replica WAL mirrors the primary exactly");
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn stream_faults_collapse_to_exactly_once_apply() {
    let pdir = tmp_dir("faults-p");
    let rdir = tmp_dir("faults-r");

    let mut primary = start_primary(&pdir);
    let mut pc = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    let room = pc
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");

    // Deterministic damage, keyed by received-record count across
    // reconnects: a dropped connection mid-catch-up, a duplicated
    // frame, a CRC flip, and a torn (truncated) frame. Every one must
    // collapse to "reconnect and resume from the cursor".
    let plan: HashMap<u64, StreamFault> = [
        (1, StreamFault::Disconnect),
        (3, StreamFault::Duplicate),
        (6, StreamFault::CorruptFrame),
        (9, StreamFault::TornFrame),
    ]
    .into_iter()
    .collect();
    let mut replica = start_replica(&rdir, &primary, plan);
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");

    for _ in 0..4 {
        withdraw(&mut pc, room, "alice", 120);
    }
    let head = pc.stats().expect("stats").wal_lsn.expect("wal");
    wait_applied(&mut rc, head);
    let rstats = rc.stats().expect("stats");
    assert!(rstats.repl_connected, "recovered from every injected fault");
    assert_eq!(bolt(&mut rc, room), bolt(&mut pc, room));
    assert_eq!(
        rstats.triggers_fired,
        pc.stats().expect("stats").triggers_fired
    );

    replica.shutdown();
    primary.shutdown();
    assert_eq!(
        wal_records(&pdir),
        wal_records(&rdir),
        "duplicates were skipped and gaps re-fetched: the logs agree"
    );
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn replica_refuses_writes_until_promoted() {
    let pdir = tmp_dir("promote-p");
    let rdir = tmp_dir("promote-r");

    let mut primary = start_primary(&pdir);
    let mut pc = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    let room = pc
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");
    withdraw(&mut pc, room, "alice", 120);

    let mut replica = start_replica(&rdir, &primary, HashMap::new());
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));

    // Reads are served, writes are typed refusals that name the cure.
    assert_eq!(bolt(&mut rc, room), bolt(&mut pc, room));
    for refused in [
        rc.begin("alice").err(),
        rc.define_class(stockroom_spec()).err(),
    ] {
        match refused {
            Some(ClientError::Server(e)) => {
                assert_eq!(e.code, "read_only_replica");
                assert!(!e.retryable);
            }
            other => panic!("replica must refuse writes, got {other:?}"),
        }
    }
    let stats = rc.stats().expect("stats");
    assert!(stats.replica && stats.read_only && stats.repl_connected);

    // Promote is only meaningful on a replica.
    match pc.promote() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "not_replica"),
        other => panic!("primary must refuse Promote, got {other:?}"),
    }

    // Promotion drains the stream, detaches, and flips writable —
    // idempotently.
    let lsn = rc.promote().expect("promote");
    assert_eq!(lsn, pc.stats().expect("stats").wal_lsn.expect("wal"));
    assert_eq!(rc.promote().expect("promote again"), lsn);
    let stats = rc.stats().expect("stats");
    assert!(stats.replica, "history: it started as a replica");
    assert!(!stats.read_only && !stats.repl_connected);
    assert_eq!(stats.replica_lag_lsn, None, "lag is meaningless now");

    // The ex-replica takes writes, and its triggers still guard.
    withdraw(&mut rc, room, "alice", 10);
    assert_eq!(bolt(&mut rc, room), 500 - 120 - 10);
    rc.begin("mallory").expect("begin");
    match rc.call(room, "withdraw", &[Value::from("bolt"), Value::Int(1)]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "aborted", "T1 still guards"),
        other => panic!("mallory must be aborted, got {other:?}"),
    }
    rc.abort().expect("abort");

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn late_replica_bootstraps_from_a_checkpoint_snapshot() {
    let pdir = tmp_dir("snapshot-p");
    let rdir = tmp_dir("snapshot-r");

    // The primary checkpoints and keeps writing, so generation zero's
    // records are gone: a fresh replica cannot replay from LSN 0 and
    // must take the snapshot path.
    let mut primary = start_primary(&pdir);
    let mut pc = Client::connect_tcp(primary.tcp_addr().unwrap()).expect("connect");
    pc.define_class(stockroom_spec()).expect("define");
    let room = pc
        .txn("admin", |c| c.new_object("room", &[]))
        .expect("room");
    for _ in 0..3 {
        withdraw(&mut pc, room, "alice", 120);
    }
    match pc.request(Command::Checkpoint).expect("checkpoint") {
        Reply::Checkpointed { lsn, .. } => assert!(lsn > 0),
        other => panic!("expected Checkpointed, got {other:?}"),
    }
    withdraw(&mut pc, room, "bob", 150);

    let mut replica = start_replica(&rdir, &primary, HashMap::new());
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    assert_eq!(bolt(&mut rc, room), 500 - 3 * 120 - 150);

    // The stream stays live past the bootstrap: new commits flow, and
    // the replica's own subscribers hear their firings.
    let mut rsub = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("connect");
    rsub.subscribe().expect("subscribe");
    withdraw(&mut pc, room, "alice", 110);
    let fired = collect_firings(&mut rsub, 1);
    assert_eq!(fired[0].trigger, "T6");
    assert_eq!(fired[0].object, room);
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    assert_eq!(bolt(&mut rc, room), bolt(&mut pc, room));

    // A restart of a snapshot-bootstrapped replica recovers from the
    // checkpoint it persisted locally and rejoins the stream.
    replica.shutdown();
    let mut replica = start_replica(&rdir, &primary, HashMap::new());
    let mut rc = Client::connect_tcp(replica.tcp_addr().unwrap()).expect("reconnect");
    withdraw(&mut pc, room, "alice", 5);
    wait_applied(&mut rc, pc.stats().expect("stats").wal_lsn.expect("wal"));
    assert_eq!(bolt(&mut rc, room), bolt(&mut pc, room));

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}
