//! The combined per-class monitor with masked events, and the compiler's
//! resource caps.

use std::sync::Arc;

use ode_core::{
    parse_event, BasicEvent, CombinedDetector, CombinedEvent, CompiledEvent, Detector, EmptyEnv,
    EventError, EventExpr, LogicalEvent, MaskExpr, Value,
};

/// Combined monitoring with masked, parameterized events: the shared
/// alphabet must carry the union of all triggers' mask minterms, and
/// classification must agree with the individual detectors.
#[test]
fn combined_monitor_with_masks_agrees() {
    let exprs: Vec<EventExpr> = [
        "after w(i, q) && q > 100",
        "choose 2 (after w(i, q) && q > 10)",
        "after w(i, q) && q > 10; after w(i, q) && q > 100",
    ]
    .iter()
    .map(|s| parse_event(s).unwrap())
    .collect();

    let combined = Arc::new(CombinedEvent::compile(&exprs).unwrap());
    let mut cd = CombinedDetector::new(Arc::clone(&combined));
    cd.activate(&EmptyEnv).unwrap();
    let mut individual: Vec<Detector> = exprs
        .iter()
        .map(|e| {
            let mut d = Detector::new(Arc::new(CompiledEvent::compile(e).unwrap()));
            d.activate(&EmptyEnv).unwrap();
            d
        })
        .collect();

    let quantities = [5i64, 50, 500, 20, 200, 7, 150, 15];
    for q in quantities {
        let ev = BasicEvent::after_method("w");
        let args = [Value::Null, Value::Int(q)];
        let mask = cd.post(&ev, &args, &EmptyEnv).unwrap();
        for (i, d) in individual.iter_mut().enumerate() {
            let fired = d.post(&ev, &args, &EmptyEnv).unwrap();
            assert_eq!(fired, mask & (1 << i) != 0, "event {i} at q={q}");
        }
    }
}

/// More than `MAX_GROUP_MASKS` distinct masks on one basic event is
/// rejected with the minterm-blowup explanation.
#[test]
fn per_event_mask_cap_enforced() {
    let mut expr: Option<EventExpr> = None;
    for j in 0..(ode_core::alphabet::MAX_GROUP_MASKS + 1) {
        let le = EventExpr::Logical(
            LogicalEvent::bare(BasicEvent::after_method("w"))
                .with_params(["i", "q"])
                .with_mask(MaskExpr::gt("q", j as i64)),
        );
        expr = Some(match expr {
            Some(e) => e.or(le),
            None => le,
        });
    }
    let err = CompiledEvent::compile(&expr.unwrap()).unwrap_err();
    assert!(matches!(err, EventError::TooManyMasks { .. }), "{err}");
    assert!(err.to_string().contains("minterm"), "{err}");
}

/// The alphabet-size cap catches combinations of many masked events and
/// composite masks.
#[test]
fn alphabet_cap_enforced() {
    // 10 masks on each of 2 basic events (2 * 2^10 minterms) times 2^8
    // composite-mask bits blows past MAX_ALPHABET.
    let mut expr: Option<EventExpr> = None;
    for m in ["w", "v"] {
        for j in 0..ode_core::alphabet::MAX_GROUP_MASKS {
            let le = EventExpr::Logical(
                LogicalEvent::bare(BasicEvent::after_method(m))
                    .with_params(["i", "q"])
                    .with_mask(MaskExpr::gt("q", j as i64)),
            );
            expr = Some(match expr {
                Some(e) => e.or(le),
                None => le,
            });
        }
    }
    let mut e = expr.unwrap();
    for j in 0..ode_core::alphabet::MAX_GLOBAL_MASKS {
        e = e.masked(MaskExpr::lt("level", j as i64));
    }
    let err = CompiledEvent::compile(&e).unwrap_err();
    assert!(matches!(err, EventError::AlphabetTooLarge { .. }), "{err}");
}

/// A single-event CombinedEvent behaves exactly like the plain detector.
#[test]
fn combined_of_one_is_plain_detection() {
    let e = parse_event("fa(after a, after b, after c)").unwrap();
    let combined = Arc::new(CombinedEvent::compile(std::slice::from_ref(&e)).unwrap());
    let plain = Arc::new(CompiledEvent::compile(&e).unwrap());
    assert_eq!(combined.num_states(), plain.stats().dfa_states);

    let mut cd = CombinedDetector::new(combined);
    let mut pd = Detector::new(plain);
    cd.activate(&EmptyEnv).unwrap();
    pd.activate(&EmptyEnv).unwrap();
    for m in ["a", "b", "c", "a", "c", "b", "b"] {
        let ev = BasicEvent::after_method(m);
        let cm = cd.post(&ev, &[], &EmptyEnv).unwrap();
        let pf = pd.post(&ev, &[], &EmptyEnv).unwrap();
        assert_eq!(cm == 1, pf, "at {m}");
    }
}
