//! Property tests for the simulation calendar: `TimeSpec::matches` and
//! `TimeSpec::next_match_after` must agree.

use ode_core::event::{calendar, TimeSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = TimeSpec> {
    // Random subsets of the sub-day fields (day-and-coarser follow the
    // same code path; sub-day keeps the exhaustive scans cheap).
    (
        prop::option::of(0u32..24),
        prop::option::of(0u32..60),
        prop::option::of(0u32..60),
    )
        .prop_map(|(hr, min, sec)| TimeSpec {
            hr,
            min,
            sec,
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `next_match_after(t)` returns a strictly later instant that
    /// `matches`.
    #[test]
    fn next_match_is_a_future_match(
        spec in spec_strategy(),
        t in 0u64..(3 * calendar::DAY),
    ) {
        prop_assume!(spec.hr.is_some() || spec.min.is_some() || spec.sec.is_some());
        let next = spec.next_match_after(t);
        let next = next.expect("sub-day patterns recur forever");
        prop_assert!(next > t);
        prop_assert!(spec.matches(next), "{spec:?} should match {next}");
    }

    /// Nothing between `t` and the reported next match matches —
    /// verified exhaustively at second granularity.
    #[test]
    fn next_match_is_the_earliest(
        hr in prop::option::of(0u32..24),
        min in prop::option::of(0u32..60),
        sec in 0u32..60,
        t in 0u64..(2 * calendar::DAY),
    ) {
        let spec = TimeSpec { hr, min, sec: Some(sec), ..Default::default() };
        let next = spec.next_match_after(t).expect("recurs");
        // scan the open interval at second resolution (the finest this
        // spec constrains)
        let start = t / calendar::SEC + 1;
        let end = next / calendar::SEC;
        for s in start..end {
            let instant = s * calendar::SEC;
            prop_assert!(
                !spec.matches(instant),
                "{spec:?} matches {instant} before reported next {next}"
            );
        }
    }

    /// Matching instants are exactly the fixed points of
    /// `next_match_after(t - 1)`.
    #[test]
    fn matches_iff_reachable(
        spec in spec_strategy(),
        t in 1u64..(2 * calendar::DAY),
    ) {
        prop_assume!(spec.hr.is_some() || spec.min.is_some() || spec.sec.is_some());
        if spec.matches(t) {
            prop_assert_eq!(spec.next_match_after(t - 1), Some(t));
        }
    }

    /// Durations are additive in their fields.
    #[test]
    fn duration_is_linear(h in 0u32..100, m in 0u32..100, s in 0u32..100) {
        let spec = TimeSpec {
            hr: Some(h),
            min: Some(m),
            sec: Some(s),
            ..Default::default()
        };
        prop_assert_eq!(
            spec.as_duration_ms(),
            h as u64 * calendar::HR + m as u64 * calendar::MIN + s as u64 * calendar::SEC
        );
    }
}

#[test]
fn empty_spec_never_matches_or_schedules() {
    let empty = TimeSpec::default();
    assert!(!empty.matches(0));
    assert!(!empty.matches(calendar::DAY));
    assert_eq!(empty.next_match_after(0), None);
}

#[test]
fn year_anchored_specs_are_one_shot() {
    let spec = TimeSpec {
        yr: Some(1),
        mo: Some(2),
        day: Some(3),
        hr: Some(4),
        ..Default::default()
    };
    let t = spec.next_match_after(0).unwrap();
    assert!(spec.matches(t));
    assert_eq!(
        t,
        calendar::YR + calendar::MO + 2 * calendar::DAY + 4 * calendar::HR
    );
    assert_eq!(spec.next_match_after(t), None);
}
