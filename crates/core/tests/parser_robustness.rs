//! Parser robustness: malformed input must produce errors, never panics;
//! valid input parses deterministically.

use ode_core::{parse_event, parse_mask};
use proptest::prelude::*;

#[test]
fn garbage_inputs_error_cleanly() {
    for src in [
        "",
        "   ",
        "(",
        ")",
        "|",
        "&&",
        "after",
        "before",
        "relative",
        "relative(",
        "relative()",
        "choose (after a)",
        "choose x (after a)",
        "fa(after a)",
        "fa(after a, after b)",
        "fa(after a, after b, after c, after d)",
        "after a |",
        "after a &",
        "after a ;",
        "!",
        "after a after b",
        "time(HR=9)",
        "at time(HR=)",
        "at time(HR)",
        "at time(HR=-1)",
        "after withdraw(",
        "after withdraw(,)",
        "after withdraw(1)",
        "after a && ",
        "after a && >",
        "\"unterminated",
        "after a & & after b",
        "every (after a)",
        "relative + (after a) extra",
        "state()",
        "state(1 +)",
        "sequence 0 (after a)",
        "प after", // non-ASCII start
    ] {
        let r = parse_event(src);
        assert!(r.is_err(), "`{src}` should fail to parse, got {r:?}");
    }
}

#[test]
fn masks_error_cleanly() {
    for src in ["", "(", "1 +", "a .", "f(", "a ++ b", "== 3"] {
        assert!(parse_mask(src).is_err(), "`{src}` should fail");
    }
}

#[test]
fn deeply_nested_input_parses_up_to_the_limit() {
    // 30 levels of parentheses parse fine (each level costs two depth
    // units: the event rule plus the unary rule)…
    let src = format!("{}after a{}", "(".repeat(30), ")".repeat(30));
    parse_event(&src).unwrap();
    // …but pathological nesting errors cleanly instead of blowing the
    // stack.
    let src = format!("{}after a{}", "(".repeat(5_000), ")".repeat(5_000));
    let err = parse_event(&src).unwrap_err();
    assert!(err.to_string().contains("depth"), "{err}");
}

#[test]
fn long_negation_chains_error_cleanly() {
    let src = format!("{}after a", "!".repeat(10_000));
    assert!(parse_event(&src).is_err());
    let src = format!("{}x > 1", "!".repeat(10_000));
    assert!(parse_mask(&src).is_err());
}

#[test]
fn long_curried_lists_parse() {
    let items = vec!["after a"; 100].join(", ");
    let e = parse_event(&format!("prior({items})")).unwrap();
    assert_eq!(e.size(), 101);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Random byte soup never panics the parser.
    #[test]
    fn random_strings_never_panic(s in "\\PC{0,80}") {
        let _ = parse_event(&s);
        let _ = parse_mask(&s);
    }

    /// Random token soup from the language's own vocabulary never panics
    /// (hits deeper grammar paths than raw bytes do).
    #[test]
    fn token_soup_never_panics(toks in prop::collection::vec(
        prop_oneof![
            Just("after"), Just("before"), Just("relative"), Just("prior"),
            Just("sequence"), Just("choose"), Just("every"), Just("fa"),
            Just("faAbs"), Just("at"), Just("time"), Just("("), Just(")"),
            Just(","), Just(";"), Just("|"), Just("&"), Just("&&"),
            Just("!"), Just("+"), Just("5"), Just("a"), Just("withdraw"),
            Just("q"), Just(">"), Just("=="), Just("HR"), Just("="),
            Just("tcommit"), Just("tbegin"), Just("empty"),
        ],
        0..25,
    )) {
        let src = toks.join(" ");
        let _ = parse_event(&src);
    }
}
