//! Algebraic laws of the event algebra, checked by compiling both sides
//! and deciding language equivalence — the Section 4 formal model makes
//! every such identity mechanically decidable.

use ode_core::{parse_event, Alphabet, CompiledEvent, EventExpr, LogicalEvent, MaskExpr};

/// Compile both sides against one *shared* alphabet (symbol identities
/// must agree for language comparison to be meaningful).
fn compile_pair(a: &str, b: &str) -> (CompiledEvent, CompiledEvent) {
    let ea = parse_event(a).unwrap();
    let eb = parse_event(b).unwrap();
    let mut logical: Vec<LogicalEvent> = Vec::new();
    let mut masks: Vec<MaskExpr> = Vec::new();
    for e in [&ea, &eb] {
        for le in e.logical_events() {
            if !logical.contains(&le) {
                logical.push(le);
            }
        }
        for m in e.composite_masks() {
            if !masks.contains(&m) {
                masks.push(m);
            }
        }
    }
    let alphabet = Alphabet::build_from_parts(&logical, &masks).unwrap();
    let ca = CompiledEvent::compile_with_alphabet(&ea, alphabet.clone()).unwrap();
    let cb = CompiledEvent::compile_with_alphabet(&eb, alphabet).unwrap();
    (ca, cb)
}

/// Assert two specifications denote the same event (same occurrence
/// language over the shared alphabet).
fn equivalent(a: &str, b: &str) {
    let (ca, cb) = compile_pair(a, b);
    assert!(ca.dfa().equivalent(cb.dfa()), "`{a}` should equal `{b}`");
}

/// Assert two specifications differ.
fn different(a: &str, b: &str) {
    let (ca, cb) = compile_pair(a, b);
    assert!(
        !ca.dfa().equivalent(cb.dfa()),
        "`{a}` should differ from `{b}`"
    );
}

/// `EventExpr` needed in signature resolution.
#[allow(dead_code)]
fn _t(_: &EventExpr) {}

#[test]
fn boolean_lattice_laws() {
    equivalent("after a | after b", "after b | after a");
    equivalent("after a & after b", "after b & after a");
    equivalent(
        "(after a | after b) | after c",
        "after a | (after b | after c)",
    );
    equivalent(
        "after a & (after b | after c)",
        "(after a & after b) | (after a & after c)",
    );
    equivalent("!(after a | after b)", "!after a & !after b");
    equivalent("!(after a & after b)", "!after a | !after b");
    equivalent("!!after a", "after a");
    equivalent("after a | after a", "after a");
}

#[test]
fn empty_is_the_zero() {
    equivalent("after a | empty", "after a");
    equivalent("after a & empty", "empty");
    // relative with an empty component never completes
    equivalent("relative(after a, empty)", "empty");
    equivalent("relative(empty, after a)", "empty");
}

#[test]
fn relative_is_associative() {
    equivalent(
        "relative(relative(after a, after b), after c)",
        "relative(after a, relative(after b, after c))",
    );
    equivalent(
        "relative(after a, after b, after c)",
        "relative(after a, relative(after b, after c))",
    );
}

#[test]
fn relative_distributes_over_union() {
    equivalent(
        "relative(after a, after b | after c)",
        "relative(after a, after b) | relative(after a, after c)",
    );
    equivalent(
        "relative(after a | after b, after c)",
        "relative(after a, after c) | relative(after b, after c)",
    );
}

#[test]
fn relative_plus_unrolls() {
    equivalent(
        "relative+(after a)",
        "after a | relative(after a, relative+(after a))",
    );
    // relative n is n-fold relative
    equivalent(
        "relative 3 (after a)",
        "relative(after a, after a, after a)",
    );
}

#[test]
fn prior_and_sequence_absorb_into_their_base() {
    // prior(E, F) ⊆ F and sequence(E, F) ⊆ F
    equivalent("prior(after a, after b) | after b", "after b");
    equivalent("sequence(after a, after b) | after b", "after b");
    // …and sequence is at least as strict as prior
    equivalent(
        "sequence(after a, after b) | prior(after a, after b)",
        "prior(after a, after b)",
    );
}

#[test]
fn sequence_vs_prior_vs_relative_strictness() {
    // On plain logical events relative(E,F) and prior(E,F) coincide...
    equivalent("relative(after a, after b)", "prior(after a, after b)");
    // ...but sequence is strictly tighter.
    different("sequence(after a, after b)", "prior(after a, after b)");
    // On composite arguments relative and prior genuinely differ
    // (the paper's §3.4 example).
    different(
        "relative(relative(after a, after b), relative(after c, after b))",
        "prior(relative(after a, after b), relative(after c, after b))",
    );
}

#[test]
fn counting_laws() {
    // choose 1 = first occurrence; every 1 = all occurrences
    equivalent("every 1 (after a)", "after a");
    different("choose 1 (after a)", "after a");
    // the n-th occurrence is in "n-th and subsequent"
    equivalent(
        "choose 3 (after a) | relative 3 (after a)",
        "relative 3 (after a)",
    );
    // every n ⊆ relative n
    equivalent(
        "every 3 (after a) | relative 3 (after a)",
        "relative 3 (after a)",
    );
    different("every 3 (after a)", "choose 3 (after a)");
}

#[test]
fn fa_laws() {
    // With an impossible guard, fa is just "first F after E".
    equivalent(
        "fa(after a, after b, empty)",
        "relative(after a, after b & !prior(after b, after b))",
    );
    // A guard equal to F blocks nothing extra (the first F is also the
    // first guard, and guards only block *strictly before* F).
    equivalent(
        "fa(after a, after b, after b)",
        "fa(after a, after b, empty)",
    );
    // fa and faAbs coincide when the guard is a plain logical event
    // (a single point in either context).
    equivalent(
        "fa(after a, after b, after c)",
        "faAbs(after a, after b, after c)",
    );
}

#[test]
fn masks_refine_events() {
    // a masked event is a sub-event of its base
    equivalent("after w(i, q) && q > 10 | after w(i, q)", "after w(i, q)");
    different("after w(i, q) && q > 10", "after w(i, q) && q > 20");
    // and the conjunction of two masks is their shared minterm
    different(
        "(after w(i, q) && q > 10) & (after w(i, q) && q > 20)",
        "after w(i, q) && q > 10",
    );
}
