//! Serialization round trips (the `serde` feature): a persistent
//! database must persist its trigger definitions, so event
//! specifications, masks, and values serialize losslessly.

#![cfg(feature = "serde")]

use ode_core::{parse_event, EventExpr, Value};

fn round_trip(e: &EventExpr) {
    let json = serde_json::to_string(e).expect("serializes");
    let back: EventExpr = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, e, "round trip changed the expression:\n{json}");
}

#[test]
fn event_expressions_round_trip() {
    for src in [
        "after withdraw(Item i, int q) && q > 1000",
        "relative(after motorStart, after motorStop)",
        "fa(after tbegin, prior(after update, after tcommit), \
         (after tcommit | after tabort))",
        "choose 5 (after tcommit)",
        "every 5 (after access)",
        "balance < 500.0",
        "at time(HR=9)",
        "after time(HR=2, M=30)",
        "after deposit; before withdraw; after withdraw",
        "!(before deposit | after deposit)",
        "relative+(after a)",
        "relative 5 (after a)",
        "empty",
    ] {
        round_trip(&parse_event(src).unwrap());
    }
}

#[test]
fn values_round_trip() {
    let v = Value::record([
        ("name", Value::Str("bolt".into())),
        ("balance", Value::Int(42)),
        ("weight", Value::Float(2.5)),
        ("tags", Value::record([("fragile", Value::Bool(false))])),
        ("note", Value::Null),
    ]);
    let json = serde_json::to_string(&v).unwrap();
    let back: Value = serde_json::from_str(&json).unwrap();
    assert_eq!(back, v);
}

#[test]
fn serialized_spec_still_compiles() {
    let e = parse_event("fa(after tbegin, after update, after tabort)").unwrap();
    let json = serde_json::to_string(&e).unwrap();
    let back: EventExpr = serde_json::from_str(&json).unwrap();
    let c1 = ode_core::CompiledEvent::compile(&e).unwrap();
    let c2 = ode_core::CompiledEvent::compile(&back).unwrap();
    assert!(c1.dfa().equivalent(c2.dfa()));
}

#[test]
fn float_masks_preserve_bit_patterns() {
    // 500.00 in a mask must survive exactly (FloatBits).
    let e = parse_event("balance < 500.0").unwrap();
    round_trip(&e);
    let e2 = parse_event("x == 0.1").unwrap();
    round_trip(&e2);
}
