use ode_core::detector::CompiledEvent;
use ode_core::event::BasicEvent;
use ode_core::expr::{EventExpr, LogicalEvent};
use ode_core::mask::MaskExpr;

fn main() {
    // Compile a trigger on bare `after w`.
    let base = EventExpr::after_method("w");
    let compiled = CompiledEvent::compile(&base).unwrap();
    // Now lower a different expr whose logical event has a mask not in the alphabet,
    // but whose basic event IS in the alphabet.
    let masked = EventExpr::Logical(
        LogicalEvent::bare(BasicEvent::after_method("w"))
            .with_params(["q"])
            .with_mask(MaskExpr::gt("q", 100i64)),
    );
    let r = std::panic::catch_unwind(|| compiled.lower_expr(&masked));
    match r {
        Ok(Ok(s)) => println!("lowered fine: {s:?}"),
        Ok(Err(e)) => println!("error: {e}"),
        Err(_) => println!("PANICKED"),
    }
    // Also via compile_with_alphabet
    let alpha = ode_core::alphabet::Alphabet::build(&base).unwrap();
    let r2 = std::panic::catch_unwind(|| CompiledEvent::compile_with_alphabet(&masked, alpha));
    println!(
        "compile_with_alphabet: {}",
        match r2 {
            Ok(Ok(_)) => "ok".into(),
            Ok(Err(e)) => format!("error: {e}"),
            Err(_) => "PANICKED".into(),
        }
    );
}
