use ode_core::alphabet::Alphabet;
use ode_core::compile::compile;
use ode_core::detector::CompiledEvent;
use ode_core::expr::EventExpr;
use ode_core::lower::SymExpr;
use ode_core::semantics::occurrences;
use ode_core::simplify::simplify;

fn atom(s: u32) -> SymExpr {
    SymExpr::Atom(vec![s])
}

fn main() {
    // symbolic level: sequence(a, sequence(b,c)) vs sequence(a,b,c)
    let nested = SymExpr::Sequence(vec![atom(0), SymExpr::Sequence(vec![atom(1), atom(2)])]);
    let flat = SymExpr::Sequence(vec![atom(0), atom(1), atom(2)]);
    let dn = compile(&nested, 3).unwrap();
    let dfl = compile(&flat, 3).unwrap();
    println!("symbolic equivalent: {}", dn.equivalent(&dfl));
    let h = [0u32, 1, 2]; // a b c
    println!("nested occ on [a,b,c]: {:?}", occurrences(&nested, &h));
    println!("flat   occ on [a,b,c]: {:?}", occurrences(&flat, &h));

    // EventExpr level through simplify
    let a = EventExpr::after_method("a");
    let b = EventExpr::after_method("b");
    let c = EventExpr::after_method("c");
    let e = EventExpr::sequence([a.clone(), EventExpr::sequence([b.clone(), c.clone()])]);
    let s = simplify(&e);
    println!("simplified: {s}");
    let alphabet = Alphabet::build(&e).unwrap();
    let c1 = CompiledEvent::compile_with_alphabet(&e, alphabet.clone()).unwrap();
    let c2 = CompiledEvent::compile_with_alphabet(&s, alphabet).unwrap();
    println!(
        "simplify preserved language: {}",
        c1.dfa().equivalent(c2.dfa())
    );

    // Also test relative for comparison
    let e2 = EventExpr::relative([a.clone(), EventExpr::relative([b.clone(), c.clone()])]);
    let s2 = simplify(&e2);
    let alpha2 = Alphabet::build(&e2).unwrap();
    let r1 = CompiledEvent::compile_with_alphabet(&e2, alpha2.clone()).unwrap();
    let r2 = CompiledEvent::compile_with_alphabet(&s2, alpha2).unwrap();
    println!(
        "relative flatten preserved: {}",
        r1.dfa().equivalent(r2.dfa())
    );
}
