// quick agreement check for PriorN / SequenceN
use ode_core::compile::compile;
use ode_core::lower::SymExpr;
use ode_core::semantics::occurrences;

fn atom(s: u32) -> SymExpr {
    SymExpr::Atom(vec![s])
}

fn agree(expr: &SymExpr, k: usize, max_len: usize) {
    let dfa = compile(expr, k).unwrap();
    let mut frontier: Vec<Vec<u32>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for s in 0..k as u32 {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        for w in &next {
            let occ = occurrences(expr, w);
            let semantic = occ.contains(&(w.len() - 1));
            let automaton = dfa.run(w.iter().copied());
            if semantic != automaton {
                println!(
                    "DISAGREE expr {:?} word {:?} semantic={} automaton={}",
                    expr, w, semantic, automaton
                );
                return;
            }
        }
        frontier = next;
    }
    println!("OK {:?}", expr);
}

fn main() {
    for n in 1..4u32 {
        agree(&SymExpr::PriorN(n, Box::new(atom(0))), 2, 6);
        agree(&SymExpr::SequenceN(n, Box::new(atom(0))), 2, 6);
        let rel = SymExpr::Relative(vec![atom(0), atom(1)]);
        agree(&SymExpr::PriorN(n, Box::new(rel.clone())), 2, 6);
        agree(&SymExpr::SequenceN(n, Box::new(rel.clone())), 2, 6);
        // nested in relative (truncated context)
        agree(
            &SymExpr::Relative(vec![atom(1), SymExpr::PriorN(n, Box::new(atom(0)))]),
            2,
            6,
        );
        agree(
            &SymExpr::Relative(vec![atom(1), SymExpr::SequenceN(n, Box::new(atom(0)))]),
            2,
            6,
        );
    }
}
