//! Parser for the textual event-specification language (Section 3.3 BNF).
//!
//! The accepted syntax follows the paper's O++ trigger-event grammar:
//!
//! ```text
//! after withdraw(Item i, int q) && q > 1000
//! relative(after motorStart, after motorStop)
//! choose 5 (after tcommit)
//! every 5 (after access)
//! fa(after tbegin, prior(after update, after tcommit),
//!    (after tcommit | after tabort))
//! after deposit; before withdraw; after withdraw
//! balance < 500.0                      -- object-state shorthand
//! deposit                              -- method shorthand
//! at time(HR=9)                        -- time events
//! after time(HR=2, M=30)
//! ```
//!
//! Notes:
//!
//! * `prior+` and `sequence+` are rejected with the Section 3.4
//!   explanation (`prior+(E) ≡ E`).
//! * A mask following a *bare logical event* attaches to that event
//!   (parameters in scope); a mask following any other form is a
//!   composite mask (current database state only).
//! * Parameter declarations may carry C-style types, which are accepted
//!   and discarded: `withdraw(Item i, int q)` declares names `i`, `q`.

use crate::error::EventError;
use crate::event::{BasicEvent, EventKind, Qualifier, TimeEvent, TimeSpec};
use crate::expr::{EventExpr, LogicalEvent};
use crate::mask::{BinOp, FloatBits, MaskExpr, UnOp};

/// Parse an event specification.
pub fn parse_event(input: &str) -> Result<EventExpr, EventError> {
    let mut p = Parser::new(input)?;
    let e = p.event()?;
    p.expect_eof()?;
    e.validate()?;
    Ok(e)
}

/// Parse a bare mask expression (used by tools and tests).
pub fn parse_mask(input: &str) -> Result<MaskExpr, EventError> {
    let mut p = Parser::new(input)?;
    let m = p.mask()?;
    p.expect_eof()?;
    Ok(m)
}

// ---------------------------------------------------------------- lexer

#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::enum_variant_names)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Pipe,     // |
    PipePipe, // ||
    Amp,      // &
    AmpAmp,   // &&
    Bang,     // !
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Assign, // =
    Plus,
    Minus,
    StarTok,
    Slash,
    Dot,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Pipe => "|",
                    Tok::PipePipe => "||",
                    Tok::Amp => "&",
                    Tok::AmpAmp => "&&",
                    Tok::Bang => "!",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::EqEq => "==",
                    Tok::Ne => "!=",
                    Tok::Assign => "=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::StarTok => "*",
                    Tok::Slash => "/",
                    Tok::Dot => ".",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, EventError> {
    let b = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let err = |offset: usize, message: String| EventError::Parse { offset, message };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            b';' => {
                out.push((Tok::Semi, i));
                i += 1;
            }
            b'.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            b'+' => {
                out.push((Tok::Plus, i));
                i += 1;
            }
            b'-' => {
                out.push((Tok::Minus, i));
                i += 1;
            }
            b'*' => {
                out.push((Tok::StarTok, i));
                i += 1;
            }
            b'/' => {
                // `//` line comment
                if b.get(i + 1) == Some(&b'/') {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push((Tok::Slash, i));
                    i += 1;
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push((Tok::PipePipe, i));
                    i += 2;
                } else {
                    out.push((Tok::Pipe, i));
                    i += 1;
                }
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push((Tok::AmpAmp, i));
                    i += 2;
                } else {
                    out.push((Tok::Amp, i));
                    i += 1;
                }
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, i));
                    i += 2;
                } else {
                    out.push((Tok::Bang, i));
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Le, i));
                    i += 2;
                } else {
                    out.push((Tok::Lt, i));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, i));
                    i += 2;
                } else {
                    out.push((Tok::Gt, i));
                    i += 1;
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::EqEq, i));
                    i += 2;
                } else {
                    out.push((Tok::Assign, i));
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match b.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                other => {
                                    return Err(err(
                                        i,
                                        format!("unknown escape {:?}", other.map(|&c| c as char)),
                                    ))
                                }
                            }
                            i += 2;
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                        None => return Err(err(start, "unterminated string".into())),
                    }
                }
                out.push((Tok::Str(s), start));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let v: f64 = text
                        .parse()
                        .map_err(|e| err(start, format!("bad float `{text}`: {e}")))?;
                    out.push((Tok::Float(v), start));
                } else {
                    let text = &input[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|e| err(start, format!("bad integer `{text}`: {e}")))?;
                    out.push((Tok::Int(v), start));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err(err(i, format!("unexpected character `{}`", other as char)));
            }
        }
    }
    out.push((Tok::Eof, b.len()));
    Ok(out)
}

// --------------------------------------------------------------- parser

/// Maximum expression nesting depth — bounds recursion so hostile input
/// errors instead of overflowing the stack (debug-build parser frames
/// are large; 64 comfortably fits a 2 MiB test-thread stack while being
/// far beyond any realistic trigger specification).
const MAX_DEPTH: usize = 64;

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, EventError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            depth: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), EventError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), EventError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> EventError {
        EventError::Parse {
            offset: self.offset(),
            message,
        }
    }

    fn ident_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // event := or
    fn event(&mut self) -> Result<EventExpr, EventError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!(
                "expression nesting exceeds the maximum depth of {MAX_DEPTH}"
            )));
        }
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<EventExpr, EventError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Pipe) {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<EventExpr, EventError> {
        let mut e = self.seq_expr()?;
        while self.eat(&Tok::Amp) {
            e = e.and(self.seq_expr()?);
        }
        Ok(e)
    }

    // `;` sequencing: E1; E2; E3  →  sequence(E1, E2, E3)
    fn seq_expr(&mut self) -> Result<EventExpr, EventError> {
        let first = self.unary_expr()?;
        if self.peek() != &Tok::Semi {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&Tok::Semi) {
            items.push(self.unary_expr()?);
        }
        Ok(EventExpr::Sequence(items))
    }

    fn unary_expr(&mut self) -> Result<EventExpr, EventError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.error(format!(
                "expression nesting exceeds the maximum depth of {MAX_DEPTH}"
            )));
        }
        let r = self.unary_expr_inner();
        self.depth -= 1;
        r
    }

    fn unary_expr_inner(&mut self) -> Result<EventExpr, EventError> {
        if self.eat(&Tok::Bang) {
            // `!E` — but `!name(...)` or `!name.x` is a state-mask
            // shorthand (e.g. `!authorized(user())`).
            if let Tok::Ident(name) = self.peek().clone() {
                if !is_event_keyword(&name) && matches!(self.peek2(), Tok::LParen | Tok::Dot) {
                    self.bump();
                    let m = self.mask_from_ident(name)?;
                    let m = self.mask_binary_tail(MaskExpr::Unary(UnOp::Not, Box::new(m)), 0)?;
                    return Ok(EventExpr::state(m));
                }
            }
            return Ok(self.unary_expr()?.not());
        }
        self.postfix_expr()
    }

    // postfix: primary [&& mask] — composite mask unless primary was a
    // bare logical event, in which case the mask attaches to it.
    fn postfix_expr(&mut self) -> Result<EventExpr, EventError> {
        let (mut e, is_logical) = self.primary()?;
        let mut first = true;
        while self.eat(&Tok::AmpAmp) {
            let m = self.mask()?;
            if first && is_logical {
                if let EventExpr::Logical(le) = &mut e {
                    le.mask = Some(m);
                    first = false;
                    continue;
                }
            }
            e = e.masked(m);
            first = false;
        }
        Ok(e)
    }

    /// Returns `(expr, was-a-bare-logical-event)`.
    fn primary(&mut self) -> Result<(EventExpr, bool), EventError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.event()?;
                self.expect(&Tok::RParen)?;
                Ok((e, false))
            }
            Tok::Ident(name) => match name.as_str() {
                "empty" => {
                    self.bump();
                    Ok((EventExpr::Empty, false))
                }
                "before" | "after" => {
                    let e = self.qualified_event()?;
                    Ok((e, true))
                }
                "at" => {
                    self.bump();
                    let spec = self.time_literal()?;
                    Ok((
                        EventExpr::basic(BasicEvent::Time(TimeEvent::At(spec))),
                        true,
                    ))
                }
                "relative" => {
                    self.bump();
                    if self.eat(&Tok::Plus) {
                        self.expect(&Tok::LParen)?;
                        let inner = self.event()?;
                        self.expect(&Tok::RParen)?;
                        return Ok((inner.relative_plus(), false));
                    }
                    if let Tok::Int(n) = self.peek().clone() {
                        self.bump();
                        let n = self.check_u32(n, "relative")?;
                        self.expect(&Tok::LParen)?;
                        let inner = self.event()?;
                        self.expect(&Tok::RParen)?;
                        return Ok((inner.relative_n(n), false));
                    }
                    let list = self.event_list()?;
                    Ok((EventExpr::Relative(list), false))
                }
                "prior" => {
                    self.bump();
                    self.curried_no_plus("prior")
                }
                "sequence" => {
                    self.bump();
                    self.curried_no_plus("sequence")
                }
                "choose" => {
                    self.bump();
                    let n = self.count("choose")?;
                    self.expect(&Tok::LParen)?;
                    let inner = self.event()?;
                    self.expect(&Tok::RParen)?;
                    Ok((inner.choose(n), false))
                }
                "every" => {
                    self.bump();
                    // `every time(...)` is a time event; `every N (E)` is
                    // the counting operator.
                    if self.ident_is("time") {
                        let spec = self.time_literal()?;
                        return Ok((
                            EventExpr::basic(BasicEvent::Time(TimeEvent::Every(spec))),
                            true,
                        ));
                    }
                    let n = self.count("every")?;
                    self.expect(&Tok::LParen)?;
                    let inner = self.event()?;
                    self.expect(&Tok::RParen)?;
                    Ok((inner.every(n), false))
                }
                "fa" | "faAbs" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let a = self.event()?;
                    self.expect(&Tok::Comma)?;
                    let b = self.event()?;
                    self.expect(&Tok::Comma)?;
                    let c = self.event()?;
                    self.expect(&Tok::RParen)?;
                    let e = if name == "fa" {
                        EventExpr::fa(a, b, c)
                    } else {
                        EventExpr::fa_abs(a, b, c)
                    };
                    Ok((e, false))
                }
                "state" => {
                    // explicit object-state shorthand: state(mask)
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let m = self.mask()?;
                    self.expect(&Tok::RParen)?;
                    Ok((EventExpr::state(m), false))
                }
                _ => {
                    // Bare identifier: method shorthand, or the
                    // object-state boolean-expression shorthand.
                    self.bump();
                    match self.peek() {
                        Tok::Lt
                        | Tok::Le
                        | Tok::Gt
                        | Tok::Ge
                        | Tok::EqEq
                        | Tok::Ne
                        | Tok::Plus
                        | Tok::Minus
                        | Tok::StarTok
                        | Tok::Slash
                        | Tok::Dot
                        | Tok::LParen => {
                            let m = self.mask_from_ident(name)?;
                            let m = self.mask_binary_tail(m, 0)?;
                            Ok((EventExpr::state(m), false))
                        }
                        _ => Ok((EventExpr::method(name), false)),
                    }
                }
            },
            other => Err(self.error(format!("expected an event, found {other}"))),
        }
    }

    fn curried_no_plus(&mut self, op: &'static str) -> Result<(EventExpr, bool), EventError> {
        if self.peek() == &Tok::Plus {
            return Err(EventError::RedundantPlus { operator: op });
        }
        if let Tok::Int(n) = self.peek().clone() {
            self.bump();
            let n = self.check_u32(n, op)?;
            self.expect(&Tok::LParen)?;
            let inner = self.event()?;
            self.expect(&Tok::RParen)?;
            let e = if op == "prior" {
                inner.prior_n(n)
            } else {
                inner.sequence_n(n)
            };
            return Ok((e, false));
        }
        let list = self.event_list()?;
        let e = if op == "prior" {
            EventExpr::Prior(list)
        } else {
            EventExpr::Sequence(list)
        };
        Ok((e, false))
    }

    fn event_list(&mut self) -> Result<Vec<EventExpr>, EventError> {
        self.expect(&Tok::LParen)?;
        let mut list = vec![self.event()?];
        while self.eat(&Tok::Comma) {
            list.push(self.event()?);
        }
        self.expect(&Tok::RParen)?;
        Ok(list)
    }

    fn count(&mut self, op: &'static str) -> Result<u32, EventError> {
        match self.bump() {
            Tok::Int(n) => self.check_u32(n, op),
            other => Err(self.error(format!("`{op}` requires an integer count, found {other}"))),
        }
    }

    fn check_u32(&self, n: i64, op: &'static str) -> Result<u32, EventError> {
        if n < 1 || n > u32::MAX as i64 {
            Err(EventError::InvalidCount {
                operator: match op {
                    "relative" => "relative",
                    "prior" => "prior",
                    "sequence" => "sequence",
                    "choose" => "choose",
                    _ => "every",
                },
                count: n.max(0) as u32,
            })
        } else {
            Ok(n as u32)
        }
    }

    // before/after <kind-or-method> [params] | after time(...)
    fn qualified_event(&mut self) -> Result<EventExpr, EventError> {
        let q = match self.bump() {
            Tok::Ident(s) if s == "before" => Qualifier::Before,
            Tok::Ident(s) if s == "after" => Qualifier::After,
            other => return Err(self.error(format!("expected before/after, found {other}"))),
        };
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.error(format!("expected an event name, found {other}"))),
        };
        if name == "time" {
            if q == Qualifier::Before {
                return Err(self.error("`before time(...)` is not a valid event".into()));
            }
            // rewind to parse the literal including `time`
            self.pos -= 1;
            let spec = self.time_literal()?;
            return Ok(EventExpr::basic(BasicEvent::Time(TimeEvent::After(spec))));
        }
        let kind = match name.as_str() {
            "create" => EventKind::Create,
            "delete" => EventKind::Delete,
            "update" => EventKind::Update,
            "read" => EventKind::Read,
            "access" => EventKind::Access,
            "tbegin" => EventKind::TBegin,
            "tcomplete" => EventKind::TComplete,
            "tcommit" => EventKind::TCommit,
            "tabort" => EventKind::TAbort,
            _ => EventKind::Method(name),
        };
        let mut le = LogicalEvent::bare(BasicEvent::Db(q, kind));
        // optional parameter declaration `(Item i, int q)` / `(i, q)`
        if matches!(kind_of(&le.basic), Some(EventKind::Method(_))) && self.peek() == &Tok::LParen {
            self.bump();
            let mut params = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    let first = match self.bump() {
                        Tok::Ident(s) => s,
                        other => {
                            return Err(
                                self.error(format!("expected a parameter name, found {other}"))
                            )
                        }
                    };
                    // optional C-style type before the name
                    let name = if let Tok::Ident(second) = self.peek().clone() {
                        self.bump();
                        second
                    } else {
                        first
                    };
                    params.push(name);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            le.params = params;
        }
        Ok(EventExpr::Logical(le))
    }

    // time(YR=…, MO=…, DAY=…, HR=…, M=…, SEC=…, MS=…)
    fn time_literal(&mut self) -> Result<TimeSpec, EventError> {
        match self.bump() {
            Tok::Ident(s) if s == "time" => {}
            other => return Err(self.error(format!("expected `time`, found {other}"))),
        }
        self.expect(&Tok::LParen)?;
        let mut spec = TimeSpec::default();
        if self.peek() != &Tok::RParen {
            loop {
                let field = match self.bump() {
                    Tok::Ident(s) => s,
                    other => {
                        return Err(self.error(format!("expected a time field, found {other}")))
                    }
                };
                self.expect(&Tok::Assign)?;
                let v = match self.bump() {
                    Tok::Int(n) if n >= 0 => n as u32,
                    other => {
                        return Err(
                            self.error(format!("expected a non-negative integer, found {other}"))
                        )
                    }
                };
                let slot = match field.as_str() {
                    "YR" => &mut spec.yr,
                    "MO" => &mut spec.mo,
                    "DAY" => &mut spec.day,
                    "HR" => &mut spec.hr,
                    "M" | "MIN" => &mut spec.min,
                    "SEC" => &mut spec.sec,
                    "MS" => &mut spec.ms,
                    other => {
                        return Err(self.error(format!(
                            "unknown time field `{other}` (expected YR/MO/DAY/HR/M/SEC/MS)"
                        )))
                    }
                };
                if slot.is_some() {
                    return Err(self.error(format!("duplicate time field `{field}`")));
                }
                *slot = Some(v);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(spec)
    }

    // ----------------------------------------------------------- masks

    fn mask(&mut self) -> Result<MaskExpr, EventError> {
        let lhs = self.mask_unary()?;
        self.mask_binary_tail(lhs, 0)
    }

    /// Precedence-climbing over binary operators with minimum binding
    /// power `min_prec`.
    fn mask_binary_tail(
        &mut self,
        mut lhs: MaskExpr,
        min_prec: u8,
    ) -> Result<MaskExpr, EventError> {
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (BinOp::Or, 1),
                Tok::AmpAmp => (BinOp::And, 2),
                Tok::EqEq => (BinOp::Eq, 3),
                Tok::Ne => (BinOp::Ne, 3),
                Tok::Lt => (BinOp::Lt, 4),
                Tok::Le => (BinOp::Le, 4),
                Tok::Gt => (BinOp::Gt, 4),
                Tok::Ge => (BinOp::Ge, 4),
                Tok::Plus => (BinOp::Add, 5),
                Tok::Minus => (BinOp::Sub, 5),
                Tok::StarTok => (BinOp::Mul, 6),
                Tok::Slash => (BinOp::Div, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let mut rhs = self.mask_unary()?;
            // left-associative: bind tighter operators into rhs
            loop {
                let next_prec = match self.peek() {
                    Tok::PipePipe => 1,
                    Tok::AmpAmp => 2,
                    Tok::EqEq | Tok::Ne => 3,
                    Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge => 4,
                    Tok::Plus | Tok::Minus => 5,
                    Tok::StarTok | Tok::Slash => 6,
                    _ => 0,
                };
                if next_prec > prec {
                    rhs = self.mask_binary_tail(rhs, next_prec)?;
                } else {
                    break;
                }
            }
            lhs = MaskExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mask_unary(&mut self) -> Result<MaskExpr, EventError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.error(format!(
                "mask nesting exceeds the maximum depth of {MAX_DEPTH}"
            )));
        }
        let r = self.mask_unary_inner();
        self.depth -= 1;
        r
    }

    fn mask_unary_inner(&mut self) -> Result<MaskExpr, EventError> {
        if self.eat(&Tok::Bang) {
            return Ok(MaskExpr::Unary(UnOp::Not, Box::new(self.mask_unary()?)));
        }
        if self.eat(&Tok::Minus) {
            return Ok(MaskExpr::Unary(UnOp::Neg, Box::new(self.mask_unary()?)));
        }
        self.mask_postfix()
    }

    fn mask_postfix(&mut self) -> Result<MaskExpr, EventError> {
        let mut e = self.mask_atom()?;
        while self.eat(&Tok::Dot) {
            match self.bump() {
                Tok::Ident(m) => e = MaskExpr::Member(Box::new(e), m),
                other => return Err(self.error(format!("expected a member name, found {other}"))),
            }
        }
        Ok(e)
    }

    fn mask_atom(&mut self) -> Result<MaskExpr, EventError> {
        match self.bump() {
            Tok::Int(i) => Ok(MaskExpr::Int(i)),
            Tok::Float(f) => Ok(MaskExpr::Float(FloatBits::from_f64(f))),
            Tok::Str(s) => Ok(MaskExpr::Str(s)),
            Tok::Ident(s) if s == "true" => Ok(MaskExpr::Bool(true)),
            Tok::Ident(s) if s == "false" => Ok(MaskExpr::Bool(false)),
            Tok::Ident(name) => self.mask_call_or_name(name),
            Tok::LParen => {
                let m = self.mask()?;
                self.expect(&Tok::RParen)?;
                Ok(m)
            }
            other => Err(self.error(format!("expected a mask term, found {other}"))),
        }
    }

    /// Continue a mask after having consumed an identifier.
    fn mask_from_ident(&mut self, name: String) -> Result<MaskExpr, EventError> {
        let base = self.mask_call_or_name(name)?;
        // allow member chains
        let mut e = base;
        while self.eat(&Tok::Dot) {
            match self.bump() {
                Tok::Ident(m) => e = MaskExpr::Member(Box::new(e), m),
                other => return Err(self.error(format!("expected a member name, found {other}"))),
            }
        }
        Ok(e)
    }

    fn mask_call_or_name(&mut self, name: String) -> Result<MaskExpr, EventError> {
        if self.eat(&Tok::LParen) {
            let mut args = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    args.push(self.mask()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            Ok(MaskExpr::Call(name, args))
        } else {
            Ok(MaskExpr::Name(name))
        }
    }
}

fn kind_of(b: &BasicEvent) -> Option<&EventKind> {
    match b {
        BasicEvent::Db(_, k) => Some(k),
        _ => None,
    }
}

fn is_event_keyword(s: &str) -> bool {
    matches!(
        s,
        "before"
            | "after"
            | "at"
            | "relative"
            | "prior"
            | "sequence"
            | "choose"
            | "every"
            | "fa"
            | "faAbs"
            | "empty"
            | "state"
            | "time"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn round_trip(src: &str) {
        let e1 = parse_event(src).unwrap();
        let printed = e1.to_string();
        let e2 = parse_event(&printed)
            .unwrap_or_else(|err| panic!("re-parse of `{printed}` failed: {err}"));
        assert_eq!(
            e1, e2,
            "print/parse round trip changed `{src}` → `{printed}`"
        );
    }

    #[test]
    fn parses_basic_events() {
        let e = parse_event("after read").unwrap();
        assert_eq!(e, EventExpr::basic(BasicEvent::after(EventKind::Read)));
        let e = parse_event("before tcomplete").unwrap();
        assert_eq!(
            e,
            EventExpr::basic(BasicEvent::before(EventKind::TComplete))
        );
    }

    #[test]
    fn rejects_before_tcommit() {
        let err = parse_event("before tcommit").unwrap_err();
        assert!(err.to_string().contains("not allowed"), "{err}");
    }

    #[test]
    fn parses_method_with_params_and_mask() {
        // paper: after withdraw (Item i, int q) && q>1000
        let e = parse_event("after withdraw(Item i, int q) && q > 1000").unwrap();
        match e {
            EventExpr::Logical(le) => {
                assert_eq!(le.basic, BasicEvent::after_method("withdraw"));
                assert_eq!(le.params, vec!["i", "q"]);
                assert!(le.mask.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_untyped_params() {
        let e = parse_event("after withdraw(i, q) && q > 100").unwrap();
        match e {
            EventExpr::Logical(le) => assert_eq!(le.params, vec!["i", "q"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_shorthand() {
        let e = parse_event("deposit").unwrap();
        assert_eq!(e, EventExpr::method("deposit"));
        // !deposit = !(before deposit | after deposit)
        let e = parse_event("!deposit").unwrap();
        assert_eq!(e, EventExpr::method("deposit").not());
    }

    #[test]
    fn state_shorthand() {
        // paper: balance < 500.00
        let e = parse_event("balance < 500.0").unwrap();
        assert_eq!(e, EventExpr::state(MaskExpr::lt("balance", 500.0)));
        let e2 = parse_event("state(balance < 500.0)").unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn state_shorthand_with_call() {
        // trigger T1 shape: !authorized(user())
        let e = parse_event("!authorized(user())").unwrap();
        match e {
            EventExpr::Masked(_, m) => {
                assert_eq!(m.to_string(), "!authorized(user())");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_operators() {
        round_trip("relative(after motorStart, after motorStop)");
        round_trip("prior(after update, after tcommit)");
        round_trip("sequence(after tbegin, before access, after access, before tcomplete)");
        round_trip("choose 5 (after tcommit)");
        round_trip("every 5 (after access)");
        round_trip("relative+(after deposit)");
        round_trip("relative 5 (after deposit)");
        round_trip("prior 3 (after deposit)");
        round_trip(
            "fa(after tbegin, prior(after update, after tcommit), (after tcommit | after tabort))",
        );
        round_trip("faAbs(after a, after b, after c)");
        round_trip("!(before deposit | after deposit)");
        round_trip("after a & after b");
        round_trip("empty");
    }

    #[test]
    fn semicolon_sequencing() {
        let e = parse_event("after tbegin; before access; after access; before tcomplete").unwrap();
        let f =
            parse_event("sequence(after tbegin, before access, after access, before tcomplete)")
                .unwrap();
        assert_eq!(e, f);
    }

    #[test]
    fn prior_plus_rejected_with_explanation() {
        let err = parse_event("prior+(after a)").unwrap_err();
        assert!(err.to_string().contains("equivalent to `E`"), "{err}");
        let err = parse_event("sequence+(after a)").unwrap_err();
        assert!(err.to_string().contains("equivalent"), "{err}");
    }

    #[test]
    fn zero_counts_rejected() {
        assert!(parse_event("choose 0 (after a)").is_err());
        assert!(parse_event("relative 0 (after a)").is_err());
    }

    #[test]
    fn time_events() {
        let e = parse_event("at time(HR=9)").unwrap();
        assert_eq!(
            e,
            EventExpr::basic(BasicEvent::Time(TimeEvent::At(TimeSpec::at_hour(9))))
        );
        let e = parse_event("after time(HR=2, M=30)").unwrap();
        match e {
            EventExpr::Logical(le) => {
                assert!(matches!(le.basic, BasicEvent::Time(TimeEvent::After(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = parse_event("every time(DAY=7)").unwrap();
        assert!(matches!(
            e,
            EventExpr::Logical(LogicalEvent {
                basic: BasicEvent::Time(TimeEvent::Every(_)),
                ..
            })
        ));
        round_trip("at time(HR=9)");
        round_trip("every time(DAY=7)");
        round_trip("after time(HR=2, M=30)");
    }

    #[test]
    fn time_literal_errors() {
        assert!(parse_event("at time(XX=1)").is_err());
        assert!(parse_event("at time(HR=1, HR=2)").is_err());
        assert!(parse_event("before time(HR=1)").is_err());
    }

    #[test]
    fn composite_mask_binds_to_parenthesized_event() {
        let e = parse_event("(after update | after create) && balance < 500.0").unwrap();
        assert!(matches!(e, EventExpr::Masked(_, _)));
    }

    #[test]
    fn logical_mask_binds_to_bare_event() {
        let e = parse_event("after withdraw && amount > 3").unwrap();
        match e {
            EventExpr::Logical(le) => assert!(le.mask.is_some()),
            other => panic!("expected logical-event mask, got {other:?}"),
        }
    }

    #[test]
    fn double_mask_becomes_composite() {
        // first && attaches to the logical event, second is composite
        let e = parse_event("after w && a > 1 && b > 2").unwrap();
        // mask grammar consumes `a > 1 && b > 2` as one mask
        match e {
            EventExpr::Logical(le) => {
                assert_eq!(le.mask.unwrap().to_string(), "a > 1 && b > 2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_or_lower_than_and() {
        let e = parse_event("after a | after b & after c").unwrap();
        assert!(matches!(e, EventExpr::Or(_, _)));
        let e = parse_event("(after a | after b) & after c").unwrap();
        assert!(matches!(e, EventExpr::And(_, _)));
    }

    #[test]
    fn mask_precedence() {
        let m = parse_mask("1 + 2 * 3 == 7").unwrap();
        assert_eq!(m.to_string(), "1 + 2 * 3 == 7");
        let m = parse_mask("(1 + 2) * 3 == 9").unwrap();
        assert_eq!(m.to_string(), "(1 + 2) * 3 == 9");
        let m = parse_mask("a < 1 && b > 2 || c == 3").unwrap();
        assert_eq!(m.to_string(), "a < 1 && b > 2 || c == 3");
    }

    #[test]
    fn mask_member_chains() {
        let m = parse_mask("i.balance < reorder(i)").unwrap();
        assert_eq!(m.to_string(), "i.balance < reorder(i)");
    }

    #[test]
    fn comments_are_skipped() {
        let e = parse_event("after a // fire on a\n | after b").unwrap();
        assert!(matches!(e, EventExpr::Or(_, _)));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_event("after a |").unwrap_err();
        match err {
            EventError::Parse { offset, .. } => assert_eq!(offset, 9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trip_complex_triggers() {
        // the paper's T4 and T7 shapes
        round_trip(
            "relative(at time(HR=9), prior(choose 5 (after tcommit), after tcommit) & \
             !prior(at time(HR=9), after tcommit))",
        );
        round_trip("fa(at time(HR=9), choose 5 (after withdraw(i, q) && q > 100), at time(HR=9))");
        round_trip("after deposit; before withdraw; after withdraw");
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(parse_event("(after a").is_err());
        assert!(parse_event("relative(after a, after b").is_err());
    }
}
