//! Specification diagnostics: explain *when* a composite event can
//! occur, before attaching it to a trigger.
//!
//! The formal model (Section 4) makes these questions decidable on the
//! compiled automaton: whether the event can occur at all, a shortest
//! witness history, and whether it can occur more than once. Surfacing
//! them at definition time catches specification bugs — the engine
//! already rejects impossible triggers; this module says *why*.

use ode_automata::Symbol;

use crate::detector::CompiledEvent;

/// A diagnosis of a compiled event specification.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// Can the event ever occur?
    pub can_occur: bool,
    /// A shortest symbol sequence (as human-readable logical events) at
    /// whose last point the event occurs. Note: the occurrence language
    /// itself does not force the distinguished `start` point — the
    /// detector always feeds it first, and `Σ*`-shaped languages absorb
    /// it.
    pub shortest_witness: Option<Vec<String>>,
    /// Can the event occur at two different points of some history? An
    /// event that cannot reoccur makes a `perpetual` trigger pointless.
    pub can_reoccur: bool,
    /// Number of symbols in the compiled alphabet.
    pub alphabet_len: usize,
    /// Number of states in the minimal detection automaton.
    pub dfa_states: usize,
}

/// Diagnose a compiled event.
pub fn diagnose(compiled: &CompiledEvent) -> Diagnosis {
    let dfa = compiled.dfa();
    let alphabet = compiled.alphabet();

    let witness_syms = dfa.shortest_accepted();
    let shortest_witness = witness_syms.as_ref().map(|w| {
        w.iter()
            .map(|&s| alphabet.describe(s))
            .collect::<Vec<String>>()
    });

    // Reoccurrence: is there an accepted word with a proper prefix that
    // is also accepted? Equivalently, L ∩ L·Σ⁺ non-empty.
    let can_reoccur = {
        let n = ode_automata::Nfa::sigma_plus(dfa.alphabet_len());
        let l = dfa.to_nfa();
        let l_then_more = ode_automata::minimize(&ode_automata::determinize(&l.concat(&n)));
        !dfa.intersect(&l_then_more).is_empty_language()
    };

    Diagnosis {
        can_occur: witness_syms.is_some(),
        shortest_witness,
        can_reoccur,
        alphabet_len: alphabet.len(),
        dfa_states: dfa.num_states(),
    }
}

/// A shortest witness as raw symbols (tooling).
pub fn shortest_witness_symbols(compiled: &CompiledEvent) -> Option<Vec<Symbol>> {
    compiled.dfa().shortest_accepted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event;

    fn diag(src: &str) -> Diagnosis {
        let compiled = CompiledEvent::compile(&parse_event(src).unwrap()).unwrap();
        diagnose(&compiled)
    }

    #[test]
    fn witness_for_sequence() {
        let d = diag("after deposit; after withdraw");
        assert!(d.can_occur);
        let w = d.shortest_witness.unwrap();
        assert_eq!(
            w,
            vec!["after deposit".to_string(), "after withdraw".to_string()]
        );
        assert!(d.can_reoccur);
    }

    #[test]
    fn impossible_events_have_no_witness() {
        let d = diag("after a & !after a");
        assert!(!d.can_occur);
        assert!(d.shortest_witness.is_none());
        assert!(!d.can_reoccur);
    }

    #[test]
    fn choose_cannot_reoccur() {
        let d = diag("choose 3 (after a)");
        assert!(d.can_occur);
        assert!(!d.can_reoccur, "the 3rd occurrence happens once");
        let d = diag("every 3 (after a)");
        assert!(d.can_reoccur, "every 3rd keeps firing");
    }

    #[test]
    fn masked_witness_names_the_minterm() {
        let d = diag("after w(i, q) && q > 100");
        let w = d.shortest_witness.unwrap();
        assert!(w.last().unwrap().contains("q > 100"), "{w:?}");
    }

    #[test]
    fn sizes_reported() {
        let d = diag("choose 4 (after a)");
        assert_eq!(d.alphabet_len, 2);
        assert_eq!(d.dfa_states, 6);
    }
}
