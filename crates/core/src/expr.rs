//! Composite event expressions — the Section 3.3 algebra.
//!
//! ```text
//! logical-composite-event = composite-event [&& mask]
//! composite-event = logical-event
//!   | (composite-event)
//!   | composite-event & composite-event
//!   | composite-event | composite-event
//!   | ! composite-event
//!   | relative (composite-event-list)
//!   | relative+ (composite-event)
//!   | relative const-int (composite-event)
//!   | prior (composite-event-list)
//!   | prior const-int (composite-event)
//!   | composite-event ; composite-event
//!   | sequence (composite-event-list)
//!   | sequence const-int (composite-event)
//!   | choose const-int (composite-event)
//!   | every const-int (composite-event)
//!   | fa (composite-event, composite-event, composite-event)
//!   | faAbs (composite-event, composite-event, composite-event)
//! logical-event = basic-event [&& mask]
//! ```
//!
//! Curried n-ary forms (`prior(E, F, G)` ≡ `prior(prior(E, F), G)`) are
//! kept in the AST and normalized during compilation; singleton forms
//! (`prior(E)` ≡ `E`) are honoured per Section 3.4.

use std::fmt;

use crate::error::EventError;
use crate::event::{BasicEvent, EventKind};
use crate::mask::MaskExpr;

/// A logical event: a basic event, its declared parameter names (binding
/// the posted positional arguments for mask evaluation), and an optional
/// mask (Section 3.2).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalEvent {
    /// The underlying basic event.
    pub basic: BasicEvent,
    /// Declared parameter names (`after withdraw(i, q)` declares
    /// `["i", "q"]`), bound positionally to the posted arguments.
    pub params: Vec<String>,
    /// Optional mask predicate.
    pub mask: Option<MaskExpr>,
}

impl LogicalEvent {
    /// An unmasked logical event.
    pub fn bare(basic: BasicEvent) -> Self {
        LogicalEvent {
            basic,
            params: Vec::new(),
            mask: None,
        }
    }

    /// Attach declared parameter names.
    pub fn with_params<S: Into<String>>(mut self, params: impl IntoIterator<Item = S>) -> Self {
        self.params = params.into_iter().map(Into::into).collect();
        self
    }

    /// Attach a mask.
    pub fn with_mask(mut self, mask: MaskExpr) -> Self {
        self.mask = Some(mask);
        self
    }
}

impl fmt::Display for LogicalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.basic)?;
        if !self.params.is_empty() {
            write!(f, "({})", self.params.join(", "))?;
        }
        if let Some(m) = &self.mask {
            write!(f, " && {m}")?;
        }
        Ok(())
    }
}

/// A composite event expression (Section 3.3 BNF).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub enum EventExpr {
    /// The empty event — never occurs (Section 4 item 1).
    Empty,
    /// A logical event.
    Logical(LogicalEvent),
    /// Union `E | F`.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// Intersection `E & F` — both occur at the same point.
    And(Box<EventExpr>, Box<EventExpr>),
    /// Complement `!E` — every point not labelled by `E`.
    Not(Box<EventExpr>),
    /// `relative(E₁, …, Eₙ)` — curried truncated-context sequencing.
    Relative(Vec<EventExpr>),
    /// `relative+ (E)` — unlimited repetition.
    RelativePlus(Box<EventExpr>),
    /// `relative n (E)` — the n-th and subsequent chained occurrences.
    RelativeN(u32, Box<EventExpr>),
    /// `prior(E₁, …, Eₙ)` — last-point-before-last-point sequencing in
    /// the *full* context.
    Prior(Vec<EventExpr>),
    /// `prior n (E)`.
    PriorN(u32, Box<EventExpr>),
    /// `sequence(E₁, …, Eₙ)` / `E₁; E₂` — Eₖ occurs at the point
    /// immediately following Eₖ₋₁'s point.
    Sequence(Vec<EventExpr>),
    /// `sequence n (E)`.
    SequenceN(u32, Box<EventExpr>),
    /// `choose n (E)` — exactly the n-th occurrence.
    Choose(u32, Box<EventExpr>),
    /// `every n (E)` — every n-th occurrence.
    Every(u32, Box<EventExpr>),
    /// `fa(E, F, G)` — first `F` after `E` with no intervening `G`
    /// (F and G relative to E's occurrence point).
    Fa(Box<EventExpr>, Box<EventExpr>, Box<EventExpr>),
    /// `faAbs(E, F, G)` — as `fa`, but `G` is judged against the whole
    /// history.
    FaAbs(Box<EventExpr>, Box<EventExpr>, Box<EventExpr>),
    /// `E && mask` — a composite event refined by a predicate on the
    /// *current* database state (Section 3.3).
    Masked(Box<EventExpr>, MaskExpr),
}

impl EventExpr {
    /// A logical event expression.
    pub fn logical(ev: LogicalEvent) -> EventExpr {
        EventExpr::Logical(ev)
    }

    /// An unmasked basic event.
    pub fn basic(b: BasicEvent) -> EventExpr {
        EventExpr::Logical(LogicalEvent::bare(b))
    }

    /// `after method`.
    pub fn after_method(name: impl Into<String>) -> EventExpr {
        EventExpr::basic(BasicEvent::after_method(name))
    }

    /// `before method`.
    pub fn before_method(name: impl Into<String>) -> EventExpr {
        EventExpr::basic(BasicEvent::before_method(name))
    }

    /// The method-name shorthand: `m` ≡ `(before m | after m)`
    /// (Section 3.3).
    pub fn method(name: impl Into<String>) -> EventExpr {
        let name = name.into();
        EventExpr::before_method(name.clone()).or(EventExpr::after_method(name))
    }

    /// The object-state shorthand: a bare boolean expression `P` over the
    /// object state means `(after update | after create) && P`
    /// (Section 3.3 — "the only sort of event allowed in Ode prior to
    /// the work described in this paper").
    pub fn state(mask: MaskExpr) -> EventExpr {
        EventExpr::basic(BasicEvent::after(EventKind::Update))
            .or(EventExpr::basic(BasicEvent::after(EventKind::Create)))
            .masked(mask)
    }

    /// `self | other`.
    pub fn or(self, other: EventExpr) -> EventExpr {
        EventExpr::Or(Box::new(self), Box::new(other))
    }

    /// `self & other`.
    pub fn and(self, other: EventExpr) -> EventExpr {
        EventExpr::And(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> EventExpr {
        EventExpr::Not(Box::new(self))
    }

    /// `self && mask` (composite mask).
    pub fn masked(self, mask: MaskExpr) -> EventExpr {
        EventExpr::Masked(Box::new(self), mask)
    }

    /// `relative(list…)`.
    pub fn relative(events: impl IntoIterator<Item = EventExpr>) -> EventExpr {
        EventExpr::Relative(events.into_iter().collect())
    }

    /// `relative+ (self)`.
    pub fn relative_plus(self) -> EventExpr {
        EventExpr::RelativePlus(Box::new(self))
    }

    /// `relative n (self)`.
    pub fn relative_n(self, n: u32) -> EventExpr {
        EventExpr::RelativeN(n, Box::new(self))
    }

    /// `prior(list…)`.
    pub fn prior(events: impl IntoIterator<Item = EventExpr>) -> EventExpr {
        EventExpr::Prior(events.into_iter().collect())
    }

    /// `prior n (self)`.
    pub fn prior_n(self, n: u32) -> EventExpr {
        EventExpr::PriorN(n, Box::new(self))
    }

    /// `sequence(list…)`.
    pub fn sequence(events: impl IntoIterator<Item = EventExpr>) -> EventExpr {
        EventExpr::Sequence(events.into_iter().collect())
    }

    /// `sequence n (self)`.
    pub fn sequence_n(self, n: u32) -> EventExpr {
        EventExpr::SequenceN(n, Box::new(self))
    }

    /// `self ; other` — sugar for `sequence(self, other)`.
    pub fn then(self, other: EventExpr) -> EventExpr {
        EventExpr::Sequence(vec![self, other])
    }

    /// `choose n (self)`.
    pub fn choose(self, n: u32) -> EventExpr {
        EventExpr::Choose(n, Box::new(self))
    }

    /// `every n (self)`.
    pub fn every(self, n: u32) -> EventExpr {
        EventExpr::Every(n, Box::new(self))
    }

    /// `fa(e, f, g)`.
    pub fn fa(e: EventExpr, f: EventExpr, g: EventExpr) -> EventExpr {
        EventExpr::Fa(Box::new(e), Box::new(f), Box::new(g))
    }

    /// `faAbs(e, f, g)`.
    pub fn fa_abs(e: EventExpr, f: EventExpr, g: EventExpr) -> EventExpr {
        EventExpr::FaAbs(Box::new(e), Box::new(f), Box::new(g))
    }

    /// Validate the expression: qualifier rules on every basic event,
    /// operator arities and counts (Section 3.1 / 3.4 rules).
    pub fn validate(&self) -> Result<(), EventError> {
        self.walk(&mut |e| match e {
            EventExpr::Logical(le) => le.basic.validate(),
            EventExpr::Relative(list) | EventExpr::Prior(list) | EventExpr::Sequence(list) => {
                if list.is_empty() {
                    Err(EventError::EmptyOperands {
                        operator: match e {
                            EventExpr::Relative(_) => "relative",
                            EventExpr::Prior(_) => "prior",
                            _ => "sequence",
                        },
                    })
                } else {
                    Ok(())
                }
            }
            EventExpr::RelativeN(n, _) => check_count("relative", *n),
            EventExpr::PriorN(n, _) => check_count("prior", *n),
            EventExpr::SequenceN(n, _) => check_count("sequence", *n),
            EventExpr::Choose(n, _) => check_count("choose", *n),
            EventExpr::Every(n, _) => check_count("every", *n),
            _ => Ok(()),
        })
    }

    /// Pre-order traversal applying `f` to every node, short-circuiting
    /// on the first error.
    pub fn walk(
        &self,
        f: &mut impl FnMut(&EventExpr) -> Result<(), EventError>,
    ) -> Result<(), EventError> {
        f(self)?;
        match self {
            EventExpr::Empty | EventExpr::Logical(_) => Ok(()),
            EventExpr::Or(a, b) | EventExpr::And(a, b) => {
                a.walk(f)?;
                b.walk(f)
            }
            EventExpr::Not(a)
            | EventExpr::RelativePlus(a)
            | EventExpr::RelativeN(_, a)
            | EventExpr::PriorN(_, a)
            | EventExpr::SequenceN(_, a)
            | EventExpr::Choose(_, a)
            | EventExpr::Every(_, a)
            | EventExpr::Masked(a, _) => a.walk(f),
            EventExpr::Relative(list) | EventExpr::Prior(list) | EventExpr::Sequence(list) => {
                for e in list {
                    e.walk(f)?;
                }
                Ok(())
            }
            EventExpr::Fa(a, b, c) | EventExpr::FaAbs(a, b, c) => {
                a.walk(f)?;
                b.walk(f)?;
                c.walk(f)
            }
        }
    }

    /// Collect every distinct logical event in the expression, in
    /// first-appearance order — the trigger's alphabet of interest.
    pub fn logical_events(&self) -> Vec<LogicalEvent> {
        let mut out: Vec<LogicalEvent> = Vec::new();
        let _ = self.walk(&mut |e| {
            if let EventExpr::Logical(le) = e {
                if !out.contains(le) {
                    out.push(le.clone());
                }
            }
            Ok(())
        });
        out
    }

    /// Collect every distinct composite mask, in first-appearance order.
    pub fn composite_masks(&self) -> Vec<MaskExpr> {
        let mut out: Vec<MaskExpr> = Vec::new();
        let _ = self.walk(&mut |e| {
            if let EventExpr::Masked(_, m) = e {
                if !out.contains(m) {
                    out.push(m.clone());
                }
            }
            Ok(())
        });
        out
    }

    /// Number of AST nodes — a complexity metric for the E3 experiment.
    pub fn size(&self) -> usize {
        let mut n = 0;
        let _ = self.walk(&mut |_| {
            n += 1;
            Ok(())
        });
        n
    }
}

fn check_count(operator: &'static str, n: u32) -> Result<(), EventError> {
    if n == 0 {
        Err(EventError::InvalidCount { operator, count: n })
    } else {
        Ok(())
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: Or(1) < And(2) < Sequence-;(3) < Not/atoms.
        fn list(f: &mut fmt::Formatter<'_>, name: &str, items: &[EventExpr]) -> fmt::Result {
            write!(f, "{name}(")?;
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                go(e, f, 0)?;
            }
            write!(f, ")")
        }
        fn go(e: &EventExpr, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match e {
                EventExpr::Empty => write!(f, "empty"),
                EventExpr::Logical(le) => {
                    // A masked logical event binds tighter than event
                    // operators only inside parens.
                    if le.mask.is_some() && prec > 0 {
                        write!(f, "({le})")
                    } else {
                        write!(f, "{le}")
                    }
                }
                EventExpr::Or(a, b) => {
                    let need = prec > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " | ")?;
                    // right operand one level tighter: a right-nested Or
                    // must parenthesize so parsing (left-associative)
                    // rebuilds the same tree
                    go(b, f, 2)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                EventExpr::And(a, b) => {
                    let need = prec > 2;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 2)?;
                    write!(f, " & ")?;
                    go(b, f, 3)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                EventExpr::Not(a) => {
                    write!(f, "!")?;
                    go(a, f, 4)
                }
                EventExpr::Relative(items) => list(f, "relative", items),
                EventExpr::RelativePlus(a) => {
                    write!(f, "relative+(")?;
                    go(a, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::RelativeN(n, a) => {
                    write!(f, "relative {n} (")?;
                    go(a, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::Prior(items) => list(f, "prior", items),
                EventExpr::PriorN(n, a) => {
                    write!(f, "prior {n} (")?;
                    go(a, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::Sequence(items) => list(f, "sequence", items),
                EventExpr::SequenceN(n, a) => {
                    write!(f, "sequence {n} (")?;
                    go(a, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::Choose(n, a) => {
                    write!(f, "choose {n} (")?;
                    go(a, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::Every(n, a) => {
                    write!(f, "every {n} (")?;
                    go(a, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::Fa(a, b, c) => {
                    write!(f, "fa(")?;
                    go(a, f, 0)?;
                    write!(f, ", ")?;
                    go(b, f, 0)?;
                    write!(f, ", ")?;
                    go(c, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::FaAbs(a, b, c) => {
                    write!(f, "faAbs(")?;
                    go(a, f, 0)?;
                    write!(f, ", ")?;
                    go(b, f, 0)?;
                    write!(f, ", ")?;
                    go(c, f, 0)?;
                    write!(f, ")")
                }
                EventExpr::Masked(a, m) => {
                    // Composite masks always parenthesize the event to
                    // keep mask `&&` unambiguous with event `&`.
                    write!(f, "(")?;
                    go(a, f, 0)?;
                    write!(f, ") && {m}")
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Qualifier;

    fn after_a() -> EventExpr {
        EventExpr::after_method("a")
    }
    fn after_b() -> EventExpr {
        EventExpr::after_method("b")
    }

    #[test]
    fn builders_produce_expected_shapes() {
        let e = EventExpr::relative([after_a(), after_b()]);
        assert!(matches!(e, EventExpr::Relative(ref v) if v.len() == 2));
        let e = after_a().choose(5);
        assert!(matches!(e, EventExpr::Choose(5, _)));
    }

    #[test]
    fn method_shorthand_expands() {
        let e = EventExpr::method("deposit");
        match e {
            EventExpr::Or(a, b) => {
                assert!(matches!(
                    *a,
                    EventExpr::Logical(LogicalEvent {
                        basic: BasicEvent::Db(Qualifier::Before, EventKind::Method(ref m)),
                        ..
                    }) if m == "deposit"
                ));
                assert!(matches!(
                    *b,
                    EventExpr::Logical(LogicalEvent {
                        basic: BasicEvent::Db(Qualifier::After, EventKind::Method(ref m)),
                        ..
                    }) if m == "deposit"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_shorthand_expands() {
        let e = EventExpr::state(MaskExpr::lt("balance", 500.0));
        assert!(matches!(e, EventExpr::Masked(_, _)));
        let inner_events = e.logical_events();
        assert_eq!(inner_events.len(), 2);
    }

    #[test]
    fn validate_rejects_before_tcommit_deep_in_tree() {
        let bad = EventExpr::relative([
            after_a(),
            EventExpr::basic(BasicEvent::before(EventKind::TCommit)),
        ]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_counts() {
        assert!(after_a().choose(0).validate().is_err());
        assert!(after_a().every(0).validate().is_err());
        assert!(after_a().relative_n(0).validate().is_err());
        assert!(after_a().choose(1).validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_lists() {
        assert!(EventExpr::Relative(vec![]).validate().is_err());
        assert!(EventExpr::Prior(vec![]).validate().is_err());
        assert!(EventExpr::Sequence(vec![]).validate().is_err());
    }

    #[test]
    fn logical_events_deduplicate() {
        let e = after_a().or(after_a()).and(after_b());
        assert_eq!(e.logical_events().len(), 2);
    }

    #[test]
    fn distinct_masks_are_distinct_logical_events() {
        let a1 = EventExpr::Logical(
            LogicalEvent::bare(BasicEvent::after_method("w"))
                .with_params(["q"])
                .with_mask(MaskExpr::gt("q", 100i64)),
        );
        let a2 = EventExpr::Logical(
            LogicalEvent::bare(BasicEvent::after_method("w"))
                .with_params(["q"])
                .with_mask(MaskExpr::gt("q", 1000i64)),
        );
        let e = a1.or(a2);
        assert_eq!(e.logical_events().len(), 2);
    }

    #[test]
    fn composite_masks_collected() {
        let m = MaskExpr::lt("x", 1i64);
        let e = after_a().masked(m.clone()).or(after_b().masked(m));
        assert_eq!(e.composite_masks().len(), 1);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(
            EventExpr::relative([after_a(), after_b()]).to_string(),
            "relative(after a, after b)"
        );
        assert_eq!(after_a().choose(5).to_string(), "choose 5 (after a)");
        assert_eq!(
            EventExpr::fa(after_a(), after_b(), after_a()).to_string(),
            "fa(after a, after b, after a)"
        );
        assert_eq!(
            after_a().or(after_b()).and(after_a()).to_string(),
            "(after a | after b) & after a"
        );
        assert_eq!(after_a().not().to_string(), "!after a");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(after_a().size(), 1);
        assert_eq!(after_a().or(after_b()).size(), 3);
    }
}
