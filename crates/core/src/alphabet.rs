//! The symbol alphabet of a compiled trigger: disjoint logical events.
//!
//! Section 5 of the paper requires "that the logical events used in a
//! particular trigger definition all be disjoint so that no two logical
//! events occur simultaneously … We ensure that the masks for the basic
//! events are disjoint. If the masks are not disjoint, their Boolean
//! combinations must be disjoint, and we define new logical events using
//! these Boolean combinations."
//!
//! This module performs that rewrite mechanically:
//!
//! * Basic events are grouped; a group carrying `k` distinct masks
//!   expands into `2^k` **minterm symbols** (one per Boolean combination
//!   of mask outcomes). A logical event `basic && mᵢ` denotes the set of
//!   minterms whose `i`-th bit is set; a bare `basic` denotes all of
//!   them.
//! * **Composite masks** (`(E) && C`, Section 3.3) are evaluated against
//!   the current database state at *every* posted point, so each distinct
//!   composite mask contributes one further bit to *every* symbol. The
//!   event `E && C` then compiles to `E ∩ Σ*·{symbols with the C bit}`.
//! * The distinguished `start` point (Section 3.4) owns raw symbol 0.
//!
//! At run time, [`Alphabet::classify`] turns one posted basic event into
//! exactly one symbol by evaluating each relevant mask once — this is the
//! entire per-event cost of mask handling, measured by experiment E4.

use std::collections::HashMap;

use ode_automata::Symbol;

use crate::error::{EventError, MaskError};
use crate::event::BasicEvent;
use crate::expr::{EventExpr, LogicalEvent};
use crate::mask::{MaskEnv, MaskExpr};
use crate::value::Value;

/// Maximum distinct masks on one basic event (`2^k` minterms).
pub const MAX_GROUP_MASKS: usize = 10;
/// Maximum distinct composite masks (each doubles the alphabet).
pub const MAX_GLOBAL_MASKS: usize = 8;
/// Maximum total alphabet size.
pub const MAX_ALPHABET: usize = 1 << 14;

/// One basic event together with the distinct masks applied to it; each
/// mask keeps the parameter names its logical event declared (arguments
/// are bound positionally at classification time).
#[derive(Clone, Debug)]
pub struct Group {
    /// The basic event.
    pub basic: BasicEvent,
    /// Distinct `(declared-params, mask)` pairs.
    pub masks: Vec<(Vec<String>, MaskExpr)>,
    /// First raw symbol of this group's `2^k` minterm block.
    base: usize,
}

impl Group {
    /// Number of minterm symbols in this group.
    pub fn width(&self) -> usize {
        1 << self.masks.len()
    }

    /// First raw symbol of this group's minterm block (before the
    /// global-mask refinement shifts it left). Exposed so the class-level
    /// router can rebuild symbols without re-hashing the basic event.
    pub fn base_symbol(&self) -> usize {
        self.base
    }
}

/// The compiled alphabet of one trigger.
#[derive(Clone, Debug)]
pub struct Alphabet {
    groups: Vec<Group>,
    group_index: HashMap<BasicEvent, usize>,
    global_masks: Vec<MaskExpr>,
    /// `1 (start) + Σ 2^kᵢ` raw symbols before global-mask refinement.
    raw_count: usize,
}

impl Alphabet {
    /// Build the alphabet for an event expression: collect its logical
    /// events, group by basic event, gather distinct masks per group and
    /// distinct composite masks globally.
    pub fn build(expr: &EventExpr) -> Result<Alphabet, EventError> {
        Self::build_from_parts(&expr.logical_events(), &expr.composite_masks())
    }

    /// Build from explicit parts (used when one automaton must serve an
    /// alphabet wider than a single expression).
    pub fn build_from_parts(
        logical: &[LogicalEvent],
        composite_masks: &[MaskExpr],
    ) -> Result<Alphabet, EventError> {
        let mut groups: Vec<Group> = Vec::new();
        let mut group_index: HashMap<BasicEvent, usize> = HashMap::new();
        for le in logical {
            let gi = *group_index.entry(le.basic.clone()).or_insert_with(|| {
                groups.push(Group {
                    basic: le.basic.clone(),
                    masks: Vec::new(),
                    base: 0,
                });
                groups.len() - 1
            });
            if let Some(mask) = &le.mask {
                let key = (le.params.clone(), mask.clone());
                if !groups[gi].masks.contains(&key) {
                    groups[gi].masks.push(key);
                }
            }
        }
        for g in &groups {
            if g.masks.len() > MAX_GROUP_MASKS {
                return Err(EventError::TooManyMasks {
                    event: g.basic.to_string(),
                    masks: g.masks.len(),
                    max: MAX_GROUP_MASKS,
                });
            }
        }
        let mut global_masks: Vec<MaskExpr> = Vec::new();
        for m in composite_masks {
            if !global_masks.contains(m) {
                global_masks.push(m.clone());
            }
        }
        if global_masks.len() > MAX_GLOBAL_MASKS {
            return Err(EventError::TooManyMasks {
                event: "(composite)".into(),
                masks: global_masks.len(),
                max: MAX_GLOBAL_MASKS,
            });
        }

        // Assign raw symbol bases: 0 = start, then each group's block.
        let mut next = 1usize;
        for g in &mut groups {
            g.base = next;
            next += g.width();
        }
        let alphabet = Alphabet {
            groups,
            group_index,
            global_masks,
            raw_count: next,
        };
        if alphabet.len() > MAX_ALPHABET {
            return Err(EventError::AlphabetTooLarge {
                size: alphabet.len(),
                max: MAX_ALPHABET,
            });
        }
        Ok(alphabet)
    }

    /// Total number of symbols: `raw_count × 2^globals`.
    pub fn len(&self) -> usize {
        self.raw_count << self.global_masks.len()
    }

    /// Whether the alphabet is the trivial start-only alphabet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The groups (basic events with their mask blocks).
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Position of the group owning `basic`, if the event is in the
    /// alphabet (one hash lookup — the index the router's dense
    /// per-trigger capture slots are keyed by).
    pub fn group_position(&self, basic: &BasicEvent) -> Option<usize> {
        self.group_index.get(basic).copied()
    }

    /// The composite masks refining every symbol.
    pub fn global_masks(&self) -> &[MaskExpr] {
        &self.global_masks
    }

    fn finalize(&self, raw: usize, global_bits: usize) -> Symbol {
        ((raw << self.global_masks.len()) | global_bits) as Symbol
    }

    /// All final symbols for a given raw symbol (any global-bit pattern).
    fn all_globals(&self, raw: usize) -> Vec<Symbol> {
        (0..(1usize << self.global_masks.len()))
            .map(|bits| self.finalize(raw, bits))
            .collect()
    }

    /// The symbols denoted by a logical event: its group's minterms
    /// (restricted to those where its own mask bit is set), with any
    /// global-bit pattern. Returns an empty set if the basic event is not
    /// in the alphabet (can only happen when compiling against a wider
    /// alphabet built from other parts).
    pub fn symbols_for_logical(&self, le: &LogicalEvent) -> Vec<Symbol> {
        let Some(&gi) = self.group_index.get(&le.basic) else {
            return Vec::new();
        };
        let g = &self.groups[gi];
        let bit = le.mask.as_ref().map(|m| {
            let key = (le.params.clone(), m.clone());
            g.masks
                .iter()
                .position(|k| *k == key)
                .expect("logical event mask not registered in its group")
        });
        let mut out = Vec::new();
        for minterm in 0..g.width() {
            if let Some(b) = bit {
                if minterm & (1 << b) == 0 {
                    continue;
                }
            }
            out.extend(self.all_globals(g.base + minterm));
        }
        out
    }

    /// The symbols carrying a given composite-mask bit (used to compile
    /// `E && C` into an intersection).
    pub fn symbols_for_composite_mask(&self, mask: &MaskExpr) -> Vec<Symbol> {
        let Some(bit) = self.global_masks.iter().position(|m| m == mask) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for raw in 0..self.raw_count {
            for bits in 0..(1usize << self.global_masks.len()) {
                if bits & (1 << bit) != 0 {
                    out.push(self.finalize(raw, bits));
                }
            }
        }
        out
    }

    /// Classify a posted basic event into a symbol, or `None` when the
    /// event is invisible to this trigger ("for each active trigger for
    /// which a logical event has occurred, we move the automaton to the
    /// next state" — Section 5: other events do not advance it).
    ///
    /// `args` are the positional arguments of a method event; `env`
    /// supplies object fields and registered functions. Each group mask
    /// is evaluated once with its own declared parameter names bound to
    /// `args`; each composite mask is evaluated once with *no*
    /// parameters.
    pub fn classify(
        &self,
        basic: &BasicEvent,
        args: &[Value],
        env: &dyn MaskEnv,
    ) -> Result<Option<Symbol>, MaskError> {
        let raw = match basic {
            BasicEvent::Start => 0,
            _ => {
                let Some(&gi) = self.group_index.get(basic) else {
                    return Ok(None);
                };
                let g = &self.groups[gi];
                let mut minterm = 0usize;
                for (i, (params, mask)) in g.masks.iter().enumerate() {
                    let bound = BoundEnv {
                        names: params,
                        args,
                        inner: env,
                    };
                    if mask.eval_bool(&bound)? {
                        minterm |= 1 << i;
                    }
                }
                g.base + minterm
            }
        };
        let mut global_bits = 0usize;
        for (i, mask) in self.global_masks.iter().enumerate() {
            let bound = BoundEnv {
                names: &[],
                args: &[],
                inner: env,
            };
            if mask.eval_bool(&bound)? {
                global_bits |= 1 << i;
            }
        }
        Ok(Some(self.finalize(raw, global_bits)))
    }

    /// The symbol of the distinguished `start` point, with composite
    /// masks evaluated at activation time.
    pub fn start_symbol(&self, env: &dyn MaskEnv) -> Result<Symbol, MaskError> {
        Ok(self
            .classify(&BasicEvent::Start, &[], env)?
            .expect("start is always classifiable"))
    }

    /// Human-readable description of a symbol (debugging, DOT export).
    pub fn describe(&self, sym: Symbol) -> String {
        let g = self.global_masks.len();
        let raw = (sym as usize) >> g;
        let bits = (sym as usize) & ((1 << g) - 1);
        let mut s = if raw == 0 {
            "start".to_string()
        } else {
            match self
                .groups
                .iter()
                .find(|grp| raw >= grp.base && raw < grp.base + grp.width())
            {
                Some(grp) => {
                    let minterm = raw - grp.base;
                    let mut s = grp.basic.to_string();
                    for (i, (_, m)) in grp.masks.iter().enumerate() {
                        if minterm & (1 << i) != 0 {
                            s.push_str(&format!(" && {m}"));
                        } else {
                            s.push_str(&format!(" && !({m})"));
                        }
                    }
                    s
                }
                None => format!("raw{raw}"),
            }
        };
        for (i, m) in self.global_masks.iter().enumerate() {
            if bits & (1 << i) != 0 {
                s.push_str(&format!(" [{m}]"));
            } else {
                s.push_str(&format!(" [!({m})]"));
            }
        }
        s
    }
}

/// Environment layering positional arguments under declared names on top
/// of the engine's field/function environment. Shared with the router so
/// memoized mask evaluation binds parameters exactly the way
/// [`Alphabet::classify`] does.
pub(crate) struct BoundEnv<'a> {
    pub(crate) names: &'a [String],
    pub(crate) args: &'a [Value],
    pub(crate) inner: &'a dyn MaskEnv,
}

impl MaskEnv for BoundEnv<'_> {
    fn param(&self, name: &str) -> Option<Value> {
        self.names
            .iter()
            .position(|n| n == name)
            .and_then(|i| self.args.get(i).cloned())
    }
    fn field(&self, name: &str) -> Option<Value> {
        self.inner.field(name)
    }
    fn call(&self, name: &str, args: &[Value]) -> Option<Value> {
        self.inner.call(name, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::mask::EmptyEnv;

    fn withdraw_gt(n: i64) -> LogicalEvent {
        LogicalEvent::bare(BasicEvent::after_method("withdraw"))
            .with_params(["i", "q"])
            .with_mask(MaskExpr::gt("q", n))
    }

    struct FieldEnv(f64);
    impl MaskEnv for FieldEnv {
        fn param(&self, _: &str) -> Option<Value> {
            None
        }
        fn field(&self, name: &str) -> Option<Value> {
            (name == "balance").then_some(Value::Float(self.0))
        }
        fn call(&self, _: &str, _: &[Value]) -> Option<Value> {
            None
        }
    }

    #[test]
    fn unmasked_event_has_one_symbol() {
        let e = EventExpr::after_method("deposit");
        let a = Alphabet::build(&e).unwrap();
        assert_eq!(a.len(), 2); // start + deposit
        let syms = a.symbols_for_logical(&LogicalEvent::bare(BasicEvent::after_method("deposit")));
        assert_eq!(syms.len(), 1);
    }

    #[test]
    fn two_masks_make_four_minterms() {
        // after withdraw && q>100  |  after withdraw && q>1000
        let e = EventExpr::Logical(withdraw_gt(100)).or(EventExpr::Logical(withdraw_gt(1000)));
        let a = Alphabet::build(&e).unwrap();
        assert_eq!(a.len(), 1 + 4); // start + 2^2 minterms
        let s100 = a.symbols_for_logical(&withdraw_gt(100));
        let s1000 = a.symbols_for_logical(&withdraw_gt(1000));
        assert_eq!(s100.len(), 2); // minterms with bit0 set
        assert_eq!(s1000.len(), 2); // minterms with bit1 set
                                    // exactly one shared minterm (both masks true)
        let shared: Vec<_> = s100.iter().filter(|s| s1000.contains(s)).collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn bare_and_masked_coexist() {
        let bare = LogicalEvent::bare(BasicEvent::after_method("withdraw"));
        let e = EventExpr::Logical(bare.clone()).or(EventExpr::Logical(withdraw_gt(100)));
        let a = Alphabet::build(&e).unwrap();
        assert_eq!(a.len(), 3); // start + 2 minterms
        assert_eq!(a.symbols_for_logical(&bare).len(), 2); // both minterms
        assert_eq!(a.symbols_for_logical(&withdraw_gt(100)).len(), 1);
    }

    #[test]
    fn classification_picks_minterm_by_mask_truth() {
        let e = EventExpr::Logical(withdraw_gt(100)).or(EventExpr::Logical(withdraw_gt(1000)));
        let a = Alphabet::build(&e).unwrap();
        let big = a
            .classify(
                &BasicEvent::after_method("withdraw"),
                &[Value::Null, Value::Int(5000)],
                &EmptyEnv,
            )
            .unwrap()
            .unwrap();
        // q=5000: both masks true → in both logical events' symbol sets
        assert!(a.symbols_for_logical(&withdraw_gt(100)).contains(&big));
        assert!(a.symbols_for_logical(&withdraw_gt(1000)).contains(&big));
        let mid = a
            .classify(
                &BasicEvent::after_method("withdraw"),
                &[Value::Null, Value::Int(500)],
                &EmptyEnv,
            )
            .unwrap()
            .unwrap();
        assert!(a.symbols_for_logical(&withdraw_gt(100)).contains(&mid));
        assert!(!a.symbols_for_logical(&withdraw_gt(1000)).contains(&mid));
        assert_ne!(big, mid);
    }

    #[test]
    fn irrelevant_events_are_invisible() {
        let e = EventExpr::after_method("deposit");
        let a = Alphabet::build(&e).unwrap();
        let r = a
            .classify(&BasicEvent::after_method("withdraw"), &[], &EmptyEnv)
            .unwrap();
        assert_eq!(r, None);
        let r = a
            .classify(&BasicEvent::after(EventKind::TCommit), &[], &EmptyEnv)
            .unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn composite_masks_double_the_alphabet() {
        let e = EventExpr::after_method("deposit").masked(MaskExpr::lt("balance", 500.0));
        let a = Alphabet::build(&e).unwrap();
        assert_eq!(a.len(), 4); // (start + deposit) × 2
        let low = a
            .classify(&BasicEvent::after_method("deposit"), &[], &FieldEnv(400.0))
            .unwrap()
            .unwrap();
        let high = a
            .classify(&BasicEvent::after_method("deposit"), &[], &FieldEnv(600.0))
            .unwrap()
            .unwrap();
        assert_ne!(low, high);
        let with_bit = a.symbols_for_composite_mask(&MaskExpr::lt("balance", 500.0));
        assert!(with_bit.contains(&low));
        assert!(!with_bit.contains(&high));
    }

    #[test]
    fn start_symbol_carries_global_bits() {
        let e = EventExpr::after_method("deposit").masked(MaskExpr::lt("balance", 500.0));
        let a = Alphabet::build(&e).unwrap();
        let s_low = a.start_symbol(&FieldEnv(100.0)).unwrap();
        let s_high = a.start_symbol(&FieldEnv(900.0)).unwrap();
        assert_ne!(s_low, s_high);
    }

    #[test]
    fn mask_evaluation_error_propagates() {
        let e = EventExpr::Logical(withdraw_gt(100));
        let a = Alphabet::build(&e).unwrap();
        // no args bound → unknown param error
        let r = a.classify(&BasicEvent::after_method("withdraw"), &[], &EmptyEnv);
        assert!(r.is_err());
    }

    #[test]
    fn too_many_global_masks_rejected() {
        let mut e = EventExpr::after_method("a");
        for i in 0..(MAX_GLOBAL_MASKS + 1) {
            e = e.masked(MaskExpr::gt("x", i as i64));
        }
        assert!(matches!(
            Alphabet::build(&e),
            Err(EventError::TooManyMasks { .. })
        ));
    }

    #[test]
    fn describe_names_minterms() {
        let e = EventExpr::Logical(withdraw_gt(100));
        let a = Alphabet::build(&e).unwrap();
        let syms = a.symbols_for_logical(&withdraw_gt(100));
        let d = a.describe(syms[0]);
        assert!(d.contains("withdraw"), "{d}");
        assert!(d.contains("q > 100"), "{d}");
        assert!(a
            .describe(a.start_symbol(&EmptyEnv).unwrap())
            .contains("start"));
    }
}
