//! Masks — the predicates that refine basic events into logical events.
//!
//! > "A *mask* is a predicate that is used to hide or 'mask' the
//! > occurrence of an event." (Section 3.2)
//!
//! A mask may reference:
//!
//! * the **parameters** of the basic event it guards
//!   (`after withdraw(i, q) && q > 1000`),
//! * the **state of the object** the event was posted to, evaluated *as
//!   of the time the basic event occurred*
//!   (`i.balance < reorder(i)` in trigger T2),
//! * registered **functions** standing in for O++ member functions used
//!   inside predicates (`authorized(user())` in trigger T1).
//!
//! Masks applied to *composite* events take no parameters and see only
//! the current database state (Section 3.3); the same AST is used, and
//! the compiler enforces the no-parameters rule.

use std::fmt;

use crate::error::MaskError;
use crate::value::Value;

/// Binary operators available in mask expressions.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (inside masks; the event-level `&&` is handled by the
    /// expression grammar)
    And,
    /// `||`
    Or,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }
}

/// Unary operators.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// A mask expression AST.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MaskExpr {
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal (bit pattern ordered/hased for structural identity).
    Float(FloatBits),
    /// String literal.
    Str(String),
    /// A name — resolved at evaluation time: event parameter first, then
    /// object field.
    Name(String),
    /// Member access `expr.member` (record field).
    Member(Box<MaskExpr>, String),
    /// Function call `f(args…)` — resolved against the environment's
    /// registered functions.
    Call(String, Vec<MaskExpr>),
    /// Unary operation.
    Unary(UnOp, Box<MaskExpr>),
    /// Binary operation.
    Binary(BinOp, Box<MaskExpr>, Box<MaskExpr>),
}

/// An `f64` wrapper giving structural `Eq`/`Hash` via the bit pattern, so
/// mask expressions can key minterm tables.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FloatBits(pub u64);

impl FloatBits {
    /// Wrap a float.
    pub fn from_f64(f: f64) -> Self {
        FloatBits(f.to_bits())
    }
    /// Unwrap.
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// The environment a mask evaluates in: event parameters, object fields,
/// and registered functions. The `ode-db` engine implements this over
/// its object store; tests use simple map-backed fakes.
pub trait MaskEnv {
    /// Look up an event parameter by name.
    fn param(&self, name: &str) -> Option<Value>;
    /// Look up a field of the object the event was posted to.
    fn field(&self, name: &str) -> Option<Value>;
    /// Invoke a registered (side-effect-free) function.
    fn call(&self, name: &str, args: &[Value]) -> Option<Value>;
}

/// An empty environment: no parameters, fields, or functions.
pub struct EmptyEnv;

impl MaskEnv for EmptyEnv {
    fn param(&self, _: &str) -> Option<Value> {
        None
    }
    fn field(&self, _: &str) -> Option<Value> {
        None
    }
    fn call(&self, _: &str, _: &[Value]) -> Option<Value> {
        None
    }
}

impl From<bool> for MaskExpr {
    fn from(b: bool) -> Self {
        MaskExpr::Bool(b)
    }
}

impl From<i64> for MaskExpr {
    fn from(i: i64) -> Self {
        MaskExpr::Int(i)
    }
}

impl From<i32> for MaskExpr {
    fn from(i: i32) -> Self {
        MaskExpr::Int(i as i64)
    }
}

impl From<f64> for MaskExpr {
    fn from(f: f64) -> Self {
        MaskExpr::Float(FloatBits::from_f64(f))
    }
}

impl From<&str> for MaskExpr {
    fn from(s: &str) -> Self {
        MaskExpr::Str(s.to_string())
    }
}

impl From<String> for MaskExpr {
    fn from(s: String) -> Self {
        MaskExpr::Str(s)
    }
}

impl MaskExpr {
    /// Convenience: `Name` reference.
    pub fn name(n: impl Into<String>) -> MaskExpr {
        MaskExpr::Name(n.into())
    }

    /// Convenience: comparison builder.
    pub fn cmp(op: BinOp, lhs: MaskExpr, rhs: MaskExpr) -> MaskExpr {
        MaskExpr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: `name > value`.
    pub fn gt(name: impl Into<String>, v: impl Into<MaskExpr>) -> MaskExpr {
        MaskExpr::cmp(BinOp::Gt, MaskExpr::name(name), v.into())
    }

    /// Convenience: `name < value`.
    pub fn lt(name: impl Into<String>, v: impl Into<MaskExpr>) -> MaskExpr {
        MaskExpr::cmp(BinOp::Lt, MaskExpr::name(name), v.into())
    }

    /// Convenience: literal from a [`Value`]. Only scalar values have a
    /// literal form in the mask grammar; `null` and records are rejected
    /// with [`MaskError::UnsupportedLiteral`].
    pub fn lit(v: impl Into<Value>) -> Result<MaskExpr, MaskError> {
        match v.into() {
            Value::Bool(b) => Ok(MaskExpr::Bool(b)),
            Value::Int(i) => Ok(MaskExpr::Int(i)),
            Value::Float(f) => Ok(MaskExpr::Float(FloatBits::from_f64(f))),
            Value::Str(s) => Ok(MaskExpr::Str(s)),
            other => Err(MaskError::UnsupportedLiteral {
                got: other.type_name(),
            }),
        }
    }

    /// Evaluate to a [`Value`].
    pub fn eval(&self, env: &dyn MaskEnv) -> Result<Value, MaskError> {
        match self {
            MaskExpr::Bool(b) => Ok(Value::Bool(*b)),
            MaskExpr::Int(i) => Ok(Value::Int(*i)),
            MaskExpr::Float(f) => Ok(Value::Float(f.as_f64())),
            MaskExpr::Str(s) => Ok(Value::Str(s.clone())),
            MaskExpr::Name(n) => env
                .param(n)
                .or_else(|| env.field(n))
                .ok_or_else(|| MaskError::UnknownField(n.clone())),
            MaskExpr::Member(e, m) => {
                let v = e.eval(env)?;
                v.member(m).cloned().ok_or_else(|| MaskError::NotARecord {
                    member: m.clone(),
                    got: v.type_name(),
                })
            }
            MaskExpr::Call(f, args) => {
                let vals: Vec<Value> =
                    args.iter().map(|a| a.eval(env)).collect::<Result<_, _>>()?;
                env.call(f, &vals)
                    .ok_or_else(|| MaskError::UnknownFunction(f.clone()))
            }
            MaskExpr::Unary(op, e) => {
                let v = e.eval(env)?;
                match op {
                    UnOp::Not => v
                        .as_bool()
                        .map(|b| Value::Bool(!b))
                        .ok_or(MaskError::NotBoolean { got: v.type_name() }),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(MaskError::TypeMismatch {
                            op: "-".into(),
                            types: other.type_name().into(),
                        }),
                    },
                }
            }
            MaskExpr::Binary(op, a, b) => {
                // Short-circuit logical operators.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let la = a.eval(env)?;
                    let la = la.as_bool().ok_or(MaskError::NotBoolean {
                        got: la.type_name(),
                    })?;
                    return match (op, la) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let lb = b.eval(env)?;
                            lb.as_bool().map(Value::Bool).ok_or(MaskError::NotBoolean {
                                got: lb.type_name(),
                            })
                        }
                    };
                }
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                eval_binary(*op, &va, &vb)
            }
        }
    }

    /// Evaluate as a boolean (the only legal top-level mask type).
    pub fn eval_bool(&self, env: &dyn MaskEnv) -> Result<bool, MaskError> {
        let v = self.eval(env)?;
        v.as_bool()
            .ok_or(MaskError::NotBoolean { got: v.type_name() })
    }
}

fn eval_binary(op: BinOp, a: &Value, b: &Value) -> Result<Value, MaskError> {
    use BinOp::*;
    let mismatch = || MaskError::TypeMismatch {
        op: op.symbol().into(),
        types: format!("{} and {}", a.type_name(), b.type_name()),
    };
    match op {
        Add | Sub | Mul | Div => match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Add => Ok(Value::Int(x.wrapping_add(*y))),
                Sub => Ok(Value::Int(x.wrapping_sub(*y))),
                Mul => Ok(Value::Int(x.wrapping_mul(*y))),
                Div => {
                    if *y == 0 {
                        Err(MaskError::DivisionByZero)
                    } else {
                        Ok(Value::Int(x / y))
                    }
                }
                _ => unreachable!(),
            },
            _ => {
                let (x, y) = (
                    a.as_float().ok_or_else(mismatch)?,
                    b.as_float().ok_or_else(mismatch)?,
                );
                Ok(Value::Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                }))
            }
        },
        Lt | Le | Gt | Ge => {
            // Numeric comparison with int→float coercion; strings compare
            // lexicographically.
            let r = match (a, b) {
                (Value::Str(x), Value::Str(y)) => x.cmp(y),
                _ => {
                    let (x, y) = (
                        a.as_float().ok_or_else(mismatch)?,
                        b.as_float().ok_or_else(mismatch)?,
                    );
                    x.partial_cmp(&y).ok_or_else(mismatch)?
                }
            };
            Ok(Value::Bool(match op {
                Lt => r.is_lt(),
                Le => r.is_le(),
                Gt => r.is_gt(),
                Ge => r.is_ge(),
                _ => unreachable!(),
            }))
        }
        Eq | Ne => {
            let equal = match (a, b) {
                (Value::Int(x), Value::Float(_)) => Some(*x as f64) == b.as_float(),
                (Value::Float(_), Value::Int(y)) => a.as_float() == Some(*y as f64),
                _ => a == b,
            };
            Ok(Value::Bool(if op == Eq { equal } else { !equal }))
        }
        And | Or => unreachable!("handled by short-circuit path"),
    }
}

impl fmt::Display for MaskExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &MaskExpr, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match e {
                MaskExpr::Bool(b) => write!(f, "{b}"),
                MaskExpr::Int(i) => write!(f, "{i}"),
                MaskExpr::Float(x) => {
                    let v = x.as_f64();
                    if v.fract() == 0.0 && v.is_finite() {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                }
                MaskExpr::Str(s) => write!(f, "{s:?}"),
                MaskExpr::Name(n) => write!(f, "{n}"),
                MaskExpr::Member(e, m) => {
                    go(e, f, 10)?;
                    write!(f, ".{m}")
                }
                MaskExpr::Call(name, args) => {
                    write!(f, "{name}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        go(a, f, 0)?;
                    }
                    write!(f, ")")
                }
                MaskExpr::Unary(op, e) => {
                    write!(f, "{}", if *op == UnOp::Not { "!" } else { "-" })?;
                    go(e, f, 9)
                }
                MaskExpr::Binary(op, a, b) => {
                    let p = op.precedence();
                    let need = p < prec;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, p)?;
                    write!(f, " {} ", op.symbol())?;
                    go(b, f, p + 1)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;
    use std::collections::HashMap;

    /// Map-backed environment for tests.
    #[derive(Default)]
    pub struct MapEnv {
        pub params: HashMap<String, Value>,
        pub fields: HashMap<String, Value>,
    }

    impl MapEnv {
        pub fn with_param(mut self, k: &str, v: impl Into<Value>) -> Self {
            self.params.insert(k.into(), v.into());
            self
        }
        pub fn with_field(mut self, k: &str, v: impl Into<Value>) -> Self {
            self.fields.insert(k.into(), v.into());
            self
        }
    }

    impl MaskEnv for MapEnv {
        fn param(&self, name: &str) -> Option<Value> {
            self.params.get(name).cloned()
        }
        fn field(&self, name: &str) -> Option<Value> {
            self.fields.get(name).cloned()
        }
        fn call(&self, name: &str, args: &[Value]) -> Option<Value> {
            match name {
                // "doubles its argument" — used by tests
                "double" => args.first()?.as_int().map(|i| Value::Int(i * 2)),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_env::MapEnv;
    use super::*;

    #[test]
    fn large_withdrawal_mask() {
        // after withdraw(i, q) && q > 1000   (paper, Section 3.2)
        let mask = MaskExpr::gt("q", 1000i64);
        let env = MapEnv::default().with_param("q", 1500i64);
        assert!(mask.eval_bool(&env).unwrap());
        let env = MapEnv::default().with_param("q", 1000i64);
        assert!(!mask.eval_bool(&env).unwrap());
    }

    #[test]
    fn object_state_mask() {
        // balance < 500.00   (paper, Section 3.3)
        let mask = MaskExpr::lt("balance", 500.0);
        let env = MapEnv::default().with_field("balance", 499.5);
        assert!(mask.eval_bool(&env).unwrap());
    }

    #[test]
    fn params_shadow_fields() {
        let mask = MaskExpr::gt("x", 0i64);
        let env = MapEnv::default()
            .with_param("x", 5i64)
            .with_field("x", -5i64);
        assert!(mask.eval_bool(&env).unwrap());
    }

    #[test]
    fn member_access_on_record_param() {
        // i.balance < 50   (trigger T2 shape)
        let mask = MaskExpr::cmp(
            BinOp::Lt,
            MaskExpr::Member(Box::new(MaskExpr::name("i")), "balance".into()),
            MaskExpr::Int(50),
        );
        let env = MapEnv::default().with_param("i", Value::record([("balance", Value::Int(40))]));
        assert!(mask.eval_bool(&env).unwrap());
    }

    #[test]
    fn member_access_on_scalar_fails() {
        let mask = MaskExpr::Member(Box::new(MaskExpr::Int(3)), "x".into());
        assert!(matches!(
            mask.eval(&EmptyEnv),
            Err(MaskError::NotARecord { .. })
        ));
    }

    #[test]
    fn function_calls_resolve() {
        let mask = MaskExpr::cmp(
            BinOp::Eq,
            MaskExpr::Call("double".into(), vec![MaskExpr::Int(21)]),
            MaskExpr::Int(42),
        );
        assert!(mask.eval_bool(&MapEnv::default()).unwrap());
    }

    #[test]
    fn unknown_function_errors() {
        let mask = MaskExpr::Call("nope".into(), vec![]);
        assert_eq!(
            mask.eval(&EmptyEnv),
            Err(MaskError::UnknownFunction("nope".into()))
        );
    }

    #[test]
    fn short_circuit_and() {
        // false && <error> must not evaluate the error side.
        let mask = MaskExpr::cmp(
            BinOp::And,
            MaskExpr::Bool(false),
            MaskExpr::Call("nope".into(), vec![]),
        );
        assert!(!mask.eval_bool(&EmptyEnv).unwrap());
    }

    #[test]
    fn short_circuit_or() {
        let mask = MaskExpr::cmp(
            BinOp::Or,
            MaskExpr::Bool(true),
            MaskExpr::Call("nope".into(), vec![]),
        );
        assert!(mask.eval_bool(&EmptyEnv).unwrap());
    }

    #[test]
    fn arithmetic_and_mixed_comparison() {
        // (q + 10) * 2 >= 40.0 with q = 10
        let mask = MaskExpr::cmp(
            BinOp::Ge,
            MaskExpr::cmp(
                BinOp::Mul,
                MaskExpr::cmp(BinOp::Add, MaskExpr::name("q"), MaskExpr::Int(10)),
                MaskExpr::Int(2),
            ),
            MaskExpr::Float(FloatBits::from_f64(40.0)),
        );
        let env = MapEnv::default().with_param("q", 10i64);
        assert!(mask.eval_bool(&env).unwrap());
    }

    #[test]
    fn division_by_zero_reported() {
        let mask = MaskExpr::cmp(BinOp::Div, MaskExpr::Int(1), MaskExpr::Int(0));
        assert_eq!(mask.eval(&EmptyEnv), Err(MaskError::DivisionByZero));
    }

    #[test]
    fn eq_coerces_numerics() {
        let m = MaskExpr::cmp(BinOp::Eq, MaskExpr::Int(2), MaskExpr::lit(2.0).unwrap());
        assert!(m.eval_bool(&EmptyEnv).unwrap());
        let m = MaskExpr::cmp(BinOp::Ne, MaskExpr::Int(2), MaskExpr::lit(2.5).unwrap());
        assert!(m.eval_bool(&EmptyEnv).unwrap());
    }

    #[test]
    fn string_comparison() {
        let m = MaskExpr::cmp(
            BinOp::Lt,
            MaskExpr::Str("abc".into()),
            MaskExpr::Str("abd".into()),
        );
        assert!(m.eval_bool(&EmptyEnv).unwrap());
    }

    #[test]
    fn non_boolean_mask_rejected() {
        let m = MaskExpr::Int(7);
        assert!(matches!(
            m.eval_bool(&EmptyEnv),
            Err(MaskError::NotBoolean { got: "int" })
        ));
    }

    #[test]
    fn lit_accepts_scalars() {
        assert_eq!(MaskExpr::lit(true).unwrap(), MaskExpr::Bool(true));
        assert_eq!(MaskExpr::lit(7i64).unwrap(), MaskExpr::Int(7));
        assert_eq!(MaskExpr::lit("x").unwrap(), MaskExpr::Str("x".into()));
    }

    #[test]
    fn lit_rejects_null_and_records() {
        assert_eq!(
            MaskExpr::lit(Value::Null),
            Err(MaskError::UnsupportedLiteral { got: "null" })
        );
        let r = MaskExpr::lit(Value::record([("balance", Value::Int(1))]));
        assert_eq!(r, Err(MaskError::UnsupportedLiteral { got: "record" }));
    }

    #[test]
    fn display_round_trip_shapes() {
        let mask = MaskExpr::cmp(
            BinOp::And,
            MaskExpr::gt("q", 100i64),
            MaskExpr::Unary(UnOp::Not, Box::new(MaskExpr::name("frozen"))),
        );
        assert_eq!(mask.to_string(), "q > 100 && !frozen");
    }

    #[test]
    fn display_parenthesizes_by_precedence() {
        // (a || b) && c needs parens around the ||
        let mask = MaskExpr::cmp(
            BinOp::And,
            MaskExpr::cmp(BinOp::Or, MaskExpr::name("a"), MaskExpr::name("b")),
            MaskExpr::name("c"),
        );
        assert_eq!(mask.to_string(), "(a || b) && c");
    }
}
