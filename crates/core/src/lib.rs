//! # ode-core — composite trigger events for an active OODB
//!
//! A faithful reproduction of the event-specification model of
//! **Gehani, Jagadish & Shmueli, "Event Specification in an Active
//! Object-Oriented Database" (SIGMOD 1992)**: basic events, masks,
//! composite-event operators, the formal point-set semantics of
//! Section 4, and the Section 5 compilation into finite automata with
//! one word of monitoring state per active trigger per object.
//!
//! ## Pipeline
//!
//! ```text
//! "fa(after tbegin, …)"        — §3.3 surface syntax
//!        │ parser
//!        ▼
//! EventExpr                    — §3.3 algebra (expr)
//!        │ Alphabet::build     — §5 mask-minterm disjointness rewrite
//!        ▼
//! SymExpr over Σ               — §4 core form (lower)
//!        │ compile             — occurrence-language constructions
//!        ▼
//! minimal DFA                  — shared per trigger definition
//!        │ Detector            — one u32 per object-trigger
//!        ▼
//! post(basic event) → occurred?
//! ```
//!
//! The reference semantics ([`semantics::occurrences`]) evaluates the
//! Section 4 denotation directly and is property-tested against the DFA
//! pipeline.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use ode_core::{parse_event, CompiledEvent, Detector, BasicEvent, EmptyEnv};
//!
//! // Trigger T8 of the paper: print the log when a deposit is
//! // immediately followed by a withdrawal.
//! let expr = parse_event(
//!     "after deposit; before withdraw; after withdraw",
//! ).unwrap();
//! let compiled = Arc::new(CompiledEvent::compile(&expr).unwrap());
//!
//! let mut monitor = Detector::new(Arc::clone(&compiled));
//! monitor.activate(&EmptyEnv).unwrap();
//! assert!(!monitor.post(&BasicEvent::after_method("deposit"), &[], &EmptyEnv).unwrap());
//! assert!(!monitor.post(&BasicEvent::before_method("withdraw"), &[], &EmptyEnv).unwrap());
//! assert!(monitor.post(&BasicEvent::after_method("withdraw"), &[], &EmptyEnv).unwrap());
//! ```

#![warn(missing_docs)]

pub mod alphabet;
pub mod combined;
pub mod compile;
pub mod detector;
pub mod diagnostics;
pub mod error;
pub mod event;
pub mod expr;
pub mod lower;
pub mod mask;
pub mod parser;
pub mod router;
pub mod semantics;
pub mod simplify;
pub mod value;

pub use alphabet::Alphabet;
pub use combined::{CombinedDetector, CombinedEvent};
pub use detector::{CompileStats, CompiledEvent, Detector};
pub use diagnostics::{diagnose, Diagnosis};
pub use error::{EventError, MaskError};
pub use event::{BasicEvent, EventKind, Qualifier, TimeEvent, TimeSpec};
pub use expr::{EventExpr, LogicalEvent};
pub use lower::SymExpr;
pub use mask::{BinOp, EmptyEnv, MaskEnv, MaskExpr, UnOp};
pub use parser::{parse_event, parse_mask};
pub use router::{ClassRouter, EventCode, EventInterner, MaskMemo, Route};
pub use simplify::simplify;
pub use value::Value;
