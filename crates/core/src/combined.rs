//! The footnote-5 optimization: one automaton per class.
//!
//! > "The above description assumes one automaton definition per
//! > trigger. In many cases such automata may be combined into one,
//! > resulting in a more efficient monitoring; we regard this item as
//! > merely one of many possible optimizations." (Section 5, footnote 5)
//!
//! [`CombinedEvent`] compiles several event expressions against a single
//! shared alphabet and runs their product DFA: per posted event, one
//! mask-classification pass and **one** table lookup serve every
//! trigger. Acceptance is a bitmask — bit *i* set means trigger *i*'s
//! composite event occurs at this point. The monitoring state is still
//! one word per object (for all the triggers together), at the price of
//! a product-sized table; the E2 ablation bench quantifies the trade.

use std::sync::Arc;

use ode_automata::{determinize, minimize, Dfa, StateId, Symbol};

use crate::alphabet::Alphabet;
use crate::detector::CompileStats;
use crate::error::{EventError, MaskError};
use crate::event::BasicEvent;
use crate::expr::{EventExpr, LogicalEvent};
use crate::lower::lower;
use crate::mask::{MaskEnv, MaskExpr};
use crate::value::Value;

/// Several composite events compiled into one product automaton over a
/// shared alphabet. Supports up to 32 events (`u32` firing bitmask).
#[derive(Clone, Debug)]
pub struct CombinedEvent {
    alphabet: Alphabet,
    /// Product DFA table, row-major `states × symbols`.
    table: Vec<StateId>,
    /// Firing bitmask per product state.
    accepting: Vec<u32>,
    start: StateId,
    stats: CompileStats,
    num_events: usize,
}

impl CombinedEvent {
    /// Compile `exprs` against the union of their alphabets.
    pub fn compile(exprs: &[EventExpr]) -> Result<Self, EventError> {
        assert!(
            (1..=32).contains(&exprs.len()),
            "CombinedEvent supports 1..=32 events"
        );
        // Shared alphabet: union of all logical events and composite
        // masks, in first-appearance order.
        let mut logical: Vec<LogicalEvent> = Vec::new();
        let mut masks: Vec<MaskExpr> = Vec::new();
        for e in exprs {
            e.validate()?;
            for le in e.logical_events() {
                if !logical.contains(&le) {
                    logical.push(le);
                }
            }
            for m in e.composite_masks() {
                if !masks.contains(&m) {
                    masks.push(m);
                }
            }
        }
        let alphabet = Alphabet::build_from_parts(&logical, &masks)?;
        let k = alphabet.len();

        // Compile each expression to its own minimal DFA over the shared
        // alphabet, then build the product lazily from the start tuple.
        let dfas: Vec<Dfa> = exprs
            .iter()
            .map(|e| {
                let lowered = lower(e, &alphabet)?;
                let nfa = crate::compile::compile_nfa(&lowered, k)?;
                Ok(minimize(&determinize(&nfa)))
            })
            .collect::<Result<_, EventError>>()?;

        let mut index = std::collections::HashMap::new();
        let mut tuples: Vec<Vec<StateId>> = Vec::new();
        let mut table: Vec<StateId> = Vec::new();
        let mut accepting: Vec<u32> = Vec::new();
        let start_tuple: Vec<StateId> = dfas.iter().map(|d| d.start()).collect();
        let accept_of = |tuple: &[StateId]| -> u32 {
            tuple
                .iter()
                .zip(&dfas)
                .enumerate()
                .filter(|(_, (s, d))| d.is_accepting(**s))
                .fold(0u32, |m, (i, _)| m | (1 << i))
        };
        index.insert(start_tuple.clone(), 0 as StateId);
        accepting.push(accept_of(&start_tuple));
        tuples.push(start_tuple);
        table.resize(k, 0);

        let mut next = 0usize;
        while next < tuples.len() {
            for sym in 0..k as Symbol {
                let t: Vec<StateId> = tuples[next]
                    .iter()
                    .zip(&dfas)
                    .map(|(s, d)| d.step(*s, sym))
                    .collect();
                let id = match index.get(&t) {
                    Some(&id) => id,
                    None => {
                        let id = tuples.len() as StateId;
                        accepting.push(accept_of(&t));
                        index.insert(t.clone(), id);
                        tuples.push(t);
                        table.resize(table.len() + k, 0);
                        id
                    }
                };
                table[next * k + sym as usize] = id;
            }
            next += 1;
        }

        let stats = CompileStats {
            alphabet_len: k,
            nfa_states: dfas.iter().map(Dfa::num_states).sum(),
            dfa_states: tuples.len(),
            expr_size: exprs.iter().map(EventExpr::size).sum(),
        };
        Ok(CombinedEvent {
            alphabet,
            table,
            accepting,
            start: 0,
            stats,
            num_events: exprs.len(),
        })
    }

    /// The shared alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of product states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Number of combined events.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Compilation statistics (here `nfa_states` reports the *sum* of
    /// the individual minimal DFAs — the storage the combined table
    /// replaces).
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// One product step.
    #[inline]
    pub fn step(&self, state: StateId, sym: Symbol) -> (StateId, u32) {
        let next = self.table[state as usize * self.alphabet.len() + sym as usize];
        (next, self.accepting[next as usize])
    }
}

/// The per-object monitor over a [`CombinedEvent`]: still one word of
/// state — for *all* the class's triggers together.
#[derive(Clone, Debug)]
pub struct CombinedDetector {
    compiled: Arc<CombinedEvent>,
    state: StateId,
}

impl CombinedDetector {
    /// Create a monitor at the product start state.
    pub fn new(compiled: Arc<CombinedEvent>) -> Self {
        let state = compiled.start();
        CombinedDetector { compiled, state }
    }

    /// Feed the `start` point (never fires).
    pub fn activate(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        let sym = self.compiled.alphabet.start_symbol(env)?;
        self.state = self.compiled.step(self.state, sym).0;
        Ok(())
    }

    /// Post a basic event; returns the firing bitmask (bit *i* = event
    /// *i* occurred).
    pub fn post(
        &mut self,
        basic: &BasicEvent,
        args: &[Value],
        env: &dyn MaskEnv,
    ) -> Result<u32, MaskError> {
        match self.compiled.alphabet.classify(basic, args, env)? {
            Some(sym) => {
                let (next, fired) = self.compiled.step(self.state, sym);
                self.state = next;
                Ok(fired)
            }
            None => Ok(0),
        }
    }

    /// The single word of state.
    pub fn state(&self) -> StateId {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{CompiledEvent, Detector};
    use crate::mask::EmptyEnv;
    use crate::parser::parse_event;

    fn exprs() -> Vec<EventExpr> {
        [
            "after a; after b",
            "choose 3 (after a)",
            "relative(after b, after c)",
            "every 2 (after c | after a)",
        ]
        .iter()
        .map(|s| parse_event(s).unwrap())
        .collect()
    }

    #[test]
    fn combined_agrees_with_individual_detectors() {
        let es = exprs();
        let combined = Arc::new(CombinedEvent::compile(&es).unwrap());
        let mut cd = CombinedDetector::new(Arc::clone(&combined));
        cd.activate(&EmptyEnv).unwrap();
        let mut individual: Vec<Detector> = es
            .iter()
            .map(|e| {
                let c = Arc::new(CompiledEvent::compile(e).unwrap());
                let mut d = Detector::new(c);
                d.activate(&EmptyEnv).unwrap();
                d
            })
            .collect();

        let stream = ["a", "b", "c", "a", "a", "b", "c", "c", "a", "b"];
        for m in stream {
            let ev = BasicEvent::after_method(m);
            let mask = cd.post(&ev, &[], &EmptyEnv).unwrap();
            for (i, d) in individual.iter_mut().enumerate() {
                let fired = d.post(&ev, &[], &EmptyEnv).unwrap();
                assert_eq!(fired, mask & (1 << i) != 0, "event {i} disagrees at `{m}`");
            }
        }
    }

    #[test]
    fn state_is_still_one_word() {
        let combined = Arc::new(CombinedEvent::compile(&exprs()).unwrap());
        let d = CombinedDetector::new(combined);
        assert_eq!(std::mem::size_of_val(&d.state()), 4);
    }

    #[test]
    fn product_size_is_bounded_by_individual_product() {
        let es = exprs();
        let combined = CombinedEvent::compile(&es).unwrap();
        let product_bound: usize = es
            .iter()
            .map(|e| CompiledEvent::compile(e).unwrap().stats().dfa_states)
            .product();
        assert!(combined.num_states() <= product_bound);
        assert!(combined.num_states() >= 2);
    }

    #[test]
    fn too_many_events_rejected() {
        let many: Vec<EventExpr> = (0..33)
            .map(|i| EventExpr::after_method(format!("m{i}")))
            .collect();
        let r = std::panic::catch_unwind(|| CombinedEvent::compile(&many));
        assert!(r.is_err());
    }
}
