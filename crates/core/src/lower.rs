//! Lowering: [`EventExpr`] → [`SymExpr`], the purely symbolic core form.
//!
//! Lowering resolves every logical event to its disjoint symbol set
//! (Section 5's mask-minterm rewrite, performed by [`Alphabet`]) and
//! folds composite masks into symbol-set intersections. What remains is
//! an expression over an abstract alphabet — exactly the "core event
//! specification language" of Section 4 plus the derived operators, ready
//! for both the reference set semantics and the automaton compiler.

use ode_automata::Symbol;

use crate::alphabet::Alphabet;
use crate::error::EventError;
use crate::expr::EventExpr;

/// An event expression over bare alphabet symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymExpr {
    /// `∅` — never occurs.
    Empty,
    /// A disjunction of symbols occurring at the labelled point (a
    /// logical event after minterm expansion).
    Atom(Vec<Symbol>),
    /// Union.
    Or(Box<SymExpr>, Box<SymExpr>),
    /// Intersection.
    And(Box<SymExpr>, Box<SymExpr>),
    /// Complement.
    Not(Box<SymExpr>),
    /// Curried truncated-context sequencing.
    Relative(Vec<SymExpr>),
    /// Unlimited repetition.
    RelativePlus(Box<SymExpr>),
    /// n-fold chained repetition.
    RelativeN(u32, Box<SymExpr>),
    /// Full-context ordering.
    Prior(Vec<SymExpr>),
    /// n-fold `prior`.
    PriorN(u32, Box<SymExpr>),
    /// Immediate succession.
    Sequence(Vec<SymExpr>),
    /// n-fold `sequence`.
    SequenceN(u32, Box<SymExpr>),
    /// Exactly the n-th occurrence.
    Choose(u32, Box<SymExpr>),
    /// Every n-th occurrence.
    Every(u32, Box<SymExpr>),
    /// First-after with relative guard.
    Fa(Box<SymExpr>, Box<SymExpr>, Box<SymExpr>),
    /// First-after with absolute guard.
    FaAbs(Box<SymExpr>, Box<SymExpr>, Box<SymExpr>),
}

impl SymExpr {
    /// AST node count.
    pub fn size(&self) -> usize {
        match self {
            SymExpr::Empty | SymExpr::Atom(_) => 1,
            SymExpr::Or(a, b) | SymExpr::And(a, b) => 1 + a.size() + b.size(),
            SymExpr::Not(a)
            | SymExpr::RelativePlus(a)
            | SymExpr::RelativeN(_, a)
            | SymExpr::PriorN(_, a)
            | SymExpr::SequenceN(_, a)
            | SymExpr::Choose(_, a)
            | SymExpr::Every(_, a) => 1 + a.size(),
            SymExpr::Relative(l) | SymExpr::Prior(l) | SymExpr::Sequence(l) => {
                1 + l.iter().map(SymExpr::size).sum::<usize>()
            }
            SymExpr::Fa(a, b, c) | SymExpr::FaAbs(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }
}

/// Lower an event expression against an alphabet. The expression must
/// already be validated.
pub fn lower(expr: &EventExpr, alphabet: &Alphabet) -> Result<SymExpr, EventError> {
    Ok(match expr {
        EventExpr::Empty => SymExpr::Empty,
        EventExpr::Logical(le) => {
            let syms = alphabet.symbols_for_logical(le);
            if syms.is_empty() {
                SymExpr::Empty
            } else {
                SymExpr::Atom(syms)
            }
        }
        EventExpr::Or(a, b) => {
            SymExpr::Or(Box::new(lower(a, alphabet)?), Box::new(lower(b, alphabet)?))
        }
        EventExpr::And(a, b) => {
            SymExpr::And(Box::new(lower(a, alphabet)?), Box::new(lower(b, alphabet)?))
        }
        EventExpr::Not(a) => SymExpr::Not(Box::new(lower(a, alphabet)?)),
        EventExpr::Relative(l) => SymExpr::Relative(lower_list(l, alphabet)?),
        EventExpr::RelativePlus(a) => SymExpr::RelativePlus(Box::new(lower(a, alphabet)?)),
        EventExpr::RelativeN(n, a) => SymExpr::RelativeN(*n, Box::new(lower(a, alphabet)?)),
        EventExpr::Prior(l) => SymExpr::Prior(lower_list(l, alphabet)?),
        EventExpr::PriorN(n, a) => SymExpr::PriorN(*n, Box::new(lower(a, alphabet)?)),
        EventExpr::Sequence(l) => SymExpr::Sequence(lower_list(l, alphabet)?),
        EventExpr::SequenceN(n, a) => SymExpr::SequenceN(*n, Box::new(lower(a, alphabet)?)),
        EventExpr::Choose(n, a) => SymExpr::Choose(*n, Box::new(lower(a, alphabet)?)),
        EventExpr::Every(n, a) => SymExpr::Every(*n, Box::new(lower(a, alphabet)?)),
        EventExpr::Fa(a, b, c) => SymExpr::Fa(
            Box::new(lower(a, alphabet)?),
            Box::new(lower(b, alphabet)?),
            Box::new(lower(c, alphabet)?),
        ),
        EventExpr::FaAbs(a, b, c) => SymExpr::FaAbs(
            Box::new(lower(a, alphabet)?),
            Box::new(lower(b, alphabet)?),
            Box::new(lower(c, alphabet)?),
        ),
        EventExpr::Masked(e, m) => {
            // `E && C`: the composite mask becomes an intersection with
            // the set of symbols carrying C's truth bit (Section 3.3 —
            // C sees only the current database state).
            let syms = alphabet.symbols_for_composite_mask(m);
            SymExpr::And(
                Box::new(lower(e, alphabet)?),
                Box::new(if syms.is_empty() {
                    SymExpr::Empty
                } else {
                    SymExpr::Atom(syms)
                }),
            )
        }
    })
}

fn lower_list(list: &[EventExpr], alphabet: &Alphabet) -> Result<Vec<SymExpr>, EventError> {
    list.iter().map(|e| lower(e, alphabet)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskExpr;

    #[test]
    fn logical_event_becomes_atom() {
        let e = EventExpr::after_method("a");
        let alpha = Alphabet::build(&e).unwrap();
        let s = lower(&e, &alpha).unwrap();
        assert!(matches!(s, SymExpr::Atom(ref v) if v.len() == 1));
    }

    #[test]
    fn composite_mask_becomes_intersection() {
        let e = EventExpr::after_method("a").masked(MaskExpr::lt("x", 1i64));
        let alpha = Alphabet::build(&e).unwrap();
        let s = lower(&e, &alpha).unwrap();
        match s {
            SymExpr::And(inner, bit) => {
                assert!(matches!(*inner, SymExpr::Atom(_)));
                assert!(matches!(*bit, SymExpr::Atom(ref v) if v.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        let e = EventExpr::after_method("a").or(EventExpr::after_method("b"));
        let alpha = Alphabet::build(&e).unwrap();
        assert_eq!(lower(&e, &alpha).unwrap().size(), 3);
    }
}
