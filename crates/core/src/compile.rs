//! Compilation of event expressions into finite automata (Section 5).
//!
//! Every operator maps to a construction on *occurrence languages*
//! `O(E) ⊆ Σ*` — the histories whose last point `E` labels:
//!
//! | operator            | language                                     |
//! |---------------------|----------------------------------------------|
//! | logical event `a`   | `Σ*·a`                                       |
//! | `E \| F`            | `O(E) ∪ O(F)`                                |
//! | `E & F`             | `O(E) ∩ O(F)`                                |
//! | `!E`                | `Σ⁺ \ O(E)`                                  |
//! | `relative(E, F)`    | `O(E)·O(F)`                                  |
//! | `relative+(E)`      | `O(E)⁺`                                      |
//! | `relative n (E)`    | `O(E)ⁿ`                                      |
//! | `prior(E, F)`       | `O(F) ∩ O(E)·Σ⁺`                             |
//! | `sequence(E, F)`    | `O(F) ∩ O(E)·Σ`                              |
//! | `choose n (E)`      | counting product (exactly n-th)              |
//! | `every n (E)`       | counting product (each n-th)                 |
//! | `fa(E, F, G)`       | `O(E)·(O(F) \ (O(F) ∪ O(G))·Σ⁺)`             |
//! | `faAbs(E, F, G)`    | custom product (absolute guard tracking)     |
//!
//! The result is determinized and Hopcroft-minimized, giving the shared
//! per-class transition table; each object then stores a single
//! [`ode_automata::StateId`] per active trigger — "one word per active
//! trigger per object".

use ode_automata::{
    choose_product, determinize, every_product, minimize, Dfa, Nfa, StateId, Symbol,
};

use crate::error::EventError;
use crate::lower::SymExpr;

/// Compile a lowered expression over `alphabet_len` symbols into a
/// minimal DFA for its occurrence language.
pub fn compile(expr: &SymExpr, alphabet_len: usize) -> Result<Dfa, EventError> {
    let nfa = compile_nfa(expr, alphabet_len)?;
    Ok(minimize(&determinize(&nfa)))
}

/// Compile to an NFA (intermediate; exposed for size instrumentation in
/// experiment E3).
pub fn compile_nfa(expr: &SymExpr, k: usize) -> Result<Nfa, EventError> {
    Ok(match expr {
        SymExpr::Empty => Nfa::reject(k),
        SymExpr::Atom(syms) => Nfa::ends_with(k, syms),
        SymExpr::Or(a, b) => compile_nfa(a, k)?.union(&compile_nfa(b, k)?),
        SymExpr::And(a, b) => {
            let da = to_dfa(&compile_nfa(a, k)?);
            let db = to_dfa(&compile_nfa(b, k)?);
            da.intersect(&db).to_nfa()
        }
        SymExpr::Not(a) => to_dfa(&compile_nfa(a, k)?).complement_sigma_plus().to_nfa(),
        SymExpr::Relative(list) => {
            check_nonempty(list, "relative")?;
            let mut cur = compile_nfa(&list[0], k)?;
            for e in &list[1..] {
                cur = cur.concat(&compile_nfa(e, k)?);
            }
            cur
        }
        SymExpr::RelativePlus(a) => compile_nfa(a, k)?.plus(),
        SymExpr::RelativeN(n, a) => {
            check_count(*n, "relative")?;
            compile_nfa(a, k)?.repeat(*n)
        }
        SymExpr::Prior(list) => {
            check_nonempty(list, "prior")?;
            let mut cur = compile_nfa(&list[0], k)?;
            for e in &list[1..] {
                cur = prior_pair(&cur, &compile_nfa(e, k)?, k);
            }
            cur
        }
        SymExpr::PriorN(n, a) => {
            check_count(*n, "prior")?;
            let inner = compile_nfa(a, k)?;
            let mut cur = inner.clone();
            for _ in 1..*n {
                cur = prior_pair(&cur, &inner, k);
            }
            cur
        }
        SymExpr::Sequence(list) => {
            check_nonempty(list, "sequence")?;
            let mut cur = compile_nfa(&list[0], k)?;
            for e in &list[1..] {
                cur = sequence_pair(&cur, &compile_nfa(e, k)?, k);
            }
            cur
        }
        SymExpr::SequenceN(n, a) => {
            check_count(*n, "sequence")?;
            let inner = compile_nfa(a, k)?;
            let mut cur = inner.clone();
            for _ in 1..*n {
                cur = sequence_pair(&cur, &inner, k);
            }
            cur
        }
        SymExpr::Choose(n, a) => {
            check_count(*n, "choose")?;
            choose_product(&to_dfa(&compile_nfa(a, k)?), *n).to_nfa()
        }
        SymExpr::Every(n, a) => {
            check_count(*n, "every")?;
            every_product(&to_dfa(&compile_nfa(a, k)?), *n).to_nfa()
        }
        SymExpr::Fa(e, f, g) => {
            // O(E)·(O(F) \ (O(F) ∪ O(G))·Σ⁺): the first F in the
            // truncated context, with no G (truncated context) strictly
            // before it.
            let ne = compile_nfa(e, k)?;
            let nf = compile_nfa(f, k)?;
            let ng = compile_nfa(g, k)?;
            let df = to_dfa(&nf);
            let blocked = to_dfa(&nf.union(&ng).concat(&Nfa::sigma_plus(k)));
            let first_f = df.difference(&blocked);
            ne.concat(&first_f.to_nfa())
        }
        SymExpr::FaAbs(e, f, g) => {
            let de = to_dfa(&compile_nfa(e, k)?);
            let df = to_dfa(&compile_nfa(f, k)?);
            let dg = to_dfa(&compile_nfa(g, k)?);
            fa_abs_product(&de, &df, &dg, k)
        }
    })
}

fn to_dfa(n: &Nfa) -> Dfa {
    minimize(&determinize(n))
}

/// `prior(A, B)`: `O(B) ∩ O(A)·Σ⁺` — B's point with some earlier A point
/// (both judged in the full context).
fn prior_pair(a: &Nfa, b: &Nfa, k: usize) -> Nfa {
    let a_then_more = to_dfa(&a.clone().concat(&Nfa::sigma_plus(k)));
    let db = to_dfa(b);
    db.intersect(&a_then_more).to_nfa()
}

/// `sequence(A, B)`: `O(B) ∩ O(A)·Σ` — B occurs exactly at the next
/// point after A.
fn sequence_pair(a: &Nfa, b: &Nfa, k: usize) -> Nfa {
    let a_then_one = to_dfa(&a.clone().concat(&Nfa::any_symbol(k)));
    let db = to_dfa(b);
    db.intersect(&a_then_one).to_nfa()
}

/// `faAbs(E, F, G)`: accepts `w·y` with `w ∈ O(E)`, `y ∈ O(F)`, no
/// proper nonempty prefix `y'` of `y` with `y' ∈ O(F)` (first F in the
/// truncated context) or `w·y' ∈ O(G)` (no *absolute* G strictly between
/// E's point and F's point).
///
/// Built as an NFA product: phase 1 runs `DFA(E) × DFA(G)`; whenever E
/// accepts, an ε-edge forks into phase 2 which runs `DFA(F)` from scratch
/// while `DFA(G)` keeps tracking absolutely. Phase-2 states where F or G
/// has accepted are terminal (the F case accepts, the G case is dead);
/// the phase-2 *entry* state is exempt because G holding at E's own point
/// is not "intervening".
fn fa_abs_product(de: &Dfa, df: &Dfa, dg: &Dfa, k: usize) -> Nfa {
    let ne = de.num_states();
    let nf = df.num_states();
    let ng = dg.num_states();
    let phase1 = ne * ng;
    let p1 = |qe: StateId, qg: StateId| qe * ng as StateId + qg;
    let p2 = |qf: StateId, qg: StateId, entry: bool| {
        (phase1 + ((qf as usize * ng) + qg as usize) * 2 + usize::from(entry)) as StateId
    };

    let mut nfa = Nfa::builder(k);
    for _ in 0..phase1 + nf * ng * 2 {
        nfa.add_state(false);
    }

    // Phase 1: searching for an E occurrence while tracking G absolutely.
    for qe in 0..ne as StateId {
        for qg in 0..ng as StateId {
            for sym in 0..k as Symbol {
                nfa.add_transition(p1(qe, qg), sym, p1(de.step(qe, sym), dg.step(qg, sym)));
            }
            if de.is_accepting(qe) {
                nfa.add_epsilon(p1(qe, qg), p2(df.start(), qg, true));
            }
        }
    }

    // Phase 2: first-F search with absolute-G tracking.
    for qf in 0..nf as StateId {
        for qg in 0..ng as StateId {
            for entry in [true, false] {
                let id = p2(qf, qg, entry);
                let terminal = !entry && (df.is_accepting(qf) || dg.is_accepting(qg));
                if !terminal {
                    for sym in 0..k as Symbol {
                        nfa.add_transition(id, sym, p2(df.step(qf, sym), dg.step(qg, sym), false));
                    }
                }
                if !entry && df.is_accepting(qf) {
                    nfa.set_accepting(id, true);
                }
            }
        }
    }

    nfa.set_start(p1(de.start(), dg.start()));
    nfa
}

fn check_nonempty(list: &[SymExpr], operator: &'static str) -> Result<(), EventError> {
    if list.is_empty() {
        Err(EventError::EmptyOperands { operator })
    } else {
        Ok(())
    }
}

fn check_count(n: u32, operator: &'static str) -> Result<(), EventError> {
    if n == 0 {
        Err(EventError::InvalidCount { operator, count: n })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::occurrences;

    fn atom(s: Symbol) -> SymExpr {
        SymExpr::Atom(vec![s])
    }

    /// Cross-check: the compiled DFA accepts H[..=p] exactly when the
    /// reference semantics labels p, over all words up to `max_len`.
    fn agree_exhaustive(expr: &SymExpr, k: usize, max_len: usize) {
        let dfa = compile(expr, k).unwrap();
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for s in 0..k as Symbol {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            for w in &next {
                let occ = occurrences(expr, w);
                let semantic = occ.contains(&(w.len() - 1));
                let automaton = dfa.run(w.iter().copied());
                assert_eq!(semantic, automaton, "expr {expr:?} word {w:?}");
            }
            frontier = next;
        }
    }

    #[test]
    fn atom_agrees() {
        agree_exhaustive(&atom(0), 2, 4);
    }

    #[test]
    fn boolean_ops_agree() {
        agree_exhaustive(&SymExpr::Or(Box::new(atom(0)), Box::new(atom(1))), 3, 3);
        agree_exhaustive(&SymExpr::Not(Box::new(atom(0))), 2, 4);
        agree_exhaustive(
            &SymExpr::And(
                Box::new(SymExpr::Not(Box::new(atom(0)))),
                Box::new(SymExpr::Or(Box::new(atom(1)), Box::new(atom(2)))),
            ),
            3,
            3,
        );
    }

    #[test]
    fn relative_agrees() {
        agree_exhaustive(&SymExpr::Relative(vec![atom(0), atom(1)]), 2, 5);
        agree_exhaustive(&SymExpr::Relative(vec![atom(0), atom(1), atom(0)]), 2, 5);
    }

    #[test]
    fn relative_plus_and_n_agree() {
        agree_exhaustive(&SymExpr::RelativePlus(Box::new(atom(0))), 2, 5);
        agree_exhaustive(&SymExpr::RelativeN(2, Box::new(atom(0))), 2, 5);
        agree_exhaustive(
            &SymExpr::RelativeN(2, Box::new(SymExpr::Relative(vec![atom(0), atom(1)]))),
            2,
            5,
        );
    }

    #[test]
    fn prior_agrees() {
        agree_exhaustive(&SymExpr::Prior(vec![atom(0), atom(1)]), 2, 5);
        // the paper's composite example
        let e = SymExpr::Relative(vec![atom(0), atom(1)]);
        let f = SymExpr::Relative(vec![atom(0), atom(0)]);
        agree_exhaustive(&SymExpr::Prior(vec![e, f]), 2, 5);
    }

    #[test]
    fn sequence_agrees() {
        agree_exhaustive(&SymExpr::Sequence(vec![atom(0), atom(1)]), 2, 5);
        agree_exhaustive(&SymExpr::Sequence(vec![atom(0), atom(1), atom(1)]), 2, 5);
    }

    #[test]
    fn counting_agrees() {
        agree_exhaustive(&SymExpr::Choose(2, Box::new(atom(0))), 2, 5);
        agree_exhaustive(&SymExpr::Every(2, Box::new(atom(0))), 2, 5);
        agree_exhaustive(
            &SymExpr::Choose(2, Box::new(SymExpr::Relative(vec![atom(0), atom(1)]))),
            2,
            5,
        );
    }

    #[test]
    fn fa_agrees() {
        agree_exhaustive(
            &SymExpr::Fa(Box::new(atom(0)), Box::new(atom(1)), Box::new(atom(2))),
            3,
            4,
        );
    }

    #[test]
    fn fa_abs_agrees() {
        agree_exhaustive(
            &SymExpr::FaAbs(Box::new(atom(0)), Box::new(atom(1)), Box::new(atom(2))),
            3,
            4,
        );
        // composite G where fa and faAbs differ
        let g = SymExpr::Relative(vec![atom(2), atom(2)]);
        agree_exhaustive(
            &SymExpr::FaAbs(Box::new(atom(0)), Box::new(atom(1)), Box::new(g)),
            3,
            4,
        );
    }

    #[test]
    fn paper_law_prior_plus_equals_e() {
        // prior+(E) ≡ E, demonstrated via prior(E, E) ⊆ E (Section 3.4).
        let e = SymExpr::Relative(vec![atom(0), atom(1)]);
        let de = compile(&e, 2).unwrap();
        let dpe = compile(&SymExpr::Prior(vec![e.clone(), e.clone()]), 2).unwrap();
        // prior(E,E) ∪ E ≡ E
        assert!(dpe.union(&de).equivalent(&de));
        // sequence(E,E) ⊆ E as well
        let dse = compile(&SymExpr::Sequence(vec![e.clone(), e]), 2).unwrap();
        assert!(dse.union(&de).equivalent(&de));
    }

    #[test]
    fn singleton_lists_are_identity() {
        let e = atom(0);
        let de = compile(&e, 2).unwrap();
        for wrapped in [
            SymExpr::Relative(vec![e.clone()]),
            SymExpr::Prior(vec![e.clone()]),
            SymExpr::Sequence(vec![e.clone()]),
        ] {
            assert!(compile(&wrapped, 2).unwrap().equivalent(&de));
        }
    }

    #[test]
    fn relative_n_one_is_identity() {
        let e = SymExpr::Relative(vec![atom(0), atom(1)]);
        let d1 = compile(&SymExpr::RelativeN(1, Box::new(e.clone())), 2).unwrap();
        assert!(d1.equivalent(&compile(&e, 2).unwrap()));
    }

    #[test]
    fn curried_relative_equals_nested() {
        let abc = SymExpr::Relative(vec![atom(0), atom(1), atom(0)]);
        let nested = SymExpr::Relative(vec![SymExpr::Relative(vec![atom(0), atom(1)]), atom(0)]);
        assert!(compile(&abc, 2)
            .unwrap()
            .equivalent(&compile(&nested, 2).unwrap()));
    }

    #[test]
    fn empty_language_detected() {
        let d = compile(&SymExpr::Empty, 2).unwrap();
        assert!(d.is_empty_language());
        // E & !E is empty too
        let contradiction =
            SymExpr::And(Box::new(atom(0)), Box::new(SymExpr::Not(Box::new(atom(0)))));
        assert!(compile(&contradiction, 2).unwrap().is_empty_language());
    }

    #[test]
    fn zero_counts_rejected() {
        assert!(compile(&SymExpr::Choose(0, Box::new(atom(0))), 2).is_err());
        assert!(compile(&SymExpr::RelativeN(0, Box::new(atom(0))), 2).is_err());
    }

    #[test]
    fn empty_operand_lists_rejected() {
        assert!(compile(&SymExpr::Relative(vec![]), 2).is_err());
        assert!(compile(&SymExpr::Prior(vec![]), 2).is_err());
    }

    /// Randomized agreement over random expressions and histories — the
    /// central correctness property of the whole pipeline.
    #[test]
    fn randomized_semantics_agreement() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let k = 3usize;

        fn random_expr(rng: &mut StdRng, depth: u32) -> SymExpr {
            let leaf = depth == 0 || rng.random_bool(0.35);
            if leaf {
                return SymExpr::Atom(vec![rng.random_range(0..3)]);
            }
            match rng.random_range(0..12) {
                0 => SymExpr::Or(
                    Box::new(random_expr(rng, depth - 1)),
                    Box::new(random_expr(rng, depth - 1)),
                ),
                1 => SymExpr::And(
                    Box::new(random_expr(rng, depth - 1)),
                    Box::new(random_expr(rng, depth - 1)),
                ),
                2 => SymExpr::Not(Box::new(random_expr(rng, depth - 1))),
                3 => SymExpr::Relative(vec![
                    random_expr(rng, depth - 1),
                    random_expr(rng, depth - 1),
                ]),
                4 => SymExpr::RelativePlus(Box::new(random_expr(rng, depth - 1))),
                5 => SymExpr::RelativeN(
                    rng.random_range(1..4),
                    Box::new(random_expr(rng, depth - 1)),
                ),
                6 => SymExpr::Prior(vec![
                    random_expr(rng, depth - 1),
                    random_expr(rng, depth - 1),
                ]),
                7 => SymExpr::Sequence(vec![
                    random_expr(rng, depth - 1),
                    random_expr(rng, depth - 1),
                ]),
                8 => SymExpr::Choose(
                    rng.random_range(1..4),
                    Box::new(random_expr(rng, depth - 1)),
                ),
                9 => SymExpr::Every(
                    rng.random_range(1..4),
                    Box::new(random_expr(rng, depth - 1)),
                ),
                10 => SymExpr::Fa(
                    Box::new(random_expr(rng, depth - 1)),
                    Box::new(random_expr(rng, depth - 1)),
                    Box::new(random_expr(rng, depth - 1)),
                ),
                _ => SymExpr::FaAbs(
                    Box::new(random_expr(rng, depth - 1)),
                    Box::new(random_expr(rng, depth - 1)),
                    Box::new(random_expr(rng, depth - 1)),
                ),
            }
        }

        for trial in 0..60 {
            let expr = random_expr(&mut rng, 3);
            let dfa = compile(&expr, k).unwrap();
            for _ in 0..20 {
                let len = rng.random_range(0..10);
                let w: Vec<Symbol> = (0..len).map(|_| rng.random_range(0..k as u32)).collect();
                let occ = occurrences(&expr, &w);
                for cut in 1..=w.len() {
                    let prefix = &w[..cut];
                    assert_eq!(
                        occ.contains(&(cut - 1)),
                        dfa.run(prefix.iter().copied()),
                        "trial {trial} expr {expr:?} prefix {prefix:?}"
                    );
                }
            }
        }
    }
}
