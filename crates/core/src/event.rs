//! Basic events — the alphabet the paper's Section 3.1 starts from.
//!
//! > "Each event specification system must start with an alphabet of
//! > basic events that the system supports."
//!
//! The basic events of an object-oriented database such as Ode:
//!
//! 1. **Object state events** — after `create`, before `delete`,
//!    before/after `update` / `read` / `access` through a public member
//!    function.
//! 2. **Method execution events** — before/after a named member function.
//! 3. **Time events** — `at time(...)`, `every time(...)`,
//!    `after time(...)` (posted only to "relevant" objects).
//! 4. **Transaction events** — after `tbegin`, before `tcomplete`, after
//!    `tcommit`, before/after `tabort`. `before tcommit` is *not allowed*
//!    "because we cannot be sure that a transaction is going to commit
//!    until it actually does so".

use std::fmt;

use crate::error::EventError;

/// `before` / `after` qualifier on a basic event.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Qualifier {
    /// Immediately before the happening.
    Before,
    /// Immediately after the happening.
    After,
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::Before => write!(f, "before"),
            Qualifier::After => write!(f, "after"),
        }
    }
}

/// A `time(YR=…, MO=…, DAY=…, HR=…, M=…, SEC=…, MS=…)` literal, with any
/// field optionally omitted (Section 3.1 item 3).
///
/// The simulation calendar is deliberately simple and deterministic:
/// 1 year = 12 months, 1 month = 30 days, 1 day = 24 h. Virtual time is
/// milliseconds since epoch 0.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeSpec {
    /// Year (0-based in the simulation calendar).
    pub yr: Option<u32>,
    /// Month `1..=12`.
    pub mo: Option<u32>,
    /// Day of month `1..=30`.
    pub day: Option<u32>,
    /// Hour `0..=23`.
    pub hr: Option<u32>,
    /// Minute `0..=59`.
    pub min: Option<u32>,
    /// Second `0..=59`.
    pub sec: Option<u32>,
    /// Millisecond `0..=999`.
    pub ms: Option<u32>,
}

/// Milliseconds per simulation-calendar unit.
pub mod calendar {
    /// ms per second.
    pub const SEC: u64 = 1_000;
    /// ms per minute.
    pub const MIN: u64 = 60 * SEC;
    /// ms per hour.
    pub const HR: u64 = 60 * MIN;
    /// ms per day.
    pub const DAY: u64 = 24 * HR;
    /// ms per month (30-day simulation months).
    pub const MO: u64 = 30 * DAY;
    /// ms per year (12-month simulation years).
    pub const YR: u64 = 12 * MO;
}

impl TimeSpec {
    /// A spec with only the hour set — `time(HR=h)`.
    pub fn at_hour(h: u32) -> TimeSpec {
        TimeSpec {
            hr: Some(h),
            ..Default::default()
        }
    }

    /// Interpret the spec as a *duration* in virtual ms (used by
    /// `every time(…)` periods and `after time(…)` delays): each field
    /// contributes `field × unit`.
    pub fn as_duration_ms(&self) -> u64 {
        let f = |v: Option<u32>, unit: u64| v.map_or(0, |x| x as u64 * unit);
        f(self.yr, calendar::YR)
            + f(self.mo, calendar::MO)
            + f(self.day, calendar::DAY)
            + f(self.hr, calendar::HR)
            + f(self.min, calendar::MIN)
            + f(self.sec, calendar::SEC)
            + f(self.ms, 1)
    }

    /// Does the absolute virtual time `t` (ms since epoch) match this
    /// calendar pattern?
    ///
    /// Fields *coarser* than the coarsest specified field are wildcards
    /// (so `time(HR=9)` recurs daily); unspecified fields at or below
    /// that grain pin to their minimum (so `time(HR=9)` means 09:00:00.000
    /// sharp). An empty spec matches nothing.
    pub fn matches(&self, t: u64) -> bool {
        let parts = CalendarParts::from_ms(t);
        let fields: [(Option<u64>, u64, u64); 7] = [
            (self.yr.map(u64::from), parts.yr, 0),
            (self.mo.map(u64::from), parts.mo, 1),
            (self.day.map(u64::from), parts.day, 1),
            (self.hr.map(u64::from), parts.hr, 0),
            (self.min.map(u64::from), parts.min, 0),
            (self.sec.map(u64::from), parts.sec, 0),
            (self.ms.map(u64::from), parts.ms, 0),
        ];
        let Some(coarsest) = fields.iter().position(|(s, _, _)| s.is_some()) else {
            return false;
        };
        fields
            .iter()
            .enumerate()
            .all(|(i, (spec, actual, min))| match spec {
                Some(v) => v == actual,
                None => i < coarsest || actual == min,
            })
    }

    /// The earliest virtual time strictly after `t` that matches this
    /// pattern, or `None` if the pattern cannot match again (fully
    /// specified and already past, or empty).
    pub fn next_match_after(&self, t: u64) -> Option<u64> {
        // Offset of the match within one recurrence period starting at
        // `base` (unspecified finer fields pin to their minimum).
        let offset = |base: u64| -> u64 {
            base + self.mo.map_or(0, |v| (v.max(1) as u64 - 1) * calendar::MO)
                + self
                    .day
                    .map_or(0, |v| (v.max(1) as u64 - 1) * calendar::DAY)
                + self.hr.map_or(0, |v| v as u64 * calendar::HR)
                + self.min.map_or(0, |v| v as u64 * calendar::MIN)
                + self.sec.map_or(0, |v| v as u64 * calendar::SEC)
                + self.ms.map_or(0, |v| v as u64)
        };

        if let Some(yr) = self.yr {
            // Fully anchored: one-shot.
            let cand = offset(yr as u64 * calendar::YR);
            return (cand > t).then_some(cand);
        }
        // Recurrence period = one unit above the coarsest specified field.
        let period = if self.mo.is_some() {
            calendar::YR
        } else if self.day.is_some() {
            calendar::MO
        } else if self.hr.is_some() {
            calendar::DAY
        } else if self.min.is_some() {
            calendar::HR
        } else if self.sec.is_some() {
            calendar::MIN
        } else if self.ms.is_some() {
            calendar::SEC
        } else {
            return None; // empty spec
        };
        let base = (t / period) * period;
        for k in 0..=1u64 {
            let cand = offset(base + k * period);
            if cand > t {
                return Some(cand);
            }
        }
        None
    }
}

/// Decomposition of a virtual timestamp into simulation-calendar parts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CalendarParts {
    /// Year (0-based).
    pub yr: u64,
    /// Month `1..=12`.
    pub mo: u64,
    /// Day `1..=30`.
    pub day: u64,
    /// Hour `0..=23`.
    pub hr: u64,
    /// Minute.
    pub min: u64,
    /// Second.
    pub sec: u64,
    /// Millisecond.
    pub ms: u64,
}

impl CalendarParts {
    /// Split `t` ms into calendar parts.
    pub fn from_ms(t: u64) -> Self {
        CalendarParts {
            yr: t / calendar::YR,
            mo: (t % calendar::YR) / calendar::MO + 1,
            day: (t % calendar::MO) / calendar::DAY + 1,
            hr: (t % calendar::DAY) / calendar::HR,
            min: (t % calendar::HR) / calendar::MIN,
            sec: (t % calendar::MIN) / calendar::SEC,
            ms: t % calendar::SEC,
        }
    }
}

impl fmt::Display for TimeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time(")?;
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, name: &str, v: Option<u32>| {
            if let Some(v) = v {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{name}={v}")?;
            }
            Ok(())
        };
        item(f, "YR", self.yr)?;
        item(f, "MO", self.mo)?;
        item(f, "DAY", self.day)?;
        item(f, "HR", self.hr)?;
        item(f, "M", self.min)?;
        item(f, "SEC", self.sec)?;
        item(f, "MS", self.ms)?;
        write!(f, ")")
    }
}

/// A time event (Section 3.1 item 3).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimeEvent {
    /// `at time(…)` — fires whenever virtual time matches the pattern.
    At(TimeSpec),
    /// `every time(…)` — fires periodically, period = the spec read as a
    /// duration, measured from trigger activation.
    Every(TimeSpec),
    /// `after time(…)` — fires once, the spec-duration after trigger
    /// activation ("from the current time, when the trigger is armed").
    After(TimeSpec),
}

impl fmt::Display for TimeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeEvent::At(s) => write!(f, "at {s}"),
            TimeEvent::Every(s) => write!(f, "every {s}"),
            TimeEvent::After(s) => write!(f, "after {s}"),
        }
    }
}

/// The happening a basic event qualifies (Section 3.1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Object creation (`after create` only).
    Create,
    /// Object deletion (`before delete` only).
    Delete,
    /// Update through any public member function.
    Update,
    /// Read through any public member function.
    Read,
    /// Any access through a public member function.
    Access,
    /// Execution of the named member function.
    Method(String),
    /// Transaction begin (`after tbegin` only; posted to an object
    /// immediately before the transaction first accesses it).
    TBegin,
    /// Transaction code complete, about to attempt commit
    /// (`before tcomplete` only; may be posted repeatedly, Section 6).
    TComplete,
    /// Transaction commit (`after tcommit` only; posted by a system
    /// transaction).
    TCommit,
    /// Transaction abort (before or after; `after tabort` posted by a
    /// system transaction).
    TAbort,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Create => write!(f, "create"),
            EventKind::Delete => write!(f, "delete"),
            EventKind::Update => write!(f, "update"),
            EventKind::Read => write!(f, "read"),
            EventKind::Access => write!(f, "access"),
            EventKind::Method(m) => write!(f, "{m}"),
            EventKind::TBegin => write!(f, "tbegin"),
            EventKind::TComplete => write!(f, "tcomplete"),
            EventKind::TCommit => write!(f, "tcommit"),
            EventKind::TAbort => write!(f, "tabort"),
        }
    }
}

/// A basic event: a happening of interest posted to an object.
///
/// The distinguished [`BasicEvent::Start`] point is "a unique 'first'
/// logical event, called start, … placed at the beginning of the history
/// just prior to the first user specified logical event" (Section 3.4).
/// It is fed to every trigger automaton at activation time and never
/// fires triggers itself.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasicEvent {
    /// A qualified database happening.
    Db(Qualifier, EventKind),
    /// A time event.
    Time(TimeEvent),
    /// The distinguished history-start point.
    Start,
}

impl BasicEvent {
    /// `before kind`.
    pub fn before(kind: EventKind) -> BasicEvent {
        BasicEvent::Db(Qualifier::Before, kind)
    }

    /// `after kind`.
    pub fn after(kind: EventKind) -> BasicEvent {
        BasicEvent::Db(Qualifier::After, kind)
    }

    /// `before method-name`.
    pub fn before_method(name: impl Into<String>) -> BasicEvent {
        BasicEvent::Db(Qualifier::Before, EventKind::Method(name.into()))
    }

    /// `after method-name`.
    pub fn after_method(name: impl Into<String>) -> BasicEvent {
        BasicEvent::Db(Qualifier::After, EventKind::Method(name.into()))
    }

    /// Validate the qualifier/kind combination per Section 3.1:
    ///
    /// * `before tcommit` rejected — "we cannot be sure that a
    ///   transaction is going to commit until it actually does so";
    /// * `before tbegin`, `after tcomplete` rejected — the posting model
    ///   defines only `after tbegin` and `before tcomplete`;
    /// * `before create`, `after delete` rejected — the object does not
    ///   exist at those instants.
    pub fn validate(&self) -> Result<(), EventError> {
        if let BasicEvent::Db(q, kind) = self {
            let bad = matches!(
                (q, kind),
                (Qualifier::Before, EventKind::TCommit)
                    | (Qualifier::Before, EventKind::TBegin)
                    | (Qualifier::After, EventKind::TComplete)
                    | (Qualifier::Before, EventKind::Create)
                    | (Qualifier::After, EventKind::Delete)
            );
            if bad {
                return Err(EventError::InvalidQualifier {
                    event: self.to_string(),
                    reason: match (q, kind) {
                        (Qualifier::Before, EventKind::TCommit) => {
                            "a transaction is not known to commit until it actually does \
                             (paper, Section 3.1)"
                        }
                        (Qualifier::Before, EventKind::TBegin) => {
                            "tbegin is posted to an object only after the transaction began"
                        }
                        (Qualifier::After, EventKind::TComplete) => {
                            "tcomplete marks the instant just before a commit attempt"
                        }
                        (Qualifier::Before, EventKind::Create) => {
                            "the object does not exist before its creation"
                        }
                        _ => "the object no longer exists after its deletion",
                    },
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for BasicEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicEvent::Db(q, k) => write!(f, "{q} {k}"),
            BasicEvent::Time(t) => write!(f, "{t}"),
            BasicEvent::Start => write!(f, "start"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn before_tcommit_is_rejected() {
        let e = BasicEvent::before(EventKind::TCommit);
        let err = e.validate().unwrap_err();
        assert!(err.to_string().contains("tcommit"));
    }

    #[test]
    fn legal_transaction_events_pass() {
        for e in [
            BasicEvent::after(EventKind::TBegin),
            BasicEvent::before(EventKind::TComplete),
            BasicEvent::after(EventKind::TCommit),
            BasicEvent::before(EventKind::TAbort),
            BasicEvent::after(EventKind::TAbort),
        ] {
            e.validate().unwrap();
        }
    }

    #[test]
    fn illegal_object_lifecycle_qualifiers_rejected() {
        assert!(BasicEvent::before(EventKind::Create).validate().is_err());
        assert!(BasicEvent::after(EventKind::Delete).validate().is_err());
        assert!(BasicEvent::after(EventKind::Create).validate().is_ok());
        assert!(BasicEvent::before(EventKind::Delete).validate().is_ok());
    }

    #[test]
    fn display_round_trips_keywords() {
        assert_eq!(
            BasicEvent::after(EventKind::TBegin).to_string(),
            "after tbegin"
        );
        assert_eq!(
            BasicEvent::before_method("withdraw").to_string(),
            "before withdraw"
        );
        assert_eq!(BasicEvent::Start.to_string(), "start");
    }

    #[test]
    fn duration_arithmetic() {
        let s = TimeSpec {
            hr: Some(2),
            min: Some(30),
            ..Default::default()
        };
        assert_eq!(s.as_duration_ms(), 2 * calendar::HR + 30 * calendar::MIN);
    }

    #[test]
    fn calendar_parts_round_trip() {
        let t = calendar::YR + 2 * calendar::MO + 3 * calendar::DAY + 4 * calendar::HR + 5;
        let p = CalendarParts::from_ms(t);
        assert_eq!(p.yr, 1);
        assert_eq!(p.mo, 3); // 1-based
        assert_eq!(p.day, 4); // 1-based
        assert_eq!(p.hr, 4);
        assert_eq!(p.ms, 5);
    }

    #[test]
    fn at_hour_matches_daily() {
        let nine = TimeSpec::at_hour(9);
        assert!(nine.matches(9 * calendar::HR));
        assert!(nine.matches(calendar::DAY + 9 * calendar::HR));
        assert!(!nine.matches(10 * calendar::HR));
        // unspecified finer fields pin to zero
        assert!(!nine.matches(9 * calendar::HR + 1));
    }

    #[test]
    fn next_match_after_recurs_daily() {
        let nine = TimeSpec::at_hour(9);
        assert_eq!(nine.next_match_after(0), Some(9 * calendar::HR));
        assert_eq!(
            nine.next_match_after(9 * calendar::HR),
            Some(calendar::DAY + 9 * calendar::HR)
        );
        assert_eq!(
            nine.next_match_after(10 * calendar::HR),
            Some(calendar::DAY + 9 * calendar::HR)
        );
    }

    #[test]
    fn next_match_fully_specified_is_one_shot() {
        let spec = TimeSpec {
            yr: Some(0),
            hr: Some(9),
            ..Default::default()
        };
        assert_eq!(spec.next_match_after(0), Some(9 * calendar::HR));
        assert_eq!(spec.next_match_after(9 * calendar::HR), None);
    }

    #[test]
    fn timespec_display() {
        let s = TimeSpec {
            hr: Some(2),
            min: Some(30),
            ..Default::default()
        };
        assert_eq!(s.to_string(), "time(HR=2, M=30)");
    }
}
