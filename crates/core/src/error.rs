//! Error types for event specification, compilation, and detection.

use std::fmt;

/// Errors raised while validating or compiling an event specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventError {
    /// An illegal qualifier/kind pairing, e.g. `before tcommit`.
    InvalidQualifier {
        /// Rendered event text.
        event: String,
        /// Why the pairing is illegal.
        reason: &'static str,
    },
    /// An operator received a count it cannot accept (`choose 0 (…)`).
    InvalidCount {
        /// Operator name.
        operator: &'static str,
        /// The offending count.
        count: u32,
    },
    /// An n-ary operator received an empty argument list.
    EmptyOperands {
        /// Operator name.
        operator: &'static str,
    },
    /// The `+` modifier applied to `prior` or `sequence` — the paper
    /// proves `prior+(E) ≡ E` and `sequence+(E) ≡ E`, so the forms are
    /// not provided (Section 3.4).
    RedundantPlus {
        /// Operator name.
        operator: &'static str,
    },
    /// Too many distinct masks on one basic event: the disjointness
    /// rewrite (Section 5) needs `2^k` minterms.
    TooManyMasks {
        /// Rendered basic event.
        event: String,
        /// Number of distinct masks found.
        masks: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The combined alphabet (minterms × composite-mask bits) exceeds the
    /// configured limit.
    AlphabetTooLarge {
        /// Computed alphabet size.
        size: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A mask failed to evaluate (type error, unknown name, …).
    Mask(MaskError),
    /// A parse error with position information.
    Parse {
        /// Byte offset in the source text.
        offset: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvalidQualifier { event, reason } => {
                write!(f, "event `{event}` is not allowed: {reason}")
            }
            EventError::InvalidCount { operator, count } => {
                write!(f, "`{operator} {count} (…)` requires a count of at least 1")
            }
            EventError::EmptyOperands { operator } => {
                write!(f, "`{operator}` requires at least one operand")
            }
            EventError::RedundantPlus { operator } => write!(
                f,
                "`{operator}+` is not provided: `{operator}+(E)` is equivalent to `E` \
                 (paper, Section 3.4)"
            ),
            EventError::TooManyMasks { event, masks, max } => write!(
                f,
                "basic event `{event}` carries {masks} distinct masks; the disjointness \
                 rewrite needs 2^{masks} minterms which exceeds the supported maximum of \
                 2^{max}"
            ),
            EventError::AlphabetTooLarge { size, max } => write!(
                f,
                "compiled alphabet would have {size} symbols (maximum {max}); simplify \
                 masks or split the trigger"
            ),
            EventError::Mask(e) => write!(f, "mask error: {e}"),
            EventError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for EventError {}

impl From<MaskError> for EventError {
    fn from(e: MaskError) -> Self {
        EventError::Mask(e)
    }
}

/// Errors raised while evaluating a mask predicate at run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaskError {
    /// Reference to an unbound parameter name.
    UnknownParam(String),
    /// Reference to an unknown object field.
    UnknownField(String),
    /// Call to an unregistered function.
    UnknownFunction(String),
    /// An operator was applied to incompatible types.
    TypeMismatch {
        /// The operation attempted.
        op: String,
        /// Rendered operand types.
        types: String,
    },
    /// The mask did not evaluate to a boolean.
    NotBoolean {
        /// The non-boolean type produced.
        got: &'static str,
    },
    /// Member access on a non-record value.
    NotARecord {
        /// The member requested.
        member: String,
        /// The actual type.
        got: &'static str,
    },
    /// Division by zero.
    DivisionByZero,
    /// A [`crate::Value`] with no literal form in the mask grammar
    /// (`null`, records) was offered as a literal.
    UnsupportedLiteral {
        /// The type of the rejected value.
        got: &'static str,
    },
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::UnknownParam(n) => write!(f, "unknown event parameter `{n}`"),
            MaskError::UnknownField(n) => write!(f, "unknown object field `{n}`"),
            MaskError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            MaskError::TypeMismatch { op, types } => {
                write!(f, "cannot apply `{op}` to {types}")
            }
            MaskError::NotBoolean { got } => {
                write!(f, "mask must evaluate to a boolean, got {got}")
            }
            MaskError::NotARecord { member, got } => {
                write!(f, "cannot access member `{member}` of a {got}")
            }
            MaskError::DivisionByZero => write!(f, "division by zero"),
            MaskError::UnsupportedLiteral { got } => {
                write!(f, "a {got} value has no literal form in the mask grammar")
            }
        }
    }
}

impl std::error::Error for MaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_paper_rules() {
        let e = EventError::RedundantPlus { operator: "prior" };
        assert!(e.to_string().contains("equivalent to `E`"));
        let e = EventError::InvalidCount {
            operator: "choose",
            count: 0,
        };
        assert!(e.to_string().contains("choose 0"));
    }

    #[test]
    fn mask_error_converts() {
        let e: EventError = MaskError::DivisionByZero.into();
        assert!(e.to_string().contains("division by zero"));
    }
}
