//! Incremental detection: the runtime artifact of Section 5.
//!
//! A [`CompiledEvent`] bundles the alphabet (mask minterms + composite
//! mask bits) with the minimal DFA for the event's occurrence language.
//! It is immutable and shared — "for each trigger definition, the
//! transition table of the trigger automaton is kept once (for the
//! class)".
//!
//! A [`Detector`] is the per-object, per-active-trigger monitor: it
//! stores exactly one [`StateId`] — "only a single (integer) variable is
//! required for storing the state … one word per active trigger per
//! object". Posting a basic event costs one mask evaluation per relevant
//! mask plus one table lookup.

use std::sync::Arc;

use ode_automata::{Dfa, StateId, Symbol};

use crate::alphabet::Alphabet;
use crate::error::{EventError, MaskError};
use crate::event::BasicEvent;
use crate::expr::EventExpr;
use crate::lower::{lower, SymExpr};
use crate::mask::MaskEnv;
use crate::value::Value;

/// Compilation statistics, reported by experiment E3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Alphabet size (symbols).
    pub alphabet_len: usize,
    /// States in the intermediate NFA.
    pub nfa_states: usize,
    /// States in the minimal DFA.
    pub dfa_states: usize,
    /// AST node count of the source expression.
    pub expr_size: usize,
}

/// A fully compiled composite event: shareable, immutable.
#[derive(Clone, Debug)]
pub struct CompiledEvent {
    alphabet: Alphabet,
    dfa: Dfa,
    stats: CompileStats,
}

impl CompiledEvent {
    /// Validate, build the alphabet, lower, and compile `expr`.
    pub fn compile(expr: &EventExpr) -> Result<Self, EventError> {
        expr.validate()?;
        let alphabet = Alphabet::build(expr)?;
        Self::compile_with_alphabet(expr, alphabet)
    }

    /// Compile against a caller-supplied alphabet (which must cover the
    /// expression's logical events — typically a class-wide alphabet so
    /// several triggers can share classification work).
    pub fn compile_with_alphabet(expr: &EventExpr, alphabet: Alphabet) -> Result<Self, EventError> {
        expr.validate()?;
        let lowered = lower(expr, &alphabet)?;
        let nfa = crate::compile::compile_nfa(&lowered, alphabet.len())?;
        let dfa = ode_automata::nfa_to_min_dfa(&nfa);
        let stats = CompileStats {
            alphabet_len: alphabet.len(),
            nfa_states: nfa.num_states(),
            dfa_states: dfa.num_states(),
            expr_size: expr.size(),
        };
        Ok(CompiledEvent {
            alphabet,
            dfa,
            stats,
        })
    }

    /// The symbol alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The minimal detection DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Compilation statistics.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// True if this event can never occur (its occurrence language is
    /// empty) — a specification bug worth surfacing at activation time.
    pub fn never_occurs(&self) -> bool {
        self.dfa.is_empty_language()
    }

    /// Lower `expr` against this compiled event's alphabet (used by the
    /// naive baseline to evaluate the same symbol stream).
    pub fn lower_expr(&self, expr: &EventExpr) -> Result<SymExpr, EventError> {
        lower(expr, &self.alphabet)
    }
}

/// The per-object monitor: an `Arc` to the shared table plus one word.
#[derive(Clone, Debug)]
pub struct Detector {
    compiled: Arc<CompiledEvent>,
    state: StateId,
}

impl Detector {
    /// Create a monitor positioned at the DFA start state. Call
    /// [`Detector::activate`] to feed the distinguished `start` point
    /// before posting real events (Section 3.4).
    pub fn new(compiled: Arc<CompiledEvent>) -> Self {
        let state = compiled.dfa.start();
        Detector { compiled, state }
    }

    /// Feed the `start` point, evaluating composite masks against the
    /// activation-time state. Never reports an occurrence (start "is
    /// placed just prior to the first user specified logical event").
    pub fn activate(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        let sym = self.compiled.alphabet.start_symbol(env)?;
        self.state = self.compiled.dfa.step(self.state, sym);
        Ok(())
    }

    /// Post a basic event. Returns `Ok(true)` exactly when the composite
    /// event occurs at this point. Events outside the trigger's alphabet
    /// are invisible and leave the state untouched.
    pub fn post(
        &mut self,
        basic: &BasicEvent,
        args: &[Value],
        env: &dyn MaskEnv,
    ) -> Result<bool, MaskError> {
        match self.compiled.alphabet.classify(basic, args, env)? {
            Some(sym) => Ok(self.step_symbol(sym)),
            None => Ok(false),
        }
    }

    /// Step on a pre-classified symbol (used by replay tooling and by
    /// benches that want to exclude mask evaluation from the timing).
    pub fn step_symbol(&mut self, sym: Symbol) -> bool {
        self.state = self.compiled.dfa.step(self.state, sym);
        self.compiled.dfa.is_accepting(self.state)
    }

    /// The single word of monitoring state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Restore a previously saved state — transaction rollback for
    /// committed-history monitoring (Section 6: "the automaton state is
    /// considered part of the object data structure and hence will be
    /// restored correctly upon abort").
    pub fn set_state(&mut self, state: StateId) {
        self.state = state;
    }

    /// The shared compiled event.
    pub fn compiled(&self) -> &Arc<CompiledEvent> {
        &self.compiled
    }

    /// Whether the monitor currently sits in an accepting state.
    pub fn occurred_now(&self) -> bool {
        self.compiled.dfa.is_accepting(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::mask::{EmptyEnv, MaskExpr};

    fn detector_for(expr: &EventExpr) -> Detector {
        let compiled = Arc::new(CompiledEvent::compile(expr).unwrap());
        let mut d = Detector::new(compiled);
        d.activate(&EmptyEnv).unwrap();
        d
    }

    #[test]
    fn detects_simple_sequence() {
        // after deposit; before withdraw; after withdraw  (trigger T8)
        let expr = EventExpr::sequence([
            EventExpr::after_method("deposit"),
            EventExpr::before_method("withdraw"),
            EventExpr::after_method("withdraw"),
        ]);
        let mut d = detector_for(&expr);
        assert!(!d
            .post(&BasicEvent::after_method("deposit"), &[], &EmptyEnv)
            .unwrap());
        assert!(!d
            .post(&BasicEvent::before_method("withdraw"), &[], &EmptyEnv)
            .unwrap());
        assert!(d
            .post(&BasicEvent::after_method("withdraw"), &[], &EmptyEnv)
            .unwrap());
    }

    #[test]
    fn irrelevant_events_do_not_advance() {
        let expr = EventExpr::sequence([
            EventExpr::after_method("deposit"),
            EventExpr::after_method("withdraw"),
        ]);
        let mut d = detector_for(&expr);
        d.post(&BasicEvent::after_method("deposit"), &[], &EmptyEnv)
            .unwrap();
        let before = d.state();
        // a read of some unrelated method is invisible to this trigger
        d.post(&BasicEvent::after_method("audit"), &[], &EmptyEnv)
            .unwrap();
        assert_eq!(d.state(), before);
        assert!(d
            .post(&BasicEvent::after_method("withdraw"), &[], &EmptyEnv)
            .unwrap());
    }

    #[test]
    fn mask_selects_minterm() {
        // choose 5 (after withdraw(i, q) && q > 100)  — "5thLrgWdrl"
        let big = EventExpr::Logical(
            crate::expr::LogicalEvent::bare(BasicEvent::after_method("withdraw"))
                .with_params(["i", "q"])
                .with_mask(MaskExpr::gt("q", 100i64)),
        );
        let mut d = detector_for(&big.choose(5));
        let w = BasicEvent::after_method("withdraw");
        for i in 0..4 {
            let fired = d
                .post(&w, &[Value::Null, Value::Int(200)], &EmptyEnv)
                .unwrap();
            assert!(!fired, "large withdrawal {i} should not fire yet");
            // small withdrawals never count
            assert!(!d
                .post(&w, &[Value::Null, Value::Int(50)], &EmptyEnv)
                .unwrap());
        }
        assert!(d
            .post(&w, &[Value::Null, Value::Int(500)], &EmptyEnv)
            .unwrap());
        // the 6th does NOT fire (choose, not every)
        assert!(!d
            .post(&w, &[Value::Null, Value::Int(500)], &EmptyEnv)
            .unwrap());
    }

    #[test]
    fn state_is_one_word() {
        assert_eq!(std::mem::size_of::<StateId>(), 4);
        let expr = EventExpr::after_method("a");
        let d = detector_for(&expr);
        // Detector = Arc + u32 state
        let _ = d;
    }

    #[test]
    fn set_state_rolls_back() {
        let expr =
            EventExpr::relative([EventExpr::after_method("a"), EventExpr::after_method("b")]);
        let mut d = detector_for(&expr);
        let saved = d.state();
        d.post(&BasicEvent::after_method("a"), &[], &EmptyEnv)
            .unwrap();
        d.set_state(saved);
        // without the `a`, `b` does not complete the event
        assert!(!d
            .post(&BasicEvent::after_method("b"), &[], &EmptyEnv)
            .unwrap());
    }

    #[test]
    fn never_occurs_flags_contradictions() {
        let a = EventExpr::after_method("a");
        let contradiction = a.clone().and(a.not());
        let c = CompiledEvent::compile(&contradiction).unwrap();
        assert!(c.never_occurs());
        let fine = CompiledEvent::compile(&EventExpr::after_method("a")).unwrap();
        assert!(!fine.never_occurs());
    }

    #[test]
    fn compile_rejects_invalid_events() {
        let bad = EventExpr::basic(BasicEvent::before(EventKind::TCommit));
        assert!(CompiledEvent::compile(&bad).is_err());
    }

    #[test]
    fn stats_are_populated() {
        let expr =
            EventExpr::relative([EventExpr::after_method("a"), EventExpr::after_method("b")]);
        let c = CompiledEvent::compile(&expr).unwrap();
        let s = c.stats();
        assert!(s.dfa_states >= 2);
        assert!(s.nfa_states >= s.dfa_states.min(4));
        assert_eq!(s.alphabet_len, 3); // start + a + b
        assert_eq!(s.expr_size, 3);
    }

    #[test]
    fn detectors_share_compiled_tables() {
        let expr = EventExpr::after_method("a");
        let compiled = Arc::new(CompiledEvent::compile(&expr).unwrap());
        let d1 = Detector::new(Arc::clone(&compiled));
        let d2 = Detector::new(Arc::clone(&compiled));
        assert!(Arc::ptr_eq(d1.compiled(), d2.compiled()));
    }
}
