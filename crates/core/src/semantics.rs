//! The Section 4 reference semantics: event expressions denote **sets of
//! points** of an event history.
//!
//! > "An event expression `E` evaluated in the context of a history `H`,
//! > denoted as `E[H]`, specifies a subset (sub-sequence) of `H`."
//!
//! This module evaluates that denotation directly, by recursion over the
//! expression and over history suffixes — no automata anywhere. It is
//! deliberately the *slow, obviously-correct* implementation: the
//! property-test suite checks, for random expressions and histories, that
//! the compiled DFA accepts `H[..=p]` exactly when `p ∈ E[H]`, and the
//! naive baseline detector (experiment E1) is built on it.
//!
//! Positions are absolute indices into the history. "Evaluated in the
//! context of the history obtained from `H` by deleting all logical
//! events up to and including `hᵢ`" (Section 4 item 6) is implemented by
//! the `from` cursor.

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use ode_automata::Symbol;

use crate::lower::SymExpr;

/// All points of `history` labelled by `expr`, evaluated in the full
/// history context (Section 4).
pub fn occurrences(expr: &SymExpr, history: &[Symbol]) -> BTreeSet<usize> {
    Evaluator::new(history).eval(expr, 0).as_ref().clone()
}

/// Does `expr` occur at the last point of `history`? ("If the rightmost
/// history symbol is labeled then the specified event has just
/// occurred.")
pub fn occurs_at_end(expr: &SymExpr, history: &[Symbol]) -> bool {
    if history.is_empty() {
        return false;
    }
    let last = history.len() - 1;
    occurrences(expr, history).contains(&last)
}

type Points = Rc<BTreeSet<usize>>;

struct Evaluator<'h> {
    history: &'h [Symbol],
    /// Memo keyed by (expression node address, context start).
    memo: HashMap<(usize, usize), Points>,
}

impl<'h> Evaluator<'h> {
    fn new(history: &'h [Symbol]) -> Self {
        Evaluator {
            history,
            memo: HashMap::new(),
        }
    }

    fn eval(&mut self, e: &SymExpr, from: usize) -> Points {
        let key = (e as *const SymExpr as usize, from);
        if let Some(hit) = self.memo.get(&key) {
            return Rc::clone(hit);
        }
        let result: BTreeSet<usize> = match e {
            SymExpr::Empty => BTreeSet::new(),
            SymExpr::Atom(syms) => (from..self.history.len())
                .filter(|&i| syms.contains(&self.history[i]))
                .collect(),
            SymExpr::Or(a, b) => {
                let pa = self.eval(a, from);
                let pb = self.eval(b, from);
                pa.union(&pb).copied().collect()
            }
            SymExpr::And(a, b) => {
                let pa = self.eval(a, from);
                let pb = self.eval(b, from);
                pa.intersection(&pb).copied().collect()
            }
            SymExpr::Not(a) => {
                let pa = self.eval(a, from);
                (from..self.history.len())
                    .filter(|i| !pa.contains(i))
                    .collect()
            }
            SymExpr::Relative(list) => self.eval_relative(list, from),
            SymExpr::RelativePlus(a) => {
                // Fixpoint: points reachable by chaining ≥1 occurrences.
                let mut result: BTreeSet<usize> = self.eval(a, from).as_ref().clone();
                let mut frontier: Vec<usize> = result.iter().copied().collect();
                while let Some(q) = frontier.pop() {
                    for &p in self.eval(a, q + 1).as_ref() {
                        if result.insert(p) {
                            frontier.push(p);
                        }
                    }
                }
                result
            }
            SymExpr::RelativeN(n, a) => {
                let mut cur: BTreeSet<usize> = self.eval(a, from).as_ref().clone();
                for _ in 1..*n {
                    let mut next = BTreeSet::new();
                    for &q in &cur {
                        next.extend(self.eval(a, q + 1).iter().copied());
                    }
                    cur = next;
                }
                cur
            }
            SymExpr::Prior(list) => self.eval_prior(list, from),
            SymExpr::PriorN(n, a) => {
                let pe = self.eval(a, from);
                let mut cur: BTreeSet<usize> = pe.as_ref().clone();
                for _ in 1..*n {
                    cur = match cur.first() {
                        Some(&min) => pe.iter().copied().filter(|&p| p > min).collect(),
                        None => BTreeSet::new(),
                    };
                }
                cur
            }
            SymExpr::Sequence(list) => self.eval_sequence(list, from),
            SymExpr::SequenceN(n, a) => {
                let pe = self.eval(a, from);
                let mut cur: BTreeSet<usize> = pe.as_ref().clone();
                for _ in 1..*n {
                    cur = pe
                        .iter()
                        .copied()
                        .filter(|&p| p > 0 && cur.contains(&(p - 1)))
                        .collect();
                }
                cur
            }
            SymExpr::Choose(n, a) => {
                let pts = self.eval(a, from);
                pts.iter()
                    .nth(*n as usize - 1)
                    .copied()
                    .into_iter()
                    .collect()
            }
            SymExpr::Every(n, a) => {
                let pts = self.eval(a, from);
                pts.iter()
                    .enumerate()
                    .filter(|(i, _)| (i + 1) % (*n as usize) == 0)
                    .map(|(_, &p)| p)
                    .collect()
            }
            SymExpr::Fa(e, f, g) => {
                let qs = self.eval(e, from);
                let mut out = BTreeSet::new();
                for &q in qs.as_ref().clone().iter() {
                    let fs = self.eval(f, q + 1);
                    let Some(&p) = fs.first() else { continue };
                    let gs = self.eval(g, q + 1);
                    // "no intervening event G … prior to the occurrence
                    // of the logical event p"
                    if gs.iter().all(|&gp| gp >= p) {
                        out.insert(p);
                    }
                }
                out
            }
            SymExpr::FaAbs(e, f, g) => {
                let qs = self.eval(e, from);
                let gs_abs = self.eval(g, from);
                let mut out = BTreeSet::new();
                for &q in qs.as_ref().clone().iter() {
                    let fs = self.eval(f, q + 1);
                    let Some(&p) = fs.first() else { continue };
                    if gs_abs.iter().all(|&gp| gp <= q || gp >= p) {
                        out.insert(p);
                    }
                }
                out
            }
        };
        let rc = Rc::new(result);
        self.memo.insert(key, Rc::clone(&rc));
        rc
    }

    fn eval_relative(&mut self, list: &[SymExpr], from: usize) -> BTreeSet<usize> {
        let Some((first, rest)) = list.split_first() else {
            return BTreeSet::new();
        };
        let mut cur: BTreeSet<usize> = self.eval(first, from).as_ref().clone();
        for f in rest {
            let mut next = BTreeSet::new();
            for &q in &cur {
                next.extend(self.eval(f, q + 1).iter().copied());
            }
            cur = next;
        }
        cur
    }

    fn eval_prior(&mut self, list: &[SymExpr], from: usize) -> BTreeSet<usize> {
        let Some((first, rest)) = list.split_first() else {
            return BTreeSet::new();
        };
        let mut cur: BTreeSet<usize> = self.eval(first, from).as_ref().clone();
        for f in rest {
            let pf = self.eval(f, from);
            cur = match cur.first() {
                Some(&min) => pf.iter().copied().filter(|&p| p > min).collect(),
                None => BTreeSet::new(),
            };
        }
        cur
    }

    fn eval_sequence(&mut self, list: &[SymExpr], from: usize) -> BTreeSet<usize> {
        let Some((first, rest)) = list.split_first() else {
            return BTreeSet::new();
        };
        let mut cur: BTreeSet<usize> = self.eval(first, from).as_ref().clone();
        for f in rest {
            let pf = self.eval(f, from);
            cur = pf
                .iter()
                .copied()
                .filter(|&p| p > 0 && cur.contains(&(p - 1)))
                .collect();
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: Symbol) -> SymExpr {
        SymExpr::Atom(vec![s])
    }
    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    // histories use symbols: 0 = a, 1 = b, 2 = c

    #[test]
    fn atom_labels_its_points() {
        let h = [0, 1, 0, 2, 0];
        assert_eq!(occurrences(&atom(0), &h), set(&[0, 2, 4]));
        assert_eq!(occurrences(&atom(2), &h), set(&[3]));
    }

    #[test]
    fn empty_labels_nothing() {
        assert_eq!(occurrences(&SymExpr::Empty, &[0, 1]), set(&[]));
    }

    #[test]
    fn not_is_pointwise_complement() {
        let h = [0, 1, 0];
        let e = SymExpr::Not(Box::new(atom(0)));
        assert_eq!(occurrences(&e, &h), set(&[1]));
    }

    #[test]
    fn and_or_are_set_ops() {
        let h = [0, 1, 0];
        let union = SymExpr::Or(Box::new(atom(0)), Box::new(atom(1)));
        assert_eq!(occurrences(&union, &h), set(&[0, 1, 2]));
        let both = SymExpr::And(Box::new(atom(0)), Box::new(atom(1)));
        assert_eq!(occurrences(&both, &h), set(&[]));
    }

    #[test]
    fn relative_shifts_context() {
        // relative(a, b): b-points strictly after some a-point.
        let h = [1, 0, 1, 1];
        let e = SymExpr::Relative(vec![atom(0), atom(1)]);
        assert_eq!(occurrences(&e, &h), set(&[2, 3]));
    }

    /// The paper's own discriminating example (Section 3.4): history
    /// `F1 E1 E2 F2` with E = relative(E1,E2), F = relative(F1,F2):
    /// prior(E, F) occurs at F2 but relative(E, F) does not.
    #[test]
    fn paper_prior_vs_relative_example() {
        // symbols: E1=0, E2=1, F1=2, F2=3; history: F1 E1 E2 F2
        let h = [2, 0, 1, 3];
        let e = SymExpr::Relative(vec![atom(0), atom(1)]);
        let f = SymExpr::Relative(vec![atom(2), atom(3)]);
        let prior = SymExpr::Prior(vec![e.clone(), f.clone()]);
        let relative = SymExpr::Relative(vec![e, f]);
        assert_eq!(occurrences(&prior, &h), set(&[3]));
        assert_eq!(occurrences(&relative, &h), set(&[]));
    }

    #[test]
    fn sequence_requires_adjacency() {
        let h = [0, 1, 0, 2, 1];
        let e = SymExpr::Sequence(vec![atom(0), atom(1)]);
        assert_eq!(occurrences(&e, &h), set(&[1]));
    }

    #[test]
    fn relative_plus_chains() {
        let h = [0, 0, 1, 0];
        let e = SymExpr::RelativePlus(Box::new(atom(0)));
        assert_eq!(occurrences(&e, &h), set(&[0, 1, 3]));
    }

    #[test]
    fn relative_n_is_nth_and_subsequent() {
        // relative 2 (a) labels the 2nd and later a's.
        let h = [0, 1, 0, 0];
        let e = SymExpr::RelativeN(2, Box::new(atom(0)));
        assert_eq!(occurrences(&e, &h), set(&[2, 3]));
    }

    #[test]
    fn prior_n_matches_relative_n_on_logical_events() {
        // For plain logical events the two coincide (Section 3.4).
        let h = [0, 1, 0, 0, 1, 0];
        let rel = SymExpr::RelativeN(3, Box::new(atom(0)));
        let pri = SymExpr::PriorN(3, Box::new(atom(0)));
        assert_eq!(occurrences(&rel, &h), occurrences(&pri, &h));
        assert_eq!(occurrences(&rel, &h), set(&[3, 5]));
    }

    #[test]
    fn choose_selects_exactly_one() {
        let h = [0, 1, 0, 0];
        let e = SymExpr::Choose(2, Box::new(atom(0)));
        assert_eq!(occurrences(&e, &h), set(&[2]));
        let e = SymExpr::Choose(5, Box::new(atom(0)));
        assert_eq!(occurrences(&e, &h), set(&[]));
    }

    #[test]
    fn every_selects_multiples() {
        let h = [0, 0, 0, 0, 0];
        let e = SymExpr::Every(2, Box::new(atom(0)));
        assert_eq!(occurrences(&e, &h), set(&[1, 3]));
    }

    #[test]
    fn fa_takes_first_f_unless_g_intervenes() {
        // fa(a, b, c) over: a c b b — c intervenes before first b → ∅
        let h = [0, 2, 1, 1];
        let e = SymExpr::Fa(Box::new(atom(0)), Box::new(atom(1)), Box::new(atom(2)));
        assert_eq!(occurrences(&e, &h), set(&[]));
        // a b c b: first b at 1, no g before → {1}
        let h = [0, 1, 2, 1];
        assert_eq!(occurrences(&e, &h), set(&[1]));
    }

    #[test]
    fn fa_g_at_f_point_is_allowed() {
        // G and F at the same point cannot happen (symbols disjoint), but
        // g exactly AT p means gp >= p → allowed by the strictness rule.
        // Construct with F = (b|c), G = c: history a c → F occurs at 1,
        // G also at 1; "no intervening G prior to p" holds.
        let f = SymExpr::Or(Box::new(atom(1)), Box::new(atom(2)));
        let e = SymExpr::Fa(Box::new(atom(0)), Box::new(f), Box::new(atom(2)));
        let h = [0, 2];
        assert_eq!(occurrences(&e, &h), set(&[1]));
    }

    #[test]
    fn fa_multiple_e_points_union() {
        // each a spawns its own first-b search
        let h = [0, 1, 0, 2, 1];
        // fa(a, b, c): from a@0: first b at 1 (no c before) → 1.
        // from a@2: first b at 4, but c@3 intervenes → excluded.
        let e = SymExpr::Fa(Box::new(atom(0)), Box::new(atom(1)), Box::new(atom(2)));
        assert_eq!(occurrences(&e, &h), set(&[1]));
    }

    #[test]
    fn fa_abs_guard_is_absolute() {
        // faAbs(E, F, G) with G before E's point: not intervening.
        // history: c a b — G at 0 is ≤ q=1 → allowed.
        let e = SymExpr::FaAbs(Box::new(atom(0)), Box::new(atom(1)), Box::new(atom(2)));
        let h = [2, 0, 1];
        assert_eq!(occurrences(&e, &h), set(&[2]));
        // history: a c b — G at 1 strictly between q=0 and p=2 → blocked.
        let h = [0, 2, 1];
        assert_eq!(occurrences(&e, &h), set(&[]));
    }

    #[test]
    fn fa_vs_fa_abs_differ_on_guard_context() {
        // G = relative(c, c): needs two c's.
        // history: c a c b
        //   fa: from a@1, truncated context [c b]: G=relative(c,c) needs
        //       two c's after a — absent → b@3 fires.
        //   faAbs: absolute context has c@0, c@2 → G occurs at 2, which
        //       lies strictly between q=1 and p=3 → blocked.
        let g = SymExpr::Relative(vec![atom(2), atom(2)]);
        let h = [2, 0, 2, 1];
        let fa = SymExpr::Fa(Box::new(atom(0)), Box::new(atom(1)), Box::new(g.clone()));
        let fa_abs = SymExpr::FaAbs(Box::new(atom(0)), Box::new(atom(1)), Box::new(g));
        assert_eq!(occurrences(&fa, &h), set(&[3]));
        assert_eq!(occurrences(&fa_abs, &h), set(&[]));
    }

    #[test]
    fn occurs_at_end_checks_rightmost() {
        let e = SymExpr::Relative(vec![atom(0), atom(1)]);
        assert!(occurs_at_end(&e, &[0, 1]));
        assert!(!occurs_at_end(&e, &[0, 1, 0]));
        assert!(!occurs_at_end(&e, &[]));
    }

    #[test]
    fn footnote_4_relative_self_reference() {
        // Paper footnote 4: E = F & !prior(F, F). Given "F F", E occurs
        // at the first F but not the second; relative(E, E) occurs at the
        // second but not the first.
        let f = atom(0);
        let e = SymExpr::And(
            Box::new(f.clone()),
            Box::new(SymExpr::Not(Box::new(SymExpr::Prior(vec![
                f.clone(),
                f.clone(),
            ])))),
        );
        let h = [0, 0];
        assert_eq!(occurrences(&e, &h), set(&[0]));
        let rel = SymExpr::Relative(vec![e.clone(), e]);
        assert_eq!(occurrences(&rel, &h), set(&[1]));
    }
}
