//! Class-level event routing: classify each posted basic event once,
//! fan dense symbols out to the relevant triggers.
//!
//! Section 5 keeps one transition table per trigger ("the transition
//! table of the trigger automaton is kept once, for the class") and one
//! word of state per active trigger per object. The naive posting loop,
//! however, pays per *trigger* for work that is really per *class*:
//!
//! * every trigger re-hashes the posted [`BasicEvent`] in its private
//!   alphabet's `HashMap` just to discover relevance, and
//! * triggers whose logical events share masks re-evaluate those masks.
//!
//! A [`ClassRouter`] is built once, at class-registration time, from the
//! alphabets of all the class's trigger definitions:
//!
//! * basic events are interned into dense [`EventCode`]s
//!   ([`EventInterner`]) — resolving a posted event costs one hash
//!   lookup *per posting* (or none, when the caller pre-resolved the
//!   code at registration time), not one per trigger;
//! * a relevance index maps each code to the [`Route`]s of the triggers
//!   that mention it — irrelevant triggers are skipped without any work;
//! * group masks and composite masks are deduplicated class-wide, and a
//!   per-posting [`MaskMemo`] guarantees each *distinct* mask is
//!   evaluated at most once per posting;
//! * each route carries a precomputed remap (class mask ids in the
//!   trigger's own bit order, plus the trigger's group base and global
//!   shift), so the class-level mask outcomes translate into each
//!   trigger's private symbol with a few shifts and ors.
//!
//! The routed symbol is bit-for-bit identical to what the trigger's own
//! [`Alphabet::classify`] would produce, so detection semantics — and
//! the "one `StateId` word per active trigger per object" invariant —
//! are untouched; only the classification cost model changes.

use std::collections::HashMap;

use ode_automata::Symbol;

use crate::alphabet::{Alphabet, BoundEnv};
use crate::error::MaskError;
use crate::event::BasicEvent;
use crate::mask::{MaskEnv, MaskExpr};
use crate::value::Value;

/// Dense identifier of a basic event within one class's union alphabet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventCode(u32);

impl EventCode {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns basic events into dense [`EventCode`]s.
#[derive(Clone, Debug, Default)]
pub struct EventInterner {
    index: HashMap<BasicEvent, u32>,
    events: Vec<BasicEvent>,
}

impl EventInterner {
    /// Intern `basic`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, basic: &BasicEvent) -> EventCode {
        if let Some(&i) = self.index.get(basic) {
            return EventCode(i);
        }
        let i = self.events.len() as u32;
        self.index.insert(basic.clone(), i);
        self.events.push(basic.clone());
        EventCode(i)
    }

    /// Resolve a basic event to its code — one hash lookup, `None` when
    /// no trigger of the class mentions the event.
    pub fn code(&self, basic: &BasicEvent) -> Option<EventCode> {
        self.index.get(basic).map(|&i| EventCode(i))
    }

    /// The interned event for a code.
    pub fn event(&self, code: EventCode) -> &BasicEvent {
        &self.events[code.index()]
    }

    /// Number of interned events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All interned events with their codes (registration-time scan —
    /// engines build qualifier/kind-indexed resolve tables from this).
    pub fn iter(&self) -> impl Iterator<Item = (EventCode, &BasicEvent)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (EventCode(i as u32), e))
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One trigger's stake in one basic event: everything needed to rebuild
/// the symbol its private alphabet would classify the posting into.
#[derive(Clone, Debug)]
pub struct Route {
    /// Caller-supplied trigger identifier (the engine passes the
    /// trigger's definition index within its class).
    pub trigger: usize,
    /// Position of the event's group within the trigger's own alphabet
    /// (dense per-trigger slot — used to key captured-argument storage).
    pub slot: usize,
    /// First raw symbol of the group's minterm block in the trigger's
    /// alphabet.
    base: usize,
    /// Class-wide mask ids, in the group's own bit order: bit `i` of the
    /// minterm is the outcome of class mask `group_bits[i]`.
    group_bits: Vec<u32>,
    /// Class-wide composite-mask ids, in the trigger's global-bit order.
    global_bits: Vec<u32>,
    /// The trigger's global-mask count (raw symbols shift left by this).
    shift: u32,
}

/// Per-posting memo: each distinct class-wide mask is evaluated at most
/// once per posting. Epoch-stamped so the buffer can be reused across
/// postings without clearing.
#[derive(Clone, Debug, Default)]
pub struct MaskMemo {
    group: Vec<(u64, Result<bool, MaskError>)>,
    global: Vec<(u64, Result<bool, MaskError>)>,
    epoch: u64,
}

impl MaskMemo {
    /// Start a new posting: all memoized outcomes become stale.
    pub fn begin(&mut self, router: &ClassRouter) {
        self.epoch += 1;
        if self.group.len() < router.group_masks.len() {
            self.group.resize(router.group_masks.len(), (0, Ok(false)));
        }
        if self.global.len() < router.global_masks.len() {
            self.global
                .resize(router.global_masks.len(), (0, Ok(false)));
        }
    }

    fn eval_group(
        &mut self,
        router: &ClassRouter,
        id: u32,
        args: &[Value],
        env: &dyn MaskEnv,
    ) -> Result<bool, MaskError> {
        let slot = &mut self.group[id as usize];
        if slot.0 != self.epoch {
            let (params, mask) = &router.group_masks[id as usize];
            let bound = BoundEnv {
                names: params,
                args,
                inner: env,
            };
            *slot = (self.epoch, mask.eval_bool(&bound));
        }
        slot.1.clone()
    }

    fn eval_global(
        &mut self,
        router: &ClassRouter,
        id: u32,
        env: &dyn MaskEnv,
    ) -> Result<bool, MaskError> {
        let slot = &mut self.global[id as usize];
        if slot.0 != self.epoch {
            let bound = BoundEnv {
                names: &[],
                args: &[],
                inner: env,
            };
            *slot = (
                self.epoch,
                router.global_masks[id as usize].eval_bool(&bound),
            );
        }
        slot.1.clone()
    }
}

/// The class-level router: relevance index + mask dedup + symbol remaps
/// over the alphabets of all the class's trigger definitions.
#[derive(Clone, Debug, Default)]
pub struct ClassRouter {
    interner: EventInterner,
    /// Distinct `(declared-params, mask)` pairs across all groups of all
    /// trigger alphabets.
    group_masks: Vec<(Vec<String>, MaskExpr)>,
    /// Distinct composite masks across all trigger alphabets.
    global_masks: Vec<MaskExpr>,
    /// Routes per event code, in trigger registration order.
    routes: Vec<Vec<Route>>,
}

impl ClassRouter {
    /// Build a router over `(trigger-id, alphabet)` pairs. Trigger ids
    /// are opaque to the router and come back on each [`Route`]; the
    /// iteration order fixes the fan-out order per event (and thereby
    /// the mask-error precedence, matching a per-trigger classify loop).
    pub fn build<'a>(triggers: impl IntoIterator<Item = (usize, &'a Alphabet)>) -> ClassRouter {
        let mut router = ClassRouter::default();
        for (trigger, alphabet) in triggers {
            let global_bits: Vec<u32> = alphabet
                .global_masks()
                .iter()
                .map(|m| router.intern_global(m))
                .collect();
            let shift = global_bits.len() as u32;
            for (slot, group) in alphabet.groups().iter().enumerate() {
                let code = router.interner.intern(&group.basic);
                let group_bits = group
                    .masks
                    .iter()
                    .map(|key| router.intern_group_mask(key))
                    .collect();
                if router.routes.len() <= code.index() {
                    router.routes.resize_with(code.index() + 1, Vec::new);
                }
                router.routes[code.index()].push(Route {
                    trigger,
                    slot,
                    base: group.base_symbol(),
                    group_bits,
                    global_bits: global_bits.clone(),
                    shift,
                });
            }
        }
        router
    }

    fn intern_group_mask(&mut self, key: &(Vec<String>, MaskExpr)) -> u32 {
        match self.group_masks.iter().position(|k| k == key) {
            Some(i) => i as u32,
            None => {
                self.group_masks.push(key.clone());
                (self.group_masks.len() - 1) as u32
            }
        }
    }

    fn intern_global(&mut self, mask: &MaskExpr) -> u32 {
        match self.global_masks.iter().position(|m| m == mask) {
            Some(i) => i as u32,
            None => {
                self.global_masks.push(mask.clone());
                (self.global_masks.len() - 1) as u32
            }
        }
    }

    /// The event interner (pre-resolve codes at registration time).
    pub fn interner(&self) -> &EventInterner {
        &self.interner
    }

    /// Resolve a posted basic event — `None` means no trigger of the
    /// class mentions it, so the posting is invisible to every trigger.
    pub fn code(&self, basic: &BasicEvent) -> Option<EventCode> {
        self.interner.code(basic)
    }

    /// The routes of the triggers that mention `code`, in registration
    /// order.
    pub fn routes(&self, code: EventCode) -> &[Route] {
        self.routes
            .get(code.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct group masks across the class.
    pub fn distinct_group_masks(&self) -> usize {
        self.group_masks.len()
    }

    /// Number of distinct composite masks across the class.
    pub fn distinct_global_masks(&self) -> usize {
        self.global_masks.len()
    }

    /// Compute the symbol `route`'s trigger would classify this posting
    /// into: evaluate the route's masks (memoized class-wide) and remap
    /// the outcomes into the trigger's private minterm and global bits.
    ///
    /// Equals `alphabet.classify(basic, args, env)` of the route's
    /// trigger, bit for bit.
    pub fn symbol(
        &self,
        route: &Route,
        args: &[Value],
        env: &dyn MaskEnv,
        memo: &mut MaskMemo,
    ) -> Result<Symbol, MaskError> {
        let mut minterm = 0usize;
        for (bit, &id) in route.group_bits.iter().enumerate() {
            if memo.eval_group(self, id, args, env)? {
                minterm |= 1 << bit;
            }
        }
        let mut global = 0usize;
        for (bit, &id) in route.global_bits.iter().enumerate() {
            if memo.eval_global(self, id, env)? {
                global |= 1 << bit;
            }
        }
        Ok((((route.base + minterm) << route.shift) | global) as Symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::expr::{EventExpr, LogicalEvent};
    use crate::mask::EmptyEnv;
    use std::cell::Cell;

    fn masked_withdraw(n: i64) -> EventExpr {
        EventExpr::Logical(
            LogicalEvent::bare(BasicEvent::after_method("withdraw"))
                .with_params(["i", "q"])
                .with_mask(MaskExpr::gt("q", n)),
        )
    }

    /// Env counting how often masks read the `balance` field.
    struct CountingEnv {
        balance: f64,
        reads: Cell<u32>,
    }

    impl MaskEnv for CountingEnv {
        fn param(&self, _: &str) -> Option<Value> {
            None
        }
        fn field(&self, name: &str) -> Option<Value> {
            self.reads.set(self.reads.get() + 1);
            (name == "balance").then_some(Value::Float(self.balance))
        }
        fn call(&self, _: &str, _: &[Value]) -> Option<Value> {
            None
        }
    }

    fn alphabets(exprs: &[EventExpr]) -> Vec<Alphabet> {
        exprs.iter().map(|e| Alphabet::build(e).unwrap()).collect()
    }

    #[test]
    fn routes_only_to_relevant_triggers() {
        let exprs = [
            EventExpr::after_method("deposit"),
            EventExpr::after_method("withdraw"),
            EventExpr::after_method("deposit").or(EventExpr::after_method("audit")),
        ];
        let alphas = alphabets(&exprs);
        let router = ClassRouter::build(alphas.iter().enumerate());
        let dep = router.code(&BasicEvent::after_method("deposit")).unwrap();
        let hit: Vec<usize> = router.routes(dep).iter().map(|r| r.trigger).collect();
        assert_eq!(hit, [0, 2]);
        assert!(router.code(&BasicEvent::after_method("transfer")).is_none());
        assert!(router
            .code(&BasicEvent::after(EventKind::TCommit))
            .is_none());
    }

    #[test]
    fn routed_symbol_matches_per_trigger_classify() {
        // Three triggers with overlapping masked groups and a composite
        // mask: the routed symbol must equal each trigger's own
        // classification bit for bit.
        let exprs = [
            masked_withdraw(100).or(masked_withdraw(1000)),
            masked_withdraw(100),
            EventExpr::after_method("withdraw")
                .or(masked_withdraw(1000))
                .masked(MaskExpr::lt("balance", 500.0)),
        ];
        let alphas = alphabets(&exprs);
        let router = ClassRouter::build(alphas.iter().enumerate());
        let ev = BasicEvent::after_method("withdraw");
        let mut memo = MaskMemo::default();
        for q in [5i64, 500, 5000] {
            for balance in [100.0, 900.0] {
                let env = CountingEnv {
                    balance,
                    reads: Cell::new(0),
                };
                let args = [Value::Null, Value::Int(q)];
                memo.begin(&router);
                let code = router.code(&ev).unwrap();
                for route in router.routes(code) {
                    let routed = router.symbol(route, &args, &env, &mut memo).unwrap();
                    let direct = alphas[route.trigger]
                        .classify(&ev, &args, &env)
                        .unwrap()
                        .unwrap();
                    assert_eq!(
                        routed, direct,
                        "trigger {} q={q} bal={balance}",
                        route.trigger
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_masks_evaluated_at_most_once_per_posting() {
        // Five triggers sharing one composite mask that reads `balance`:
        // the field must be read exactly once per posting, not five times.
        let exprs: Vec<EventExpr> = (0..5)
            .map(|_| EventExpr::after_method("m").masked(MaskExpr::lt("balance", 500.0)))
            .collect();
        let alphas = alphabets(&exprs);
        let router = ClassRouter::build(alphas.iter().enumerate());
        assert_eq!(router.distinct_global_masks(), 1);
        let env = CountingEnv {
            balance: 100.0,
            reads: Cell::new(0),
        };
        let mut memo = MaskMemo::default();
        memo.begin(&router);
        let code = router.code(&BasicEvent::after_method("m")).unwrap();
        assert_eq!(router.routes(code).len(), 5);
        for route in router.routes(code) {
            router.symbol(route, &[], &env, &mut memo).unwrap();
        }
        assert_eq!(env.reads.get(), 1, "shared mask must be memoized");
        // A new posting re-evaluates.
        memo.begin(&router);
        for route in router.routes(code) {
            router.symbol(route, &[], &env, &mut memo).unwrap();
        }
        assert_eq!(env.reads.get(), 2);
    }

    #[test]
    fn group_masks_memoize_across_triggers() {
        // Two triggers using the identical (params, mask) pair: one
        // evaluation serves both; a trigger with different declared
        // params is a distinct mask.
        let exprs = [
            masked_withdraw(100),
            masked_withdraw(100),
            EventExpr::Logical(
                LogicalEvent::bare(BasicEvent::after_method("withdraw"))
                    .with_params(["x", "q"])
                    .with_mask(MaskExpr::gt("q", 100)),
            ),
        ];
        let alphas = alphabets(&exprs);
        let router = ClassRouter::build(alphas.iter().enumerate());
        assert_eq!(router.distinct_group_masks(), 2);
    }

    #[test]
    fn mask_errors_propagate_and_stay_memoized() {
        let exprs = [masked_withdraw(100), masked_withdraw(100)];
        let alphas = alphabets(&exprs);
        let router = ClassRouter::build(alphas.iter().enumerate());
        let mut memo = MaskMemo::default();
        memo.begin(&router);
        let code = router.code(&BasicEvent::after_method("withdraw")).unwrap();
        // No args bound: `q` is unknown — both routes must report the
        // same error without re-evaluating.
        for route in router.routes(code) {
            assert!(router.symbol(route, &[], &EmptyEnv, &mut memo).is_err());
        }
    }

    #[test]
    fn empty_router_is_inert() {
        let router = ClassRouter::build(std::iter::empty());
        assert!(router.code(&BasicEvent::after_method("m")).is_none());
        assert!(router.interner().is_empty());
    }
}
