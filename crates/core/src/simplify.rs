//! Algebraic simplification of event expressions.
//!
//! A light rewrite pass applied before compilation: it shrinks the
//! intermediate NFA by folding the identities the Section 4 model
//! guarantees (`∅` absorption, singleton curried forms, `relative 1`,
//! idempotent union, double negation, …). Every rewrite preserves the
//! occurrence language — property-tested against the compiler.

use crate::expr::EventExpr;

/// Simplify an expression. The result denotes the same event.
pub fn simplify(expr: &EventExpr) -> EventExpr {
    use EventExpr::*;
    match expr {
        Empty | Logical(_) => expr.clone(),
        Or(a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            match (a, b) {
                (Empty, x) | (x, Empty) => x,
                (a, b) if a == b => a,
                (a, b) => a.or(b),
            }
        }
        And(a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            match (a, b) {
                (Empty, _) | (_, Empty) => Empty,
                (a, b) if a == b => a,
                (a, b) => a.and(b),
            }
        }
        Not(a) => {
            let a = simplify(a);
            match a {
                // !!E ≡ E (complement is an involution on point sets)
                Not(inner) => *inner,
                a => a.not(),
            }
        }
        Relative(list) => {
            let list: Vec<EventExpr> = list.iter().map(simplify).collect();
            if list.iter().any(|e| matches!(e, Empty)) {
                return Empty; // a component that never occurs blocks the chain
            }
            match list.len() {
                0 => Empty,
                1 => list.into_iter().next().expect("len checked"),
                _ => {
                    // flatten nested relative chains (associativity)
                    let mut flat = Vec::new();
                    for e in list {
                        match e {
                            Relative(inner) => flat.extend(inner),
                            other => flat.push(other),
                        }
                    }
                    Relative(flat)
                }
            }
        }
        RelativePlus(a) => {
            let a = simplify(a);
            match a {
                Empty => Empty,
                // (E⁺)⁺ ≡ E⁺
                RelativePlus(inner) => RelativePlus(inner),
                a => a.relative_plus(),
            }
        }
        RelativeN(n, a) => {
            let a = simplify(a);
            match (n, a) {
                (_, Empty) => Empty,
                (1, a) => a,
                (n, a) => a.relative_n(*n),
            }
        }
        Prior(list) => {
            let list: Vec<EventExpr> = list.iter().map(simplify).collect();
            if list.iter().any(|e| matches!(e, Empty)) {
                return Empty;
            }
            match list.len() {
                0 => Empty,
                1 => list.into_iter().next().expect("len checked"),
                _ => Prior(list),
            }
        }
        PriorN(n, a) => {
            let a = simplify(a);
            match (n, a) {
                (_, Empty) => Empty,
                (1, a) => a,
                (n, a) => a.prior_n(*n),
            }
        }
        Sequence(list) => {
            let list: Vec<EventExpr> = list.iter().map(simplify).collect();
            if list.iter().any(|e| matches!(e, Empty)) {
                return Empty;
            }
            match list.len() {
                0 => Empty,
                1 => list.into_iter().next().expect("len checked"),
                _ => {
                    let mut flat = Vec::new();
                    for e in list {
                        match e {
                            Sequence(inner) => flat.extend(inner),
                            other => flat.push(other),
                        }
                    }
                    Sequence(flat)
                }
            }
        }
        SequenceN(n, a) => {
            let a = simplify(a);
            match (n, a) {
                (_, Empty) => Empty,
                (1, a) => a,
                (n, a) => a.sequence_n(*n),
            }
        }
        Choose(n, a) => {
            let a = simplify(a);
            match a {
                Empty => Empty,
                a => a.choose(*n),
            }
        }
        Every(n, a) => {
            let a = simplify(a);
            match (n, a) {
                (_, Empty) => Empty,
                (1, a) => a, // every 1 (E) ≡ E
                (n, a) => a.every(*n),
            }
        }
        Fa(e, f, g) => {
            let e = simplify(e);
            let f = simplify(f);
            let g = simplify(g);
            if matches!(e, Empty) || matches!(f, Empty) {
                return Empty;
            }
            EventExpr::fa(e, f, g)
        }
        FaAbs(e, f, g) => {
            let e = simplify(e);
            let f = simplify(f);
            let g = simplify(g);
            if matches!(e, Empty) || matches!(f, Empty) {
                return Empty;
            }
            EventExpr::fa_abs(e, f, g)
        }
        Masked(a, m) => {
            let a = simplify(a);
            match a {
                Empty => Empty,
                a => a.masked(m.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event;

    fn simp(src: &str) -> EventExpr {
        simplify(&parse_event(src).unwrap())
    }

    #[test]
    fn identities_fold() {
        assert_eq!(simp("after a | empty"), parse_event("after a").unwrap());
        assert_eq!(simp("after a & empty"), EventExpr::Empty);
        assert_eq!(simp("relative(after a, empty)"), EventExpr::Empty);
        assert_eq!(simp("relative(after a)"), parse_event("after a").unwrap());
        assert_eq!(
            simp("relative 1 (after a)"),
            parse_event("after a").unwrap()
        );
        assert_eq!(simp("every 1 (after a)"), parse_event("after a").unwrap());
        assert_eq!(simp("!!after a"), parse_event("after a").unwrap());
        assert_eq!(simp("after a | after a"), parse_event("after a").unwrap());
    }

    #[test]
    fn relative_chains_flatten() {
        let flat = simp("relative(relative(after a, after b), after c)");
        assert!(matches!(flat, EventExpr::Relative(ref v) if v.len() == 3));
    }

    #[test]
    fn choose_one_is_not_folded() {
        // choose 1 (E) is the FIRST occurrence — not E itself.
        let e = simp("choose 1 (after a)");
        assert!(matches!(e, EventExpr::Choose(1, _)));
    }

    #[test]
    fn simplification_preserves_language() {
        use crate::detector::CompiledEvent;
        let sources = [
            "relative(after a | empty, relative(after b, after c))",
            "!(!(after a)) & (after b | after b)",
            "fa(after a, after b | empty, empty)",
            "sequence(sequence(after a, after b), after c)",
            "every 1 (prior(after a, after b))",
            "relative 1 (choose 2 (after a))",
            "(after a & empty) | after b",
        ];
        for src in sources {
            let original = parse_event(src).unwrap();
            let simplified = simplify(&original);
            // Compile both against the ORIGINAL's alphabet so symbol
            // identities line up even when simplification drops events.
            let alphabet = crate::alphabet::Alphabet::build(&original).unwrap();
            let c1 = CompiledEvent::compile_with_alphabet(&original, alphabet.clone()).unwrap();
            let c2 = CompiledEvent::compile_with_alphabet(&simplified, alphabet).unwrap();
            assert!(
                c1.dfa().equivalent(c2.dfa()),
                "simplification changed `{src}` -> `{simplified}`"
            );
            assert!(simplified.size() <= original.size(), "{src}");
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        for src in [
            "relative(relative(after a, after b), relative(after c, after a))",
            "!!(!after a)",
            "after a | (after b | after a)",
        ] {
            let once = simp(src);
            let twice = simplify(&once);
            assert_eq!(once, twice, "{src}");
        }
    }
}
