//! Runtime values for event parameters, object fields, and mask
//! evaluation.
//!
//! O++ masks are C++ boolean expressions over event parameters and object
//! state (`after withdraw(Item i, int q) && q > 1000`, Section 3.2). This
//! module provides the dynamically-typed value universe those expressions
//! evaluate over, including records so that parameter member access like
//! `i.balance` (trigger T2, Section 3.5) works.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed value.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / SQL-ish null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (O++ `int`/`long`).
    Int(i64),
    /// Double-precision float (O++ `float`/`double`).
    Float(f64),
    /// String.
    Str(String),
    /// A record with named fields — models O++ struct/class values such
    /// as the `Item` parameter of `withdraw(Item i, int q)`.
    Record(BTreeMap<String, Value>),
}

impl Value {
    /// Build a record from `(name, value)` pairs.
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Truthiness for mask evaluation: `Bool` is itself; every other type
    /// is a type error (masks must be boolean-valued, Section 3.3).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view, coercing `Int` to `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Record member access (`i.balance`).
    pub fn member(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(m) => m.get(name),
            _ => None,
        }
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Record(_) => "record",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Record(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
    }

    #[test]
    fn as_float_coerces_int() {
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_float(), None);
    }

    #[test]
    fn record_member_access() {
        let item = Value::record([("balance", Value::Int(40)), ("name", "bolt".into())]);
        assert_eq!(item.member("balance"), Some(&Value::Int(40)));
        assert_eq!(item.member("missing"), None);
        assert_eq!(Value::Int(1).member("x"), None);
    }

    #[test]
    fn display_is_stable() {
        let item = Value::record([("a", Value::Int(1))]);
        assert_eq!(item.to_string(), "{a: 1}");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn bool_strictness() {
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
    }
}
