//! # ode-baselines — comparison implementations for the reproduction
//!
//! Two baselines the experiments measure the paper's contributions
//! against:
//!
//! * [`NaiveDetector`] — composite-event detection *without* automata:
//!   store the history, re-evaluate the Section 4 semantics at every
//!   posting. Experiment E1 contrasts its growing per-event cost with
//!   the automaton's constant-time step, and experiment E2 contrasts its
//!   `O(|H|)` state with the automaton's one word.
//! * [`EcaEngine`] — an operational Event-Condition-Action rule engine
//!   with explicit coupling modes (the HiPAC-style architecture of
//!   Section 7's discussion). Experiment E6 checks that the paper's E-A
//!   encodings fire at exactly the phases the operational engine
//!   schedules, coupling by coupling.

#![warn(missing_docs)]

pub mod eca;
pub mod naive;

pub use eca::{Coupling, EcaEngine, EcaRule, Firing, Phase};
pub use naive::NaiveDetector;
