//! The no-automaton baseline: detect composite events by **replaying the
//! reference semantics over the full history** after every posting.
//!
//! This is what an implementation without Section 5's compilation has to
//! do: the Section 4 denotation `E[H]` depends on the whole history, so
//! each new point costs `Ω(|H|)` (and much worse for nested operators).
//! Experiment E1 compares this baseline's per-event cost against the
//! automaton detector's O(1) table lookup as the history grows.

use std::sync::Arc;

use ode_automata::Symbol;
use ode_core::semantics::occurs_at_end;
use ode_core::{
    BasicEvent, CompiledEvent, EventError, EventExpr, MaskEnv, MaskError, SymExpr, Value,
};

/// A detector that stores the whole event history and re-evaluates the
/// Section 4 semantics from scratch on every posted event.
#[derive(Clone)]
pub struct NaiveDetector {
    compiled: Arc<CompiledEvent>,
    lowered: SymExpr,
    history: Vec<Symbol>,
}

impl NaiveDetector {
    /// Build from an event expression. The compiled artifact is used
    /// *only* for its alphabet (mask-minterm classification must match
    /// the automaton detector exactly); detection never touches the DFA.
    pub fn new(expr: &EventExpr) -> Result<Self, EventError> {
        let compiled = Arc::new(CompiledEvent::compile(expr)?);
        let lowered = compiled.lower_expr(expr)?;
        Ok(NaiveDetector {
            compiled,
            lowered,
            history: Vec::new(),
        })
    }

    /// Build sharing an existing compiled event (so benches construct the
    /// alphabet once).
    pub fn from_compiled(
        compiled: Arc<CompiledEvent>,
        expr: &EventExpr,
    ) -> Result<Self, EventError> {
        let lowered = compiled.lower_expr(expr)?;
        Ok(NaiveDetector {
            compiled,
            lowered,
            history: Vec::new(),
        })
    }

    /// Feed the distinguished `start` point.
    pub fn activate(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        let sym = self.compiled.alphabet().start_symbol(env)?;
        self.history.push(sym);
        Ok(())
    }

    /// Post a basic event; returns whether the composite event occurs at
    /// this point — computed by full re-evaluation.
    pub fn post(
        &mut self,
        basic: &BasicEvent,
        args: &[Value],
        env: &dyn MaskEnv,
    ) -> Result<bool, MaskError> {
        match self.compiled.alphabet().classify(basic, args, env)? {
            Some(sym) => {
                self.history.push(sym);
                Ok(occurs_at_end(&self.lowered, &self.history))
            }
            None => Ok(false),
        }
    }

    /// Post a pre-classified symbol (bench path, mask evaluation
    /// excluded).
    pub fn step_symbol(&mut self, sym: Symbol) -> bool {
        self.history.push(sym);
        occurs_at_end(&self.lowered, &self.history)
    }

    /// Length of the stored history — the baseline's state, versus the
    /// automaton's single word.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Bytes of detection state this baseline carries.
    pub fn state_bytes(&self) -> usize {
        self.history.len() * std::mem::size_of::<Symbol>()
    }

    /// The shared compiled artifact.
    pub fn compiled(&self) -> &Arc<CompiledEvent> {
        &self.compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_core::{parse_event, Detector, EmptyEnv};

    /// The naive detector and the automaton detector must agree on every
    /// prefix of every stream.
    #[test]
    fn agrees_with_automaton_detector() {
        let sources = [
            "after a; after b",
            "relative(after a, after b)",
            "choose 3 (after a)",
            "fa(after a, after b, after c)",
            "!(after a) & (after b | after c)",
            "prior(after a, after b)",
            "every 2 (after a | after b)",
        ];
        let streams: &[&[&str]] = &[
            &["a", "b", "c", "a", "b"],
            &["a", "a", "a", "b", "b", "c"],
            &["c", "c", "b", "a", "b", "a", "c", "b"],
        ];
        for src in sources {
            let expr = parse_event(src).unwrap();
            let mut naive = NaiveDetector::new(&expr).unwrap();
            let mut auto = Detector::new(Arc::clone(naive.compiled()));
            naive.activate(&EmptyEnv).unwrap();
            auto.activate(&EmptyEnv).unwrap();
            for stream in streams {
                for m in stream.iter() {
                    let b = BasicEvent::after_method(*m);
                    let n = naive.post(&b, &[], &EmptyEnv).unwrap();
                    let a = auto.post(&b, &[], &EmptyEnv).unwrap();
                    assert_eq!(n, a, "expr `{src}`, at `{m}` in {stream:?}");
                }
            }
        }
    }

    #[test]
    fn state_grows_with_history() {
        let expr = parse_event("after a").unwrap();
        let mut naive = NaiveDetector::new(&expr).unwrap();
        naive.activate(&EmptyEnv).unwrap();
        for _ in 0..100 {
            naive
                .post(&BasicEvent::after_method("a"), &[], &EmptyEnv)
                .unwrap();
        }
        assert_eq!(naive.history_len(), 101); // start + 100 events
        assert!(naive.state_bytes() > 100);
    }
}
