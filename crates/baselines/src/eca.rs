//! An operational **E-C-A rule engine** with explicit coupling modes —
//! the architecture the paper argues *against* (Section 7).
//!
//! Here, the coupling between Event–Condition and Condition–Action is a
//! pair of engine-implemented scheduling modes (immediate / deferred /
//! separate-dependent / separate-independent), exactly the machinery the
//! HiPAC-style model requires. The paper's E-A model instead folds the
//! condition and the coupling into the *event expression*; experiment E6
//! runs both over identical transaction scripts and checks they fire at
//! the same phases.

use std::sync::Arc;

use ode_core::{
    BasicEvent, CompiledEvent, Detector, EventError, EventExpr, MaskEnv, MaskError, MaskExpr, Value,
};

/// Coupling mode between trigger components (Section 7's list).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coupling {
    /// In the same transaction, immediately.
    Immediate,
    /// Just prior to the commit of the transaction.
    Deferred,
    /// In a separate transaction, after commit only (commit dependency).
    SeparateDependent,
    /// In a separate transaction, after commit or abort.
    SeparateIndependent,
}

/// When a rule's action ran, relative to the triggering transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// During the transaction (immediately at detection / condition).
    During,
    /// At the `before tcomplete` point.
    BeforeCommit,
    /// After the transaction committed.
    AfterCommit,
    /// After the transaction aborted.
    AfterAbort,
}

/// An E-C-A rule.
pub struct EcaRule {
    /// Rule name.
    pub name: String,
    /// The event part (detected with the shared automaton machinery —
    /// the comparison is about *coupling*, not detection).
    pub event: EventExpr,
    /// The condition part.
    pub condition: MaskExpr,
    /// Event–Condition coupling.
    pub ec: Coupling,
    /// Condition–Action coupling.
    pub ca: Coupling,
}

/// A recorded firing.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Firing {
    /// Rule name.
    pub rule: String,
    /// Phase the action ran in.
    pub phase: Phase,
}

struct CompiledRule {
    rule: EcaRule,
    detector: Detector,
    /// Condition evaluations scheduled for later phases.
    pending_condition: Vec<Coupling>,
    /// Actions scheduled for later phases (condition already true).
    pending_action: Vec<Coupling>,
}

/// The operational engine. Drive it with the same per-object event
/// stream the E-A detectors see; it schedules condition evaluation and
/// action execution per the rules' coupling modes.
pub struct EcaEngine {
    rules: Vec<CompiledRule>,
    in_txn: bool,
    /// All firings, in order.
    pub firings: Vec<Firing>,
}

impl EcaEngine {
    /// Compile the rules.
    pub fn new(rules: Vec<EcaRule>) -> Result<Self, EventError> {
        let compiled_rules = rules
            .into_iter()
            .map(|rule| {
                let compiled = Arc::new(CompiledEvent::compile(&rule.event)?);
                Ok(CompiledRule {
                    detector: Detector::new(compiled),
                    rule,
                    pending_condition: Vec::new(),
                    pending_action: Vec::new(),
                })
            })
            .collect::<Result<Vec<_>, EventError>>()?;
        Ok(EcaEngine {
            rules: compiled_rules,
            in_txn: false,
            firings: Vec::new(),
        })
    }

    /// Arm every rule (feeds `start`).
    pub fn activate(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        for r in &mut self.rules {
            r.detector.activate(env)?;
        }
        Ok(())
    }

    /// Transaction begin.
    pub fn begin(&mut self) {
        self.in_txn = true;
    }

    /// Post an application event within the current transaction.
    pub fn post(
        &mut self,
        basic: &BasicEvent,
        args: &[Value],
        env: &dyn MaskEnv,
    ) -> Result<(), MaskError> {
        let mut fired: Vec<usize> = Vec::new();
        for (i, r) in self.rules.iter_mut().enumerate() {
            if r.detector.post(basic, args, env)? {
                fired.push(i);
            }
        }
        for i in fired {
            self.on_event_detected(i, env)?;
        }
        Ok(())
    }

    fn on_event_detected(&mut self, i: usize, env: &dyn MaskEnv) -> Result<(), MaskError> {
        let ec = self.rules[i].rule.ec;
        match ec {
            Coupling::Immediate => self.evaluate_condition(i, Phase::During, env)?,
            other => self.rules[i].pending_condition.push(other),
        }
        Ok(())
    }

    fn evaluate_condition(
        &mut self,
        i: usize,
        phase: Phase,
        env: &dyn MaskEnv,
    ) -> Result<(), MaskError> {
        let r = &mut self.rules[i];
        if !r.rule.condition.eval_bool(env)? {
            return Ok(());
        }
        let ca = r.rule.ca;
        match (ca, phase) {
            // Immediate CA: run in the phase the condition ran in.
            (Coupling::Immediate, p) => self.run_action(i, p),
            // Deferred CA from a during-txn condition: wait for commit
            // point; from the commit point itself: run now.
            (Coupling::Deferred, Phase::During) => {
                r.pending_action.push(Coupling::Deferred);
            }
            (Coupling::Deferred, p) => self.run_action(i, p),
            (Coupling::SeparateDependent, Phase::AfterCommit) => {
                self.run_action(i, Phase::AfterCommit)
            }
            (Coupling::SeparateDependent, _) => {
                r.pending_action.push(Coupling::SeparateDependent);
            }
            (Coupling::SeparateIndependent, Phase::AfterCommit | Phase::AfterAbort) => {
                self.run_action(i, phase)
            }
            (Coupling::SeparateIndependent, _) => {
                r.pending_action.push(Coupling::SeparateIndependent);
            }
        }
        Ok(())
    }

    fn run_action(&mut self, i: usize, phase: Phase) {
        self.firings.push(Firing {
            rule: self.rules[i].rule.name.clone(),
            phase,
        });
    }

    /// The transaction reached its commit point (`before tcomplete`).
    /// Runs deferred condition evaluations and deferred actions, and
    /// advances the detectors over the `before tcomplete` event itself.
    pub fn complete(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        self.post(
            &BasicEvent::before(ode_core::EventKind::TComplete),
            &[],
            env,
        )?;
        for i in 0..self.rules.len() {
            let conds: Vec<Coupling> = std::mem::take(&mut self.rules[i].pending_condition);
            for c in conds {
                match c {
                    Coupling::Deferred => self.evaluate_condition(i, Phase::BeforeCommit, env)?,
                    other => self.rules[i].pending_condition.push(other),
                }
            }
            let acts: Vec<Coupling> = std::mem::take(&mut self.rules[i].pending_action);
            for a in acts {
                match a {
                    Coupling::Deferred => self.run_action(i, Phase::BeforeCommit),
                    other => self.rules[i].pending_action.push(other),
                }
            }
        }
        Ok(())
    }

    /// The transaction committed.
    pub fn commit(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        self.post(&BasicEvent::after(ode_core::EventKind::TCommit), &[], env)?;
        self.finish_txn(Phase::AfterCommit, env)
    }

    /// The transaction aborted.
    pub fn abort(&mut self, env: &dyn MaskEnv) -> Result<(), MaskError> {
        self.post(&BasicEvent::after(ode_core::EventKind::TAbort), &[], env)?;
        self.finish_txn(Phase::AfterAbort, env)
    }

    fn finish_txn(&mut self, phase: Phase, env: &dyn MaskEnv) -> Result<(), MaskError> {
        self.in_txn = false;
        for i in 0..self.rules.len() {
            let conds: Vec<Coupling> = std::mem::take(&mut self.rules[i].pending_condition);
            for c in conds {
                let runs = matches!(
                    (c, phase),
                    (Coupling::SeparateDependent, Phase::AfterCommit)
                        | (Coupling::SeparateIndependent, _)
                );
                if runs {
                    self.evaluate_condition(i, phase, env)?;
                }
                // commit-dependent work is discarded on abort
            }
            let acts: Vec<Coupling> = std::mem::take(&mut self.rules[i].pending_action);
            for a in acts {
                let runs = matches!(
                    (a, phase),
                    (Coupling::SeparateDependent, Phase::AfterCommit)
                        | (Coupling::SeparateIndependent, _)
                        | (Coupling::Deferred, Phase::AfterCommit)
                );
                if runs {
                    let run_phase = if a == Coupling::Deferred {
                        // deferred actions of a committing txn ran at
                        // BeforeCommit via complete(); reaching here means
                        // complete() was skipped — run at commit.
                        Phase::BeforeCommit
                    } else {
                        phase
                    };
                    self.run_action(i, run_phase);
                }
            }
        }
        Ok(())
    }

    /// Distinct `(rule, phase)` firings, sorted — the comparison set for
    /// the E6 equivalence check ("the system only takes cognizance of the
    /// occurrence of this event once", Section 4).
    pub fn firing_set(&self) -> Vec<Firing> {
        let mut v = self.firings.clone();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_core::EmptyEnv;

    fn rule(ec: Coupling, ca: Coupling) -> EcaRule {
        EcaRule {
            name: format!("{ec:?}-{ca:?}"),
            event: ode_core::parse_event("after poke").unwrap(),
            condition: MaskExpr::Bool(true),
            ec,
            ca,
        }
    }

    fn run_script(rules: Vec<EcaRule>, commit: bool) -> Vec<Firing> {
        let mut eng = EcaEngine::new(rules).unwrap();
        eng.activate(&EmptyEnv).unwrap();
        eng.begin();
        eng.post(
            &BasicEvent::after(ode_core::EventKind::TBegin),
            &[],
            &EmptyEnv,
        )
        .unwrap();
        eng.post(&BasicEvent::after_method("poke"), &[], &EmptyEnv)
            .unwrap();
        if commit {
            eng.complete(&EmptyEnv).unwrap();
            eng.commit(&EmptyEnv).unwrap();
        } else {
            eng.abort(&EmptyEnv).unwrap();
        }
        eng.firing_set()
    }

    #[test]
    fn immediate_immediate_fires_during() {
        let f = run_script(vec![rule(Coupling::Immediate, Coupling::Immediate)], true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].phase, Phase::During);
    }

    #[test]
    fn immediate_deferred_fires_at_commit_point() {
        let f = run_script(vec![rule(Coupling::Immediate, Coupling::Deferred)], true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].phase, Phase::BeforeCommit);
    }

    #[test]
    fn dependent_skipped_on_abort() {
        let f = run_script(
            vec![rule(Coupling::Immediate, Coupling::SeparateDependent)],
            false,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn independent_fires_on_abort() {
        let f = run_script(
            vec![rule(Coupling::Immediate, Coupling::SeparateIndependent)],
            false,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].phase, Phase::AfterAbort);
    }

    #[test]
    fn deferred_condition_evaluates_at_commit_point() {
        let f = run_script(vec![rule(Coupling::Deferred, Coupling::Immediate)], true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].phase, Phase::BeforeCommit);
    }

    #[test]
    fn deferred_condition_discarded_on_abort() {
        // no complete() happens on abort, and deferred is commit-bound
        let f = run_script(vec![rule(Coupling::Deferred, Coupling::Immediate)], false);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn false_condition_blocks_action() {
        let mut r = rule(Coupling::Immediate, Coupling::Immediate);
        r.condition = MaskExpr::Bool(false);
        let f = run_script(vec![r], true);
        assert!(f.is_empty());
    }

    #[test]
    fn dependent_dependent_fires_after_commit() {
        let f = run_script(
            vec![rule(
                Coupling::SeparateDependent,
                Coupling::SeparateDependent,
            )],
            true,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].phase, Phase::AfterCommit);
    }
}
