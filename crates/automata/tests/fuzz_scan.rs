use ode_automata::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn random_dfa(rng: &mut StdRng, max_states: usize, k: usize) -> Dfa {
    let n = rng.random_range(1..=max_states);
    let accepting: Vec<bool> = (0..n).map(|_| rng.random_bool(0.4)).collect();
    let table: Vec<StateId> = (0..n * k)
        .map(|_| rng.random_range(0..n as StateId))
        .collect();
    let start = rng.random_range(0..n as StateId);
    Dfa::from_parts(k, start, accepting, table)
}

// Brute-force language sample comparison up to length L over alphabet k.
fn agree_exhaustive(a: &Dfa, b: &Dfa, k: usize, max_len: usize) -> Option<Vec<Symbol>> {
    let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..=max_len {
        for w in &frontier {
            if a.run(w.iter().copied()) != b.run(w.iter().copied()) {
                return Some(w.clone());
            }
        }
        let mut next = Vec::new();
        for w in &frontier {
            for s in 0..k as Symbol {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        frontier = next;
    }
    None
}

#[test]
fn fuzz_minimize_random_dfas() {
    let mut rng = StdRng::seed_from_u64(123);
    for trial in 0..3000 {
        let k = rng.random_range(1..=3);
        let d = random_dfa(&mut rng, 8, k);
        let m = minimize(&d);
        assert!(m.equivalent(&d), "trial {trial} minimize changed language");
        if let Some(w) = agree_exhaustive(&d, &m, k, 7) {
            panic!("trial {trial} word {w:?}");
        }
        // canonical size check: minimize twice
        let m2 = minimize(&m);
        assert_eq!(
            m.num_states(),
            m2.num_states(),
            "trial {trial} not idempotent"
        );
        // Moore brute force: count distinguishable states of trimmed d
        let dt = d.trim_unreachable();
        let n = dt.num_states();
        let mut dist = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                if dt.is_accepting(i as StateId) != dt.is_accepting(j as StateId) {
                    dist[i * n + j] = true;
                }
            }
        }
        loop {
            let mut changed = false;
            for i in 0..n {
                for j in 0..n {
                    if !dist[i * n + j] {
                        for sym in 0..k as Symbol {
                            let ti = dt.step(i as StateId, sym) as usize;
                            let tj = dt.step(j as StateId, sym) as usize;
                            if dist[ti * n + tj] {
                                dist[i * n + j] = true;
                                changed = true;
                                break;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // number of equivalence classes
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..n {
            if !reps.iter().any(|&r| !dist[r * n + i]) {
                reps.push(i);
            }
        }
        assert_eq!(
            m.num_states(),
            reps.len(),
            "trial {trial}: hopcroft {} vs moore {}",
            m.num_states(),
            reps.len()
        );
    }
}

#[test]
fn fuzz_regex_roundtrip_random_dfas() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..400 {
        let k = rng.random_range(1..=3);
        let d = random_dfa(&mut rng, 6, k);
        let r = dfa_to_regex(&d);
        let back = minimize(&determinize(&r.to_nfa(k)));
        if let Some(w) = agree_exhaustive(&d, &back, k, 7) {
            panic!("trial {trial} regex {r} word {w:?}");
        }
        assert!(back.equivalent(&d), "trial {trial} regex {r}");
    }
}

#[test]
fn fuzz_determinize_random_nfas() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..800 {
        let k = rng.random_range(1..=3);
        let n = rng.random_range(1..=6);
        let mut nfa = Nfa::builder(k);
        for _ in 0..n {
            nfa.add_state(rng.random_bool(0.3));
        }
        let edges = rng.random_range(0..=2 * n);
        for _ in 0..edges {
            nfa.add_transition(
                rng.random_range(0..n as StateId),
                rng.random_range(0..k as Symbol),
                rng.random_range(0..n as StateId),
            );
        }
        let eps = rng.random_range(0..=n);
        for _ in 0..eps {
            nfa.add_epsilon(
                rng.random_range(0..n as StateId),
                rng.random_range(0..n as StateId),
            );
        }
        nfa.set_start(rng.random_range(0..n as StateId));
        let dfa = determinize(&nfa);
        // exhaustive words to length 6
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..=6 {
            for w in &frontier {
                assert_eq!(
                    nfa.accepts(w.iter().copied()),
                    dfa.run(w.iter().copied()),
                    "trial {trial} word {w:?}"
                );
            }
            let mut next = Vec::new();
            for w in &frontier {
                for s in 0..k as Symbol {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            frontier = next;
        }
    }
}

// Reference implementations of choose/every by replaying the word through inner.
fn ref_choose(inner: &Dfa, n: u32, w: &[Symbol]) -> bool {
    let mut count = 0u32;
    let mut s = inner.start();
    let mut last_is_occ = false;
    for &sym in w {
        s = inner.step(s, sym);
        last_is_occ = inner.is_accepting(s);
        if last_is_occ {
            count += 1;
        }
    }
    !w.is_empty() && last_is_occ && count == n
}
fn ref_every(inner: &Dfa, n: u32, w: &[Symbol]) -> bool {
    let mut count = 0u32;
    let mut s = inner.start();
    let mut last_is_occ = false;
    for &sym in w {
        s = inner.step(s, sym);
        last_is_occ = inner.is_accepting(s);
        if last_is_occ {
            count += 1;
        }
    }
    !w.is_empty() && last_is_occ && count.is_multiple_of(n)
}

#[test]
fn fuzz_counting_random_inner() {
    let mut rng = StdRng::seed_from_u64(5);
    for trial in 0..1000 {
        let k = rng.random_range(1..=3);
        let inner = random_dfa(&mut rng, 5, k);
        let n = rng.random_range(1..=4);
        let ch = choose_product(&inner, n);
        let ev = every_product(&inner, n);
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..=7 {
            for w in &frontier {
                assert_eq!(
                    ref_choose(&inner, n, w),
                    ch.run(w.iter().copied()),
                    "choose trial {trial} n {n} word {w:?} inner_eps {}",
                    inner.is_accepting(inner.start())
                );
                assert_eq!(
                    ref_every(&inner, n, w),
                    ev.run(w.iter().copied()),
                    "every trial {trial} n {n} word {w:?} inner_eps {}",
                    inner.is_accepting(inner.start())
                );
            }
            let mut next = Vec::new();
            for w in &frontier {
                for s in 0..k as Symbol {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            frontier = next;
        }
    }
}

use ode_automata::committed::{committed_filter, committed_view, TxnSymbols};

#[test]
fn fuzz_committed_wellformed() {
    let mut rng = StdRng::seed_from_u64(11);
    let sy = TxnSymbols {
        tbegin: 1,
        tcommit: 2,
        tabort: 3,
    };
    for trial in 0..500 {
        let a = random_dfa(&mut rng, 5, 4);
        let ap = committed_view(&a, sy);
        // well-formed histories
        let mut h: Vec<Symbol> = Vec::new();
        for _ in 0..rng.random_range(0..6) {
            h.push(sy.tbegin);
            let inner_len = rng.random_range(0..4);
            h.extend(std::iter::repeat_n(0, inner_len));
            h.push(if rng.random_bool(0.4) {
                sy.tabort
            } else {
                sy.tcommit
            });
        }
        for cut in 0..=h.len() {
            let p = &h[..cut];
            let f = committed_filter(p, sy);
            assert_eq!(
                ap.run(p.iter().copied()),
                a.run(f.iter().copied()),
                "trial {trial} prefix {p:?} filtered {f:?}"
            );
        }
    }
}
