//! Property-based tests for the automata toolkit: the algebraic laws the
//! event compiler relies on.

use ode_automata::committed::{committed_filter, committed_view, TxnSymbols};
use ode_automata::{determinize, dfa_to_regex, minimize, Dfa, Nfa, Symbol};
use proptest::prelude::*;

const K: usize = 3; // alphabet size for most properties

/// A recipe for a random regular language, interpretable as an NFA.
#[derive(Clone, Debug)]
enum Lang {
    EndsWith(Symbol),
    ExactSym(Symbol),
    Union(Box<Lang>, Box<Lang>),
    Concat(Box<Lang>, Box<Lang>),
    Plus(Box<Lang>),
    Star(Box<Lang>),
    Complement(Box<Lang>),
    Intersect(Box<Lang>, Box<Lang>),
}

impl Lang {
    fn to_nfa(&self) -> Nfa {
        match self {
            Lang::EndsWith(s) => Nfa::ends_with(K, &[*s]),
            Lang::ExactSym(s) => Nfa::symbol(K, *s),
            Lang::Union(a, b) => a.to_nfa().union(&b.to_nfa()),
            Lang::Concat(a, b) => a.to_nfa().concat(&b.to_nfa()),
            Lang::Plus(a) => a.to_nfa().plus(),
            Lang::Star(a) => a.to_nfa().star(),
            Lang::Complement(a) => minimize(&determinize(&a.to_nfa()))
                .complement_sigma_star()
                .to_nfa(),
            Lang::Intersect(a, b) => {
                let da = minimize(&determinize(&a.to_nfa()));
                let db = minimize(&determinize(&b.to_nfa()));
                da.intersect(&db).to_nfa()
            }
        }
    }

    fn to_min_dfa(&self) -> Dfa {
        minimize(&determinize(&self.to_nfa()))
    }
}

fn lang_strategy() -> impl Strategy<Value = Lang> {
    let leaf = prop_oneof![
        (0..K as Symbol).prop_map(Lang::EndsWith),
        (0..K as Symbol).prop_map(Lang::ExactSym),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Lang::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Lang::Concat(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Lang::Plus(Box::new(a))),
            inner.clone().prop_map(|a| Lang::Star(Box::new(a))),
            inner.clone().prop_map(|a| Lang::Complement(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| Lang::Intersect(Box::new(a), Box::new(b))),
        ]
    })
}

fn word_strategy() -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(0..K as Symbol, 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Determinization preserves the language.
    #[test]
    fn determinize_preserves_language(lang in lang_strategy(), w in word_strategy()) {
        let nfa = lang.to_nfa();
        let dfa = determinize(&nfa);
        prop_assert_eq!(nfa.accepts(w.iter().copied()), dfa.run(w.iter().copied()));
    }

    /// Minimization preserves the language and is idempotent.
    #[test]
    fn minimize_preserves_and_is_idempotent(lang in lang_strategy()) {
        let dfa = determinize(&lang.to_nfa());
        let min = minimize(&dfa);
        prop_assert!(min.equivalent(&dfa));
        let min2 = minimize(&min);
        prop_assert_eq!(min2.num_states(), min.num_states());
    }

    /// Two equivalent DFAs minimize to the same number of states
    /// (Myhill–Nerode canonicity).
    #[test]
    fn minimal_size_is_canonical(lang in lang_strategy()) {
        // Build the "same" language twice through different NFA shapes:
        // L and L ∪ L.
        let l1 = lang.to_min_dfa();
        let doubled = Lang::Union(Box::new(lang.clone()), Box::new(lang)).to_min_dfa();
        prop_assert!(l1.equivalent(&doubled));
        prop_assert_eq!(l1.num_states(), doubled.num_states());
    }

    /// De Morgan over the DFA boolean algebra.
    #[test]
    fn de_morgan(a in lang_strategy(), b in lang_strategy()) {
        let da = a.to_min_dfa();
        let db = b.to_min_dfa();
        let lhs = da.union(&db).complement_sigma_star();
        let rhs = da
            .complement_sigma_star()
            .intersect(&db.complement_sigma_star());
        prop_assert!(lhs.equivalent(&rhs));
    }

    /// Double complement is the identity.
    #[test]
    fn double_complement(a in lang_strategy()) {
        let da = a.to_min_dfa();
        prop_assert!(da
            .complement_sigma_star()
            .complement_sigma_star()
            .equivalent(&da));
    }

    /// Difference is intersection with the complement.
    #[test]
    fn difference_identity(a in lang_strategy(), b in lang_strategy()) {
        let da = a.to_min_dfa();
        let db = b.to_min_dfa();
        prop_assert!(da
            .difference(&db)
            .equivalent(&da.intersect(&db.complement_sigma_star())));
    }

    /// Regex round trip: DFA → regex → NFA → DFA preserves the language.
    #[test]
    fn regex_round_trip(a in lang_strategy()) {
        let da = a.to_min_dfa();
        let regex = dfa_to_regex(&da);
        let back = minimize(&determinize(&regex.to_nfa(K)));
        prop_assert!(back.equivalent(&da));
    }

    /// L⁺ = L·L* and L·L⁺ ⊆ L⁺.
    #[test]
    fn plus_star_laws(a in lang_strategy()) {
        let nfa = a.to_nfa();
        let plus = minimize(&determinize(&nfa.plus()));
        let l_lstar = minimize(&determinize(&nfa.concat(&nfa.star())));
        prop_assert!(plus.equivalent(&l_lstar));
        let l_lplus = minimize(&determinize(&nfa.concat(&nfa.plus())));
        prop_assert!(l_lplus.union(&plus).equivalent(&plus));
    }

    /// The committed-view automaton agrees with explicit filtering on
    /// every prefix of well-formed transactional histories.
    #[test]
    fn committed_view_matches_filter(
        a in lang_strategy(),
        txn_script in prop::collection::vec(
            (prop::collection::vec(0..K as Symbol, 0..4), any::<bool>()),
            0..6
        ),
    ) {
        // Alphabet: K op symbols + tbegin/tcommit/tabort appended.
        let kk = K + 3;
        let syms = TxnSymbols {
            tbegin: K as Symbol,
            tcommit: K as Symbol + 1,
            tabort: K as Symbol + 2,
        };
        // widen the language DFA to the bigger alphabet by re-building
        // the NFA shape over kk symbols: reuse ends-with over op symbols
        // only, via intersection with Σ* (transition completeness handles
        // the new symbols as self-contained moves).
        let base = a.to_min_dfa();
        // Lift: build a DFA over kk symbols with same structure: simulate
        // via product over mapped words is complex; instead rebuild from
        // the regex over the small alphabet.
        let regex = dfa_to_regex(&base);
        let lifted_nfa = regex.to_nfa(kk);
        // Intersect with Σ*: (txn symbols act like "other" letters that
        // break matching, which is fine for this property).
        let lifted = minimize(&determinize(&lifted_nfa));
        let ap = committed_view(&lifted, syms);
        prop_assert!(ap.num_states() <= lifted.num_states() * lifted.num_states() + 1);

        let mut h: Vec<Symbol> = Vec::new();
        for (ops, abort) in txn_script {
            h.push(syms.tbegin);
            h.extend(ops);
            h.push(if abort { syms.tabort } else { syms.tcommit });
        }
        for cut in 0..=h.len() {
            let prefix = &h[..cut];
            let filtered = committed_filter(prefix, syms);
            prop_assert_eq!(
                ap.run(prefix.iter().copied()),
                lifted.run(filtered.iter().copied()),
                "prefix {:?}", prefix
            );
        }
    }
}
