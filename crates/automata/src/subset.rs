//! Subset construction: NFA → complete DFA.
//!
//! Section 5 of the paper: "Since composite events can alternatively be
//! expressed as regular expressions, their occurrence can be detected
//! using finite automata." The compiler builds an NFA per event
//! expression; this module turns it into the deterministic table the
//! per-object monitor steps through.

use std::collections::HashMap;

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::StateId;

/// Determinize `nfa` via the classic subset construction. The result is
/// *complete*: the empty subset becomes an explicit dead state, so the
/// detector never needs a failure path.
pub fn determinize(nfa: &Nfa) -> Dfa {
    let k = nfa.alphabet_len();
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut subsets: Vec<Vec<StateId>> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let mut table: Vec<StateId> = Vec::new();

    let mut start_set = vec![nfa.start()];
    nfa.eps_closure(&mut start_set);
    let start_accepting = subset_accepts(nfa, &start_set);
    index.insert(start_set.clone(), 0);
    subsets.push(start_set);
    accepting.push(start_accepting);
    table.resize(k, 0);

    let mut next_unprocessed = 0usize;
    // Reusable buckets: per-symbol successor sets for the current subset.
    let mut buckets: Vec<Vec<StateId>> = vec![Vec::new(); k];
    while next_unprocessed < subsets.len() {
        for b in &mut buckets {
            b.clear();
        }
        for &s in &subsets[next_unprocessed] {
            for &(sym, t) in &nfa.state(s).trans {
                buckets[sym as usize].push(t);
            }
        }
        for (sym, bucket) in buckets.iter_mut().enumerate() {
            let mut set = std::mem::take(bucket);
            nfa.eps_closure(&mut set);
            let id = match index.get(&set) {
                Some(&id) => id,
                None => {
                    let id = subsets.len() as StateId;
                    accepting.push(subset_accepts(nfa, &set));
                    index.insert(set.clone(), id);
                    subsets.push(set);
                    table.resize(table.len() + k, 0);
                    id
                }
            };
            table[next_unprocessed * k + sym] = id;
        }
        next_unprocessed += 1;
    }

    Dfa::from_parts(k, 0, accepting, table)
}

fn subset_accepts(nfa: &Nfa, set: &[StateId]) -> bool {
    set.iter().any(|&s| nfa.state(s).accepting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symbol;

    #[test]
    fn determinize_preserves_language_on_samples() {
        // (Σ*a)·(Σ*b) over Σ={a,b,c}
        let nfa = Nfa::ends_with(3, &[0]).concat(&Nfa::ends_with(3, &[1]));
        let dfa = determinize(&nfa);
        let words: &[&[Symbol]] = &[
            &[],
            &[0],
            &[1],
            &[0, 1],
            &[1, 0],
            &[0, 2, 1],
            &[2, 0, 2, 1],
            &[0, 1, 2],
            &[0, 1, 1],
            &[1, 0, 1],
        ];
        for w in words {
            assert_eq!(
                nfa.accepts(w.iter().copied()),
                dfa.run(w.iter().copied()),
                "mismatch on {w:?}"
            );
        }
    }

    #[test]
    fn dead_state_is_materialized() {
        // NFA accepting only "a" — after "b" the DFA must sit in a dead
        // state but still step safely.
        let dfa = determinize(&Nfa::symbol(2, 0));
        let s = dfa.run_to_state([1, 0, 0, 1]);
        assert!(!dfa.is_accepting(s));
    }

    #[test]
    fn empty_nfa_determinizes_to_reject() {
        let dfa = determinize(&Nfa::reject(2));
        assert!(dfa.is_empty_language());
    }

    #[test]
    fn exhaustive_small_alphabet_agreement() {
        // Compare NFA and DFA on all words of length ≤ 5 over {0,1}.
        let nfa = Nfa::ends_with(2, &[1])
            .concat(&Nfa::ends_with(2, &[0]))
            .union(&Nfa::symbol(2, 0).plus());
        let dfa = determinize(&nfa);
        for len in 0..=5usize {
            for bits in 0..(1u32 << len) {
                let word: Vec<Symbol> = (0..len).map(|i| (bits >> i) & 1).collect();
                assert_eq!(
                    nfa.accepts(word.iter().copied()),
                    dfa.run(word.iter().copied()),
                    "mismatch on {word:?}"
                );
            }
        }
    }
}
