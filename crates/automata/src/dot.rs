//! Graphviz (DOT) export for automata — debugging aid and documentation
//! generator (the `event_explorer` example prints these).

use std::fmt::Write as _;

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::Symbol;

/// Render a DFA as a DOT digraph. `symbol_name` maps alphabet symbols to
/// labels (pass `|s| format!("s{s}")` if you have none).
pub fn dfa_to_dot(dfa: &Dfa, symbol_name: impl Fn(Symbol) -> String) -> String {
    let mut out = String::new();
    out.push_str("digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n");
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> q{};", dfa.start());
    for s in 0..dfa.num_states() as u32 {
        if dfa.is_accepting(s) {
            let _ = writeln!(out, "  q{s} [shape=doublecircle];");
        }
    }
    // Group parallel edges: (from, to) -> label list.
    for s in 0..dfa.num_states() as u32 {
        let mut by_target: std::collections::BTreeMap<u32, Vec<String>> = Default::default();
        for sym in 0..dfa.alphabet_len() as Symbol {
            by_target
                .entry(dfa.step(s, sym))
                .or_default()
                .push(symbol_name(sym));
        }
        for (t, labels) in by_target {
            let _ = writeln!(out, "  q{s} -> q{t} [label=\"{}\"];", labels.join(","));
        }
    }
    out.push_str("}\n");
    out
}

/// Render an NFA as a DOT digraph (ε-edges drawn dashed).
pub fn nfa_to_dot(nfa: &Nfa, symbol_name: impl Fn(Symbol) -> String) -> String {
    let mut out = String::new();
    out.push_str("digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n");
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> q{};", nfa.start());
    for (id, st) in nfa.states() {
        if st.accepting {
            let _ = writeln!(out, "  q{id} [shape=doublecircle];");
        }
        for &t in &st.eps {
            let _ = writeln!(out, "  q{id} -> q{t} [label=\"ε\", style=dashed];");
        }
        for &(sym, t) in &st.trans {
            let _ = writeln!(out, "  q{id} -> q{t} [label=\"{}\"];", symbol_name(sym));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determinize, Nfa};

    #[test]
    fn dfa_dot_mentions_all_states() {
        let d = determinize(&Nfa::ends_with(2, &[0]));
        let dot = dfa_to_dot(&d, |s| format!("s{s}"));
        assert!(dot.starts_with("digraph dfa {"));
        for s in 0..d.num_states() {
            assert!(dot.contains(&format!("q{s}")), "missing q{s} in:\n{dot}");
        }
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn nfa_dot_draws_epsilon_dashed() {
        let n = Nfa::symbol(2, 0).union(&Nfa::symbol(2, 1));
        let dot = nfa_to_dot(&n, |s| format!("s{s}"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"s0\""));
        assert!(dot.contains("label=\"s1\""));
    }
}
