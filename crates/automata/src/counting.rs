//! Counting products implementing the paper's `choose n (E)` and
//! `every n (E)` operators (Section 3.4).
//!
//! Both operators select occurrences of a component event by ordinal:
//!
//! * `choose 5 (after tcommit)` — "posted by the commit of the *fifth*
//!   transaction" (exactly the 5th occurrence, once).
//! * `every 5 (after tcommit)` — "the 5th, the 10th, the 15th, …".
//!
//! An *occurrence* of `E` at point `p` of history `H` means the prefix
//! `H[..=p]` lies in the occurrence language `O(E)`. Occurrences are
//! counted from the beginning of the evaluation context, so both
//! operators are products of the DFA for `O(E)` with a (bounded or
//! modular) counter.

use crate::dfa::Dfa;
use crate::{StateId, Symbol};

/// `choose n (E)`: accepts a history iff its last point is the `n`-th
/// occurrence of `E` (1-indexed). Requires `n >= 1`.
///
/// States are pairs `(q, c)` where `q` is a state of `inner` and
/// `c ∈ 0..=n` counts occurrences seen so far, saturating at `n + 1`
/// (collapsed into a dead state — once more than `n` occurrences have
/// happened the event can never occur again).
pub fn choose_product(inner: &Dfa, n: u32) -> Dfa {
    assert!(n >= 1, "choose requires a positive occurrence index");
    bounded_count(inner, n, CountMode::Exactly)
}

/// `every n (E)`: accepts a history iff its last point is an occurrence of
/// `E` whose ordinal is a positive multiple of `n`. Requires `n >= 1`.
pub fn every_product(inner: &Dfa, n: u32) -> Dfa {
    assert!(n >= 1, "every requires a positive period");
    if n == 1 {
        // Every occurrence fires — but ε is a prefix, not a point, so an
        // ε-accepting inner DFA must still not accept the empty history.
        if inner.is_accepting(inner.start()) {
            return inner
                .intersect(&crate::determinize(&crate::Nfa::sigma_plus(
                    inner.alphabet_len(),
                )))
                .trim_unreachable();
        }
        return inner.clone();
    }
    let k = inner.alphabet_len();
    let nn = n as usize;
    let ns = inner.num_states();
    // State (q, c): c = occurrences so far mod n.
    let id = |q: StateId, c: usize| -> StateId { (q as usize * nn + c) as StateId };
    let mut accepting = vec![false; ns * nn];
    let mut table = vec![0 as StateId; ns * nn * k];
    for q in 0..ns as StateId {
        for c in 0..nn {
            for sym in 0..k as Symbol {
                let q2 = inner.step(q, sym);
                let c2 = if inner.is_accepting(q2) {
                    (c + 1) % nn
                } else {
                    c
                };
                table[(id(q, c) as usize) * k + sym as usize] = id(q2, c2);
                if inner.is_accepting(q2) && c2 == 0 {
                    accepting[id(q2, c2) as usize] = true;
                }
            }
        }
    }
    // Acceptance is a property of the *target* state (q2 accepting and the
    // count having just wrapped to 0); recompute cleanly to avoid relying
    // on reachability of the marking loop above.
    for q in 0..ns as StateId {
        for c in 0..nn {
            accepting[id(q, c) as usize] = inner.is_accepting(q) && c == 0;
        }
    }
    // But (q accepting, c == 0) also describes the start state when the
    // inner DFA accepts ε — impossible for occurrence languages, yet the
    // start state must not accept ε by fiat: occurrence counting starts
    // at zero occurrences.
    let start = id(inner.start(), 0);
    let mut d = Dfa::from_parts(k, start, accepting, table);
    if inner.is_accepting(inner.start()) {
        // Defensive: never accept ε.
        d = d.intersect(&crate::determinize(&crate::Nfa::sigma_plus(k)));
    }
    d.trim_unreachable()
}

enum CountMode {
    Exactly,
}

fn bounded_count(inner: &Dfa, n: u32, _mode: CountMode) -> Dfa {
    let k = inner.alphabet_len();
    let nn = n as usize;
    let ns = inner.num_states();
    // Counter values 0..=n, plus n+1 = "overflowed" (dead for acceptance).
    let width = nn + 2;
    let id = |q: StateId, c: usize| -> StateId { (q as usize * width + c) as StateId };
    let mut accepting = vec![false; ns * width];
    let mut table = vec![0 as StateId; ns * width * k];
    for q in 0..ns as StateId {
        for c in 0..width {
            for sym in 0..k as Symbol {
                let q2 = inner.step(q, sym);
                let c2 = if inner.is_accepting(q2) {
                    (c + 1).min(nn + 1)
                } else {
                    c
                };
                table[(id(q, c) as usize) * k + sym as usize] = id(q2, c2);
            }
            accepting[id(q, c) as usize] = inner.is_accepting(q) && c == nn;
        }
    }
    // The counter starts at zero occurrences even when the inner DFA
    // accepts ε: an occurrence is a *point* of the history (a non-empty
    // prefix in the occurrence language), so ε-acceptance never counts.
    // Occurrence languages proper never contain ε, but arbitrary inner
    // DFAs (fuzzing, direct library use) can.
    let start = id(inner.start(), 0);
    Dfa::from_parts(k, start, accepting, table).trim_unreachable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determinize, minimize, Nfa};

    /// DFA for the occurrence language of logical event `a` over {a, b}.
    fn atom() -> Dfa {
        determinize(&Nfa::ends_with(2, &[0]))
    }

    #[test]
    fn choose_selects_exactly_nth() {
        let d = choose_product(&atom(), 3);
        // third `a` fires, nothing else
        assert!(!d.run([0]));
        assert!(!d.run([0, 0]));
        assert!(d.run([0, 0, 0]));
        assert!(d.run([0, 1, 0, 1, 0]));
        assert!(!d.run([0, 0, 0, 0])); // 4th does not fire
        assert!(!d.run([0, 0, 0, 1])); // not at a non-occurrence point
    }

    #[test]
    fn choose_one_is_first_occurrence() {
        let d = choose_product(&atom(), 1);
        assert!(d.run([0]));
        assert!(d.run([1, 1, 0]));
        assert!(!d.run([0, 0]));
    }

    #[test]
    fn every_selects_multiples() {
        let d = every_product(&atom(), 2);
        assert!(!d.run([0]));
        assert!(d.run([0, 0]));
        assert!(!d.run([0, 0, 0]));
        assert!(d.run([0, 0, 0, 0]));
        assert!(d.run([1, 0, 1, 0, 1, 0, 0])); // 4th a
    }

    #[test]
    fn every_one_is_identity() {
        let d = every_product(&atom(), 1);
        assert!(d.equivalent(&atom()));
    }

    #[test]
    fn choose_of_composite_counts_composite_occurrences() {
        // inner = relative(a, b) = Σ*aΣ*b; its occurrences are b-points
        // preceded by an a. choose 2 selects the second such point.
        let inner = determinize(&Nfa::ends_with(2, &[0]).concat(&Nfa::ends_with(2, &[1])));
        let d = choose_product(&inner, 2);
        assert!(!d.run([0, 1]));
        assert!(d.run([0, 1, 1]));
        assert!(!d.run([0, 1, 1, 1]));
        assert!(!d.run([1, 1]));
    }

    #[test]
    fn counting_products_minimize_cleanly() {
        let d = minimize(&choose_product(&atom(), 4));
        // states: count 0..4 plus dead — minimal is 6
        assert_eq!(d.num_states(), 6);
        let e = minimize(&every_product(&atom(), 4));
        // modular counter: counts 1..3 merged across "just saw a" flags,
        // plus the two distinguishable count-0 states (at an occurrence /
        // not at one) — 5 states total.
        assert_eq!(e.num_states(), 5);
    }

    #[test]
    fn every_never_accepts_empty() {
        let d = every_product(&atom(), 2);
        assert!(!d.run([]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn choose_zero_panics() {
        let _ = choose_product(&atom(), 0);
    }

    /// DFA accepting ε and every word ending in `a` (ε-accepting inner:
    /// legal for the library even though occurrence languages never
    /// contain ε).
    fn eps_atom() -> Dfa {
        let mut n = Nfa::ends_with(2, &[0]);
        n.set_accepting(n.start(), true);
        determinize(&n)
    }

    #[test]
    fn choose_ignores_epsilon_acceptance() {
        // ε is a prefix, not a point: it must not count as occurrence #1.
        let d = choose_product(&eps_atom(), 2);
        assert!(!d.run([]));
        assert!(!d.run([0]));
        assert!(d.run([0, 0]));
        assert!(!d.run([0, 0, 0]));
    }

    #[test]
    fn every_one_ignores_epsilon_acceptance() {
        let d = every_product(&eps_atom(), 1);
        assert!(!d.run([]));
        assert!(d.run([0]));
        assert!(d.run([1, 0]));
    }
}
