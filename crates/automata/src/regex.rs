//! Regular expressions over the logical-event alphabet.
//!
//! Section 4 of the paper: "The language is equivalent, in terms of
//! expressive power, to regular expressions over strings of logical
//! events." This module provides both directions of that equivalence:
//!
//! * [`Regex::to_nfa`] — Thompson construction, regex → NFA;
//! * [`dfa_to_regex`] — state elimination (GNFA), DFA → regex;
//!
//! so tests can round-trip an event expression through a regex and back
//! and verify the language is unchanged.

use std::fmt;

use crate::nfa::Nfa;
use crate::{Dfa, StateId, Symbol};

/// A regular expression AST with smart constructors that apply the usual
/// identities (`∅·r = ∅`, `ε·r = r`, `∅|r = r`, `ε* = ε`, …) so that
/// state elimination produces readable output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty language.
    Empty,
    /// The empty string.
    Epsilon,
    /// A single alphabet symbol.
    Symbol(Symbol),
    /// Alternation `r | s`.
    Alt(Box<Regex>, Box<Regex>),
    /// Concatenation `r · s`.
    Cat(Box<Regex>, Box<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// Smart alternation.
    pub fn alt(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) if a == b => a,
            (a, b) => Regex::Alt(Box::new(a), Box::new(b)),
        }
    }

    /// Smart concatenation.
    pub fn cat(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Cat(Box::new(a), Box::new(b)),
        }
    }

    /// Smart star.
    pub fn star(a: Regex) -> Regex {
        match a {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            a => Regex::Star(Box::new(a)),
        }
    }

    /// Thompson construction: build an NFA over `alphabet_len` symbols
    /// recognizing this regex.
    pub fn to_nfa(&self, alphabet_len: usize) -> Nfa {
        match self {
            Regex::Empty => Nfa::reject(alphabet_len),
            Regex::Epsilon => Nfa::epsilon(alphabet_len),
            Regex::Symbol(s) => Nfa::symbol(alphabet_len, *s),
            Regex::Alt(a, b) => a.to_nfa(alphabet_len).union(&b.to_nfa(alphabet_len)),
            Regex::Cat(a, b) => a.to_nfa(alphabet_len).concat(&b.to_nfa(alphabet_len)),
            Regex::Star(a) => a.to_nfa(alphabet_len).star(),
        }
    }

    /// Size of the AST (number of nodes) — a readability/complexity
    /// metric reported by the E3 experiment.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 1,
            Regex::Alt(a, b) | Regex::Cat(a, b) => 1 + a.size() + b.size(),
            Regex::Star(a) => 1 + a.size(),
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: Alt < Cat < Star.
        fn go(r: &Regex, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match r {
                Regex::Empty => write!(f, "∅"),
                Regex::Epsilon => write!(f, "ε"),
                Regex::Symbol(s) => write!(f, "s{s}"),
                Regex::Alt(a, b) => {
                    let need = prec > 0;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 0)?;
                    write!(f, "|")?;
                    go(b, f, 0)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Cat(a, b) => {
                    let need = prec > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " ")?;
                    go(b, f, 1)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Star(a) => {
                    go(a, f, 2)?;
                    write!(f, "*")
                }
            }
        }
        go(self, f, 0)
    }
}

/// Convert a DFA into an equivalent regular expression via state
/// elimination over a generalized NFA.
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    let dfa = dfa.trim_unreachable();
    let n = dfa.num_states();
    // GNFA node layout: 0 = fresh start, 1..=n = DFA states, n+1 = fresh
    // accept. Edge matrix of Option<Regex> (None = no edge = Empty).
    let total = n + 2;
    let start = 0usize;
    let accept = total - 1;
    let mut edge: Vec<Option<Regex>> = vec![None; total * total];
    let set = |edges: &mut Vec<Option<Regex>>, i: usize, j: usize, r: Regex| {
        let slot = &mut edges[i * total + j];
        *slot = Some(match slot.take() {
            Some(old) => Regex::alt(old, r),
            None => r,
        });
    };

    set(&mut edge, start, dfa.start() as usize + 1, Regex::Epsilon);
    for s in 0..n as StateId {
        for sym in 0..dfa.alphabet_len() as Symbol {
            let t = dfa.step(s, sym);
            set(
                &mut edge,
                s as usize + 1,
                t as usize + 1,
                Regex::Symbol(sym),
            );
        }
        if dfa.is_accepting(s) {
            set(&mut edge, s as usize + 1, accept, Regex::Epsilon);
        }
    }

    // Eliminate internal nodes one at a time.
    let mut alive: Vec<usize> = (1..=n).collect();
    while let Some(rip) = alive.pop() {
        let self_loop = edge[rip * total + rip]
            .take()
            .map(Regex::star)
            .unwrap_or(Regex::Epsilon);
        // Collect incoming and outgoing edges.
        let nodes: Vec<usize> = (0..total).collect();
        let incoming: Vec<(usize, Regex)> = nodes
            .iter()
            .filter(|&&i| i != rip)
            .filter_map(|&i| edge[i * total + rip].take().map(|r| (i, r)))
            .collect();
        let outgoing: Vec<(usize, Regex)> = nodes
            .iter()
            .filter(|&&j| j != rip)
            .filter_map(|&j| edge[rip * total + j].take().map(|r| (j, r)))
            .collect();
        for (i, rin) in &incoming {
            for (j, rout) in &outgoing {
                let path = Regex::cat(Regex::cat(rin.clone(), self_loop.clone()), rout.clone());
                set(&mut edge, *i, *j, path);
            }
        }
    }

    edge[start * total + accept].take().unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determinize, minimize, nfa_to_min_dfa};

    fn round_trip(d: &Dfa) -> Dfa {
        let r = dfa_to_regex(d);
        minimize(&determinize(&r.to_nfa(d.alphabet_len())))
    }

    #[test]
    fn round_trip_ends_with() {
        let d = nfa_to_min_dfa(&Nfa::ends_with(2, &[0]));
        assert!(round_trip(&d).equivalent(&d));
    }

    #[test]
    fn round_trip_relative() {
        let d = nfa_to_min_dfa(&Nfa::ends_with(3, &[0]).concat(&Nfa::ends_with(3, &[1])));
        assert!(round_trip(&d).equivalent(&d));
    }

    #[test]
    fn round_trip_complement() {
        let d = nfa_to_min_dfa(&Nfa::ends_with(2, &[0])).complement_sigma_plus();
        assert!(round_trip(&d).equivalent(&d));
    }

    #[test]
    fn round_trip_empty_language() {
        let d = Dfa::reject(2);
        assert_eq!(dfa_to_regex(&d), Regex::Empty);
        assert!(round_trip(&d).equivalent(&d));
    }

    #[test]
    fn thompson_matches_semantics() {
        // (s0 s1)* s0
        let r = Regex::cat(
            Regex::star(Regex::cat(Regex::Symbol(0), Regex::Symbol(1))),
            Regex::Symbol(0),
        );
        let n = r.to_nfa(2);
        assert!(n.accepts([0]));
        assert!(n.accepts([0, 1, 0]));
        assert!(!n.accepts([0, 1]));
        assert!(!n.accepts([]));
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Regex::cat(Regex::Empty, Regex::Symbol(0)), Regex::Empty);
        assert_eq!(
            Regex::cat(Regex::Epsilon, Regex::Symbol(0)),
            Regex::Symbol(0)
        );
        assert_eq!(Regex::alt(Regex::Empty, Regex::Symbol(0)), Regex::Symbol(0));
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(
            Regex::star(Regex::star(Regex::Symbol(0))),
            Regex::star(Regex::Symbol(0))
        );
        assert_eq!(
            Regex::alt(Regex::Symbol(1), Regex::Symbol(1)),
            Regex::Symbol(1)
        );
    }

    #[test]
    fn display_is_readable() {
        let r = Regex::cat(
            Regex::star(Regex::alt(Regex::Symbol(0), Regex::Symbol(1))),
            Regex::Symbol(0),
        );
        assert_eq!(r.to_string(), "(s0|s1)* s0");
    }

    #[test]
    fn randomized_round_trips() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..25 {
            let mut cur = Nfa::ends_with(3, &[rng.random_range(0..3)]);
            for _ in 0..rng.random_range(0..3) {
                let other = Nfa::ends_with(3, &[rng.random_range(0..3)]);
                cur = match rng.random_range(0..3) {
                    0 => cur.union(&other),
                    1 => cur.concat(&other),
                    _ => cur.plus(),
                };
            }
            let d = nfa_to_min_dfa(&cur);
            assert!(round_trip(&d).equivalent(&d), "trial {trial}");
        }
    }
}
