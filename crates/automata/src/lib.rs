//! # ode-automata
//!
//! A self-contained finite-automata toolkit built for *composite-event
//! detection* in an active object-oriented database, reproducing the
//! implementation strategy of Gehani, Jagadish & Shmueli, *"Event
//! Specification in an Active Object-Oriented Database"* (SIGMOD 1992),
//! Section 5.
//!
//! The paper compiles composite-event expressions — whose expressive power
//! is exactly that of regular expressions over strings of logical events
//! (Section 4) — into finite automata so that "event detection is
//! particularly efficient": one shared transition table per trigger
//! definition, and **one word of state per active trigger per object**.
//!
//! This crate provides everything that compilation pipeline needs:
//!
//! * [`Nfa`] — nondeterministic automata with ε-transitions and the
//!   standard language constructors (union, concatenation, Kleene
//!   star/plus, `Σ*`, `Σ⁺`, suffix languages).
//! * [`Dfa`] — deterministic automata with *complete* transition tables,
//!   boolean language operations (intersection, union, difference,
//!   complement), emptiness, and language-equivalence checks.
//! * [`subset::determinize`] — subset construction.
//! * [`minimize::minimize`] — Hopcroft partition-refinement minimization.
//! * [`counting`] — the counting products implementing the paper's
//!   `choose n (E)` and `every n (E)` operators (Section 3.4).
//! * [`regex`] — a regular-expression AST with Thompson construction and
//!   DFA → regex state elimination, used to validate the Section 4 claim
//!   that event expressions and regular expressions are equi-expressive.
//! * [`committed`] — the Section 6 "Claim" construction: given an
//!   automaton `A` over the full event history, build `A'` whose states
//!   are pairs of `A`-states and which tracks the history *as if aborted
//!   transactions never happened*.
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! Symbols are plain `u32` indices into an alphabet owned by the caller
//! (the `ode-core` crate maps logical events — basic events refined by
//! mask minterms — onto this dense symbol space).

pub mod committed;
pub mod counting;
pub mod dfa;
pub mod dot;
pub mod minimize;
pub mod nfa;
pub mod regex;
pub mod subset;

pub use committed::committed_view;
pub use counting::{choose_product, every_product};
pub use dfa::Dfa;
pub use minimize::minimize;
pub use nfa::Nfa;
pub use regex::{dfa_to_regex, Regex};
pub use subset::determinize;

/// Identifier of an automaton state. Also the "one word" of monitoring
/// state the paper stores per active trigger per object (Section 5).
pub type StateId = u32;

/// A symbol of the input alphabet: one *logical event* (a basic event
/// refined by a mask minterm; see `ode-core`). Logical events are required
/// to be pairwise disjoint (Section 5), so every posted basic event maps to
/// exactly one symbol.
pub type Symbol = u32;

/// Sentinel for "no state" in sparse tables.
pub const NO_STATE: StateId = StateId::MAX;

/// Convert a `Dfa` into an equivalent minimal `Dfa` via determinization of
/// the given NFA followed by Hopcroft minimization. This is the pipeline
/// entry point used by the event-expression compiler.
pub fn nfa_to_min_dfa(nfa: &Nfa) -> Dfa {
    minimize(&determinize(nfa))
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;

    /// End-to-end: `Σ*a` over a 2-symbol alphabet compiles to a 2-state
    /// minimal DFA.
    #[test]
    fn ends_with_symbol_min_dfa() {
        let nfa = Nfa::ends_with(2, &[0]);
        let dfa = nfa_to_min_dfa(&nfa);
        assert_eq!(dfa.num_states(), 2);
        assert!(dfa.run([0].iter().copied()));
        assert!(dfa.run([1, 0].iter().copied()));
        assert!(!dfa.run([0, 1].iter().copied()));
        assert!(!dfa.run([].iter().copied()));
    }

    /// `O(relative(a, b)) = Σ*a · Σ*b`: accepts exactly strings whose last
    /// symbol is `b` with at least one earlier `a`.
    #[test]
    fn relative_as_concatenation() {
        let a = Nfa::ends_with(2, &[0]);
        let b = Nfa::ends_with(2, &[1]);
        let dfa = nfa_to_min_dfa(&a.concat(&b));
        assert!(dfa.run([0, 1].iter().copied()));
        assert!(dfa.run([1, 0, 1, 1].iter().copied()));
        assert!(!dfa.run([1, 1].iter().copied()));
        assert!(!dfa.run([0].iter().copied()));
        assert!(!dfa.run([1, 0].iter().copied()));
    }
}
