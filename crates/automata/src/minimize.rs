//! DFA minimization via Hopcroft's partition-refinement algorithm.
//!
//! Minimization matters for the paper's storage claim (Section 5): the
//! class-level transition table is shared by every object, and the minimal
//! automaton keeps that table — and the state space the per-object word
//! ranges over — as small as the language allows.

use crate::dfa::Dfa;
use crate::{StateId, Symbol};

/// Produce the minimal DFA recognizing the same language. Unreachable
/// states are removed first; states are then merged by
/// Hopcroft-equivalence.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let dfa = dfa.trim_unreachable();
    let n = dfa.num_states();
    let k = dfa.alphabet_len();
    if n <= 1 {
        return dfa;
    }

    // Precompute reverse transitions: rev[sym][target] = sources.
    let mut rev: Vec<Vec<Vec<StateId>>> = vec![vec![Vec::new(); n]; k];
    for s in 0..n as StateId {
        for sym in 0..k as Symbol {
            let t = dfa.step(s, sym);
            rev[sym as usize][t as usize].push(s);
        }
    }

    // Partition state: block id per state, plus block membership lists.
    let accepting = dfa.accepting_slice();
    let mut block_of: Vec<u32> = accepting.iter().map(|&a| u32::from(a)).collect();
    let mut blocks: Vec<Vec<StateId>> = vec![Vec::new(), Vec::new()];
    for (s, &b) in block_of.iter().enumerate() {
        blocks[b as usize].push(s as StateId);
    }
    // Drop an empty initial block (all-accepting or none-accepting DFAs).
    if blocks[1].is_empty() {
        blocks.pop();
    } else if blocks[0].is_empty() {
        blocks.swap_remove(0);
        block_of.fill(0);
    }

    // Worklist of (block, symbol) splitters.
    let mut work: Vec<(u32, Symbol)> = Vec::new();
    for sym in 0..k as Symbol {
        // Use the smaller block as the initial splitter for each symbol.
        let b = if blocks.len() == 2 && blocks[1].len() < blocks[0].len() {
            1
        } else {
            0
        };
        work.push((b, sym));
        if blocks.len() == 2 {
            work.push((1 - b, sym));
        }
    }

    let mut in_splitter = vec![false; n];
    let mut touched_blocks: Vec<u32> = Vec::new();
    let mut moved: Vec<Vec<StateId>> = Vec::new(); // scratch per touched block

    while let Some((splitter, sym)) = work.pop() {
        // Mark predecessors of the splitter block under `sym`.
        let mut pred: Vec<StateId> = Vec::new();
        for &t in &blocks[splitter as usize] {
            for &s in &rev[sym as usize][t as usize] {
                if !in_splitter[s as usize] {
                    in_splitter[s as usize] = true;
                    pred.push(s);
                }
            }
        }
        if pred.is_empty() {
            continue;
        }

        touched_blocks.clear();
        for &s in &pred {
            let b = block_of[s as usize];
            if !touched_blocks.contains(&b) {
                touched_blocks.push(b);
            }
        }

        for &b in &touched_blocks {
            let members = &blocks[b as usize];
            let hit: Vec<StateId> = members
                .iter()
                .copied()
                .filter(|&s| in_splitter[s as usize])
                .collect();
            if hit.len() == members.len() {
                continue; // no split: every member hits the splitter
            }
            // Split block b into (miss, hit); the new block takes `hit`.
            let miss: Vec<StateId> = members
                .iter()
                .copied()
                .filter(|&s| !in_splitter[s as usize])
                .collect();
            let new_id = blocks.len() as u32;
            for &s in &hit {
                block_of[s as usize] = new_id;
            }
            blocks[b as usize] = miss;
            blocks.push(hit);
            moved.push(Vec::new()); // keep scratch len in sync (unused slot)

            // Hopcroft worklist update: add the smaller half for every
            // symbol; if (b, sym') is pending, the other half must be
            // added too, which adding the smaller one approximates safely
            // when we always push both halves for pending splitters.
            for sym2 in 0..k as Symbol {
                let pending = work.contains(&(b, sym2));
                if pending {
                    work.push((new_id, sym2));
                } else {
                    let smaller = if blocks[b as usize].len() <= blocks[new_id as usize].len() {
                        b
                    } else {
                        new_id
                    };
                    work.push((smaller, sym2));
                }
            }
        }

        for &s in &pred {
            in_splitter[s as usize] = false;
        }
    }

    // Rebuild the quotient automaton, with blocks renumbered in order of
    // first appearance from the start block for determinism.
    let num_blocks = blocks.len();
    let mut renumber: Vec<u32> = vec![u32::MAX; num_blocks];
    let mut order: Vec<u32> = Vec::new();
    let start_block = block_of[dfa.start() as usize];
    renumber[start_block as usize] = 0;
    order.push(start_block);
    let mut i = 0;
    while i < order.len() {
        let b = order[i];
        let repr = blocks[b as usize][0];
        for sym in 0..k as Symbol {
            let tb = block_of[dfa.step(repr, sym) as usize];
            if renumber[tb as usize] == u32::MAX {
                renumber[tb as usize] = order.len() as u32;
                order.push(tb);
            }
        }
        i += 1;
    }

    let m = order.len();
    let mut accepting_out = vec![false; m];
    let mut table = vec![0 as StateId; m * k];
    for (new_id, &b) in order.iter().enumerate() {
        let repr = blocks[b as usize][0];
        accepting_out[new_id] = dfa.is_accepting(repr);
        for sym in 0..k as Symbol {
            let tb = block_of[dfa.step(repr, sym) as usize];
            table[new_id * k + sym as usize] = renumber[tb as usize];
        }
    }

    Dfa::from_parts(k, 0, accepting_out, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determinize, Nfa};

    #[test]
    fn minimize_preserves_language() {
        let nfa = Nfa::ends_with(3, &[0])
            .concat(&Nfa::ends_with(3, &[1]))
            .union(&Nfa::ends_with(3, &[2]).plus());
        let dfa = determinize(&nfa);
        let min = minimize(&dfa);
        assert!(min.equivalent(&dfa));
        assert!(min.num_states() <= dfa.num_states());
    }

    #[test]
    fn minimize_is_idempotent() {
        let dfa = determinize(&Nfa::ends_with(2, &[0]).concat(&Nfa::ends_with(2, &[1])));
        let m1 = minimize(&dfa);
        let m2 = minimize(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
        assert!(m1.equivalent(&m2));
    }

    #[test]
    fn minimal_sizes_are_canonical() {
        // Σ*a over any alphabet has exactly 2 states.
        for k in 1..5 {
            let min = minimize(&determinize(&Nfa::ends_with(k, &[0])));
            assert_eq!(min.num_states(), 2, "alphabet size {k}");
        }
    }

    #[test]
    fn all_accepting_collapses_to_one_state() {
        let min = minimize(&determinize(&Nfa::sigma_star(3)));
        assert_eq!(min.num_states(), 1);
        assert!(min.run([0, 1, 2]));
    }

    #[test]
    fn none_accepting_collapses_to_one_state() {
        let min = minimize(&determinize(&Nfa::reject(3)));
        assert_eq!(min.num_states(), 1);
        assert!(min.is_empty_language());
    }

    #[test]
    fn distinct_residuals_stay_distinct() {
        // L = words ending in "ab": minimal DFA has 3 states.
        let nfa = Nfa::sigma_star(2)
            .concat(&Nfa::symbol(2, 0))
            .concat(&Nfa::symbol(2, 1));
        let min = minimize(&determinize(&nfa));
        assert_eq!(min.num_states(), 3);
        assert!(min.run([0, 1]));
        assert!(min.run([1, 0, 1]));
        assert!(!min.run([0, 1, 0]));
    }

    #[test]
    fn minimize_handles_exact_counting() {
        // Exactly 4 symbols: 6 states minimal (0..4 plus dead).
        let mut nfa = Nfa::any_symbol(2);
        for _ in 0..3 {
            nfa = nfa.concat(&Nfa::any_symbol(2));
        }
        let min = minimize(&determinize(&nfa));
        assert_eq!(min.num_states(), 6);
        assert!(min.run([0, 1, 0, 1]));
        assert!(!min.run([0, 1, 0]));
        assert!(!min.run([0, 1, 0, 1, 0]));
    }

    /// Randomized cross-check: minimize agrees with the unminimized DFA on
    /// random words.
    #[test]
    fn randomized_language_agreement() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            // Random NFA via random regular operations.
            let base = [
                Nfa::ends_with(3, &[0]),
                Nfa::ends_with(3, &[1]),
                Nfa::ends_with(3, &[2]),
            ];
            let mut cur = base[rng.random_range(0..3)].clone();
            for _ in 0..rng.random_range(1..4) {
                let other = &base[rng.random_range(0..3)];
                cur = match rng.random_range(0..3) {
                    0 => cur.union(other),
                    1 => cur.concat(other),
                    _ => cur.plus(),
                };
            }
            let dfa = determinize(&cur);
            let min = minimize(&dfa);
            assert!(min.equivalent(&dfa), "trial {trial}");
            for _ in 0..50 {
                let len = rng.random_range(0..10);
                let w: Vec<u32> = (0..len).map(|_| rng.random_range(0..3)).collect();
                assert_eq!(
                    dfa.run(w.iter().copied()),
                    min.run(w.iter().copied()),
                    "trial {trial} word {w:?}"
                );
            }
        }
    }
}
