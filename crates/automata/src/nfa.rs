//! Nondeterministic finite automata with ε-transitions.
//!
//! The event-expression compiler (`ode-core::compile`) builds *occurrence
//! languages* compositionally; the constructors here mirror the language
//! operations of DESIGN.md: `Σ*`, `Σ⁺`, single symbols, union,
//! concatenation (the paper's `relative`), and plus (the paper's
//! `relative+`).

use crate::{StateId, Symbol};

/// One NFA state: an acceptance flag, ε-successors, and labelled
/// transitions stored sparsely (most states have few outgoing edges).
#[derive(Clone, Debug, Default)]
pub struct NfaState {
    /// Whether this state is accepting.
    pub accepting: bool,
    /// ε-transition targets.
    pub eps: Vec<StateId>,
    /// Labelled transitions `(symbol, target)`.
    pub trans: Vec<(Symbol, StateId)>,
}

/// A nondeterministic finite automaton over a dense `u32` alphabet
/// `0..alphabet_len`, with a single start state and ε-transitions.
#[derive(Clone, Debug)]
pub struct Nfa {
    alphabet_len: usize,
    start: StateId,
    states: Vec<NfaState>,
}

impl Nfa {
    /// An automaton with one non-accepting state: the empty language
    /// (the paper's `∅` event expression, Section 4 item 1).
    pub fn reject(alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            start: 0,
            states: vec![NfaState::default()],
        }
    }

    /// Accepts exactly the empty string ε.
    pub fn epsilon(alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            start: 0,
            states: vec![NfaState {
                accepting: true,
                ..Default::default()
            }],
        }
    }

    /// Accepts exactly the one-symbol string `sym`.
    pub fn symbol(alphabet_len: usize, sym: Symbol) -> Self {
        Self::one_of(alphabet_len, &[sym])
    }

    /// Accepts exactly the one-symbol strings drawn from `syms`.
    pub fn one_of(alphabet_len: usize, syms: &[Symbol]) -> Self {
        debug_assert!(syms.iter().all(|&s| (s as usize) < alphabet_len));
        let start = NfaState {
            accepting: false,
            eps: vec![],
            trans: syms.iter().map(|&s| (s, 1)).collect(),
        };
        let end = NfaState {
            accepting: true,
            ..Default::default()
        };
        Nfa {
            alphabet_len,
            start: 0,
            states: vec![start, end],
        }
    }

    /// Accepts any single symbol (the language `Σ`).
    pub fn any_symbol(alphabet_len: usize) -> Self {
        let all: Vec<Symbol> = (0..alphabet_len as Symbol).collect();
        Self::one_of(alphabet_len, &all)
    }

    /// Accepts every string, `Σ*`.
    pub fn sigma_star(alphabet_len: usize) -> Self {
        let mut s = NfaState {
            accepting: true,
            ..Default::default()
        };
        for sym in 0..alphabet_len as Symbol {
            s.trans.push((sym, 0));
        }
        Nfa {
            alphabet_len,
            start: 0,
            states: vec![s],
        }
    }

    /// Accepts every nonempty string, `Σ⁺`.
    pub fn sigma_plus(alphabet_len: usize) -> Self {
        Self::any_symbol(alphabet_len).concat(&Self::sigma_star(alphabet_len))
    }

    /// The occurrence language of a logical event `a`: `Σ*·a` — all
    /// histories whose final point is an `a` (Section 4 item 2). `syms`
    /// may enumerate several alphabet symbols because a masked basic event
    /// expands to a *set* of disjoint mask minterms (Section 5).
    pub fn ends_with(alphabet_len: usize, syms: &[Symbol]) -> Self {
        Self::sigma_star(alphabet_len).concat(&Self::one_of(alphabet_len, syms))
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Immutable access to a state.
    pub fn state(&self, id: StateId) -> &NfaState {
        &self.states[id as usize]
    }

    /// Iterate over `(id, state)` pairs.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &NfaState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (i as StateId, s))
    }

    /// Add a fresh state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(NfaState {
            accepting,
            ..Default::default()
        });
        id
    }

    /// Add a labelled transition.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        debug_assert!((sym as usize) < self.alphabet_len);
        self.states[from as usize].trans.push((sym, to));
    }

    /// Add an ε-transition.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].eps.push(to);
    }

    /// Set the start state.
    pub fn set_start(&mut self, start: StateId) {
        self.start = start;
    }

    /// Set a state's acceptance flag.
    pub fn set_accepting(&mut self, id: StateId, accepting: bool) {
        self.states[id as usize].accepting = accepting;
    }

    /// Create an empty automaton shell (no states yet) for manual
    /// construction; callers must add at least a start state.
    pub fn builder(alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            start: 0,
            states: Vec::new(),
        }
    }

    /// Copy all of `other`'s states into `self`, returning the offset that
    /// maps `other` state ids into `self` state ids.
    fn absorb(&mut self, other: &Nfa) -> StateId {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "cannot combine automata over different alphabets"
        );
        let offset = self.states.len() as StateId;
        for st in &other.states {
            self.states.push(NfaState {
                accepting: st.accepting,
                eps: st.eps.iter().map(|&t| t + offset).collect(),
                trans: st.trans.iter().map(|&(s, t)| (s, t + offset)).collect(),
            });
        }
        offset
    }

    /// Language union `L(self) ∪ L(other)` (the paper's `|` operator).
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut out = self.clone();
        let off = out.absorb(other);
        let new_start = out.add_state(false);
        out.add_epsilon(new_start, self.start);
        out.add_epsilon(new_start, other.start + off);
        out.set_start(new_start);
        out
    }

    /// Language concatenation `L(self)·L(other)` — the paper's
    /// `relative(E, F)` operator on occurrence languages: `E` occurs at
    /// some point, and `F` occurs in the *truncated* history that follows
    /// (Section 4 item 3).
    pub fn concat(&self, other: &Nfa) -> Nfa {
        let mut out = self.clone();
        let off = out.absorb(other);
        for i in 0..off {
            if out.states[i as usize].accepting {
                out.states[i as usize].accepting = false;
                out.states[i as usize].eps.push(other.start + off);
            }
        }
        out
    }

    /// Kleene plus `L⁺` — the paper's `relative+ (E)`: the infinite
    /// disjunction `relative(E) | relative(E,E) | …` (Section 3.4).
    pub fn plus(&self) -> Nfa {
        let mut out = self.clone();
        let accepting: Vec<StateId> = out
            .states()
            .filter(|(_, s)| s.accepting)
            .map(|(i, _)| i)
            .collect();
        for id in accepting {
            out.add_epsilon(id, out.start);
        }
        out
    }

    /// Kleene star `L*`.
    pub fn star(&self) -> Nfa {
        let plus = self.plus();
        let mut out = plus;
        let new_start = out.add_state(true);
        out.add_epsilon(new_start, out.start);
        out.set_start(new_start);
        out
    }

    /// `Lⁿ` — n-fold concatenation; `repeat(0)` is ε. Implements the
    /// curried `relative n (E)` form (Section 3.4: "the n-th and any
    /// subsequent" occurrences).
    pub fn repeat(&self, n: u32) -> Nfa {
        let mut out = Nfa::epsilon(self.alphabet_len);
        for _ in 0..n {
            out = out.concat(self);
        }
        out
    }

    /// ε-closure of a set of states (used by the subset construction and
    /// by direct NFA simulation). `set` is mutated in place and returned
    /// sorted and deduplicated.
    pub fn eps_closure(&self, set: &mut Vec<StateId>) {
        let mut stack: Vec<StateId> = set.clone();
        let mut seen = vec![false; self.states.len()];
        for &s in set.iter() {
            seen[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    set.push(t);
                    stack.push(t);
                }
            }
        }
        set.sort_unstable();
        set.dedup();
    }

    /// Direct NFA simulation — O(|word|·|states|²); used only by tests as
    /// an oracle for the DFA pipeline.
    pub fn accepts(&self, word: impl IntoIterator<Item = Symbol>) -> bool {
        let mut current = vec![self.start];
        self.eps_closure(&mut current);
        for sym in word {
            let mut next: Vec<StateId> = Vec::new();
            for &s in &current {
                for &(a, t) in &self.states[s as usize].trans {
                    if a == sym {
                        next.push(t);
                    }
                }
            }
            self.eps_closure(&mut next);
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&s| self.states[s as usize].accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_accepts_nothing() {
        let n = Nfa::reject(2);
        assert!(!n.accepts([]));
        assert!(!n.accepts([0]));
        assert!(!n.accepts([1, 0]));
    }

    #[test]
    fn epsilon_accepts_only_empty() {
        let n = Nfa::epsilon(2);
        assert!(n.accepts([]));
        assert!(!n.accepts([0]));
    }

    #[test]
    fn symbol_accepts_exactly_itself() {
        let n = Nfa::symbol(3, 1);
        assert!(n.accepts([1]));
        assert!(!n.accepts([0]));
        assert!(!n.accepts([1, 1]));
        assert!(!n.accepts([]));
    }

    #[test]
    fn one_of_accepts_each_choice() {
        let n = Nfa::one_of(4, &[0, 2]);
        assert!(n.accepts([0]));
        assert!(n.accepts([2]));
        assert!(!n.accepts([1]));
        assert!(!n.accepts([3]));
    }

    #[test]
    fn sigma_star_accepts_everything() {
        let n = Nfa::sigma_star(2);
        assert!(n.accepts([]));
        assert!(n.accepts([0, 1, 1, 0]));
    }

    #[test]
    fn sigma_plus_rejects_empty() {
        let n = Nfa::sigma_plus(2);
        assert!(!n.accepts([]));
        assert!(n.accepts([0]));
        assert!(n.accepts([1, 1, 0]));
    }

    #[test]
    fn ends_with_is_suffix_test() {
        let n = Nfa::ends_with(3, &[2]);
        assert!(n.accepts([2]));
        assert!(n.accepts([0, 1, 2]));
        assert!(!n.accepts([2, 0]));
        assert!(!n.accepts([]));
    }

    #[test]
    fn union_is_language_or() {
        let n = Nfa::symbol(2, 0).union(&Nfa::symbol(2, 1).concat(&Nfa::symbol(2, 1)));
        assert!(n.accepts([0]));
        assert!(n.accepts([1, 1]));
        assert!(!n.accepts([1]));
        assert!(!n.accepts([0, 0]));
    }

    #[test]
    fn concat_joins_languages() {
        let n = Nfa::symbol(2, 0).concat(&Nfa::symbol(2, 1));
        assert!(n.accepts([0, 1]));
        assert!(!n.accepts([0]));
        assert!(!n.accepts([1, 0]));
    }

    #[test]
    fn plus_requires_at_least_one() {
        let n = Nfa::symbol(2, 0).plus();
        assert!(!n.accepts([]));
        assert!(n.accepts([0]));
        assert!(n.accepts([0, 0, 0]));
        assert!(!n.accepts([0, 1]));
    }

    #[test]
    fn star_allows_zero() {
        let n = Nfa::symbol(2, 0).star();
        assert!(n.accepts([]));
        assert!(n.accepts([0, 0]));
        assert!(!n.accepts([1]));
    }

    #[test]
    fn repeat_counts_exactly() {
        let n = Nfa::symbol(2, 0).repeat(3);
        assert!(n.accepts([0, 0, 0]));
        assert!(!n.accepts([0, 0]));
        assert!(!n.accepts([0, 0, 0, 0]));
    }

    #[test]
    fn repeat_zero_is_epsilon() {
        let n = Nfa::ends_with(2, &[1]).repeat(0);
        assert!(n.accepts([]));
        assert!(!n.accepts([1]));
    }

    #[test]
    fn relative_n_includes_subsequent_occurrences() {
        // (Σ*a)^2 labels the 2nd and every later `a` (paper §3.4).
        let n = Nfa::ends_with(2, &[0]).repeat(2);
        assert!(!n.accepts([0]));
        assert!(n.accepts([0, 0]));
        assert!(n.accepts([0, 1, 0]));
        assert!(n.accepts([0, 0, 0])); // third `a` still labelled
        assert!(!n.accepts([0, 0, 1])); // must end on `a`
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn mixing_alphabets_panics() {
        let _ = Nfa::symbol(2, 0).union(&Nfa::symbol(3, 0));
    }

    #[test]
    fn eps_closure_transitive() {
        let mut n = Nfa::builder(1);
        let a = n.add_state(false);
        let b = n.add_state(false);
        let c = n.add_state(true);
        n.add_epsilon(a, b);
        n.add_epsilon(b, c);
        n.set_start(a);
        let mut set = vec![a];
        n.eps_closure(&mut set);
        assert_eq!(set, vec![a, b, c]);
    }
}
