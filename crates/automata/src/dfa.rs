//! Deterministic finite automata with dense, *complete* transition tables.
//!
//! A `Dfa` is the runtime artifact of event compilation: the transition
//! table is shared per trigger definition (per class), and each
//! object-trigger pair stores only the current [`crate::StateId`] — the
//! "one word" of monitoring state promised in Section 5 of the paper.

use crate::nfa::Nfa;
use crate::{StateId, Symbol};

/// A complete DFA: every state has a transition on every symbol, so
/// stepping never fails and detection is a single table lookup per posted
/// event.
#[derive(Clone, Debug)]
pub struct Dfa {
    alphabet_len: usize,
    start: StateId,
    accepting: Vec<bool>,
    /// Row-major `num_states × alphabet_len` table.
    table: Vec<StateId>,
}

impl Dfa {
    /// Build from parts. `table.len()` must equal
    /// `accepting.len() * alphabet_len`.
    pub fn from_parts(
        alphabet_len: usize,
        start: StateId,
        accepting: Vec<bool>,
        table: Vec<StateId>,
    ) -> Self {
        assert_eq!(table.len(), accepting.len() * alphabet_len);
        assert!((start as usize) < accepting.len());
        debug_assert!(table.iter().all(|&t| (t as usize) < accepting.len()));
        Dfa {
            alphabet_len,
            start,
            accepting,
            table,
        }
    }

    /// The single-state DFA rejecting everything.
    pub fn reject(alphabet_len: usize) -> Self {
        Dfa {
            alphabet_len,
            start: 0,
            accepting: vec![false],
            table: vec![0; alphabet_len],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `state` is accepting — i.e. whether the composite event has
    /// just occurred when the monitor sits in `state`.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state as usize]
    }

    /// One detection step: a single table lookup.
    #[inline]
    pub fn step(&self, state: StateId, sym: Symbol) -> StateId {
        debug_assert!((sym as usize) < self.alphabet_len);
        self.table[state as usize * self.alphabet_len + sym as usize]
    }

    /// Run the automaton over a word from the start state, returning the
    /// final state.
    pub fn run_to_state(&self, word: impl IntoIterator<Item = Symbol>) -> StateId {
        let mut s = self.start;
        for sym in word {
            s = self.step(s, sym);
        }
        s
    }

    /// Whole-word acceptance test.
    pub fn run(&self, word: impl IntoIterator<Item = Symbol>) -> bool {
        self.is_accepting(self.run_to_state(word))
    }

    /// Product construction. `combine` decides acceptance of a pair state
    /// from the two component acceptances; this yields intersection
    /// (`&&`), union (`||`), difference (`a && !b`), or symmetric
    /// difference as needed. Only reachable pairs are materialized.
    pub fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "cannot combine automata over different alphabets"
        );
        let k = self.alphabet_len;
        let mut index = std::collections::HashMap::new();
        let mut pairs: Vec<(StateId, StateId)> = Vec::new();
        let mut table: Vec<StateId> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        let start_pair = (self.start, other.start);
        index.insert(start_pair, 0 as StateId);
        pairs.push(start_pair);
        accepting.push(combine(
            self.is_accepting(self.start),
            other.is_accepting(other.start),
        ));
        table.resize(k, 0);

        let mut next_unprocessed = 0usize;
        while next_unprocessed < pairs.len() {
            let (a, b) = pairs[next_unprocessed];
            for sym in 0..k as Symbol {
                let ta = self.step(a, sym);
                let tb = other.step(b, sym);
                let id = *index.entry((ta, tb)).or_insert_with(|| {
                    let id = pairs.len() as StateId;
                    pairs.push((ta, tb));
                    accepting.push(combine(self.is_accepting(ta), other.is_accepting(tb)));
                    table.resize(table.len() + k, 0);
                    id
                });
                table[next_unprocessed * k + sym as usize] = id;
            }
            next_unprocessed += 1;
        }
        Dfa {
            alphabet_len: k,
            start: 0,
            accepting,
            table,
        }
    }

    /// Language intersection — the paper's `E & F` operator.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Language union — the paper's `E | F` operator.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Language difference `L(self) \ L(other)` (used by the `fa`
    /// operator's "no intervening G" construction).
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// Complement with respect to `Σ*` (flip every acceptance bit —
    /// correct because the table is complete).
    pub fn complement_sigma_star(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accepting {
            *a = !*a;
        }
        out
    }

    /// Complement with respect to `Σ⁺` — the paper's `!E` operator
    /// (Section 4 item 5): a point is labelled by `!E` exactly when it is
    /// not labelled by `E`, so the occurrence language is all *nonempty*
    /// histories outside `L(self)`. Occurrence languages never contain ε,
    /// and neither may their complements.
    pub fn complement_sigma_plus(&self) -> Dfa {
        let sigma_plus = crate::determinize(&Nfa::sigma_plus(self.alphabet_len));
        self.complement_sigma_star().intersect(&sigma_plus)
    }

    /// Is the recognized language empty? (Reachability of an accepting
    /// state.)
    pub fn is_empty_language(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            if self.is_accepting(s) {
                return false;
            }
            for sym in 0..self.alphabet_len as Symbol {
                let t = self.step(s, sym);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Language equivalence: `L(self) == L(other)` iff the symmetric
    /// difference is empty. Used by tests to validate rewrite laws such as
    /// `prior+(E) ≡ E` (Section 3.4) and minimization correctness.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.product(other, |a, b| a != b).is_empty_language()
    }

    /// View this DFA as an NFA (no ε-transitions), so DFA-only results
    /// (complements, products, counting automata) can re-enter NFA
    /// compositions such as concatenation — the event compiler alternates
    /// between the two representations.
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::builder(self.alphabet_len);
        for s in 0..self.num_states() as StateId {
            let id = nfa.add_state(self.is_accepting(s));
            debug_assert_eq!(id, s);
        }
        for s in 0..self.num_states() as StateId {
            for sym in 0..self.alphabet_len as Symbol {
                nfa.add_transition(s, sym, self.step(s, sym));
            }
        }
        nfa.set_start(self.start);
        nfa
    }

    /// A shortest accepted word, if any — handy for debugging and for
    /// error messages ("this event can never occur"). BFS over states.
    pub fn shortest_accepted(&self) -> Option<Vec<Symbol>> {
        use std::collections::VecDeque;
        let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut q = VecDeque::new();
        q.push_back(self.start);
        seen[self.start as usize] = true;
        let mut found = if self.is_accepting(self.start) {
            Some(self.start)
        } else {
            None
        };
        'bfs: while let Some(s) = q.pop_front() {
            if found.is_some() {
                break;
            }
            for sym in 0..self.alphabet_len as Symbol {
                let t = self.step(s, sym);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    prev[t as usize] = Some((s, sym));
                    if self.is_accepting(t) {
                        found = Some(t);
                        break 'bfs;
                    }
                    q.push_back(t);
                }
            }
        }
        let mut state = found?;
        let mut word = Vec::new();
        while let Some((p, sym)) = prev[state as usize] {
            word.push(sym);
            state = p;
        }
        word.reverse();
        Some(word)
    }

    /// Restrict to states reachable from the start, renumbering densely.
    pub fn trim_unreachable(&self) -> Dfa {
        let mut map = vec![crate::NO_STATE; self.num_states()];
        let mut order: Vec<StateId> = Vec::new();
        let mut stack = vec![self.start];
        map[self.start as usize] = 0;
        order.push(self.start);
        while let Some(s) = stack.pop() {
            for sym in 0..self.alphabet_len as Symbol {
                let t = self.step(s, sym);
                if map[t as usize] == crate::NO_STATE {
                    map[t as usize] = order.len() as StateId;
                    order.push(t);
                    stack.push(t);
                }
            }
        }
        let k = self.alphabet_len;
        let mut accepting = Vec::with_capacity(order.len());
        let mut table = Vec::with_capacity(order.len() * k);
        for &old in &order {
            accepting.push(self.is_accepting(old));
            for sym in 0..k as Symbol {
                table.push(map[self.step(old, sym) as usize]);
            }
        }
        Dfa {
            alphabet_len: k,
            start: 0,
            accepting,
            table,
        }
    }

    /// Iterate accepting flags (used by minimization).
    pub(crate) fn accepting_slice(&self) -> &[bool] {
        &self.accepting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determinize, Nfa};

    fn ends_with(alphabet: usize, sym: Symbol) -> Dfa {
        determinize(&Nfa::ends_with(alphabet, &[sym]))
    }

    #[test]
    fn reject_rejects() {
        let d = Dfa::reject(2);
        assert!(!d.run([]));
        assert!(!d.run([0, 1]));
        assert!(d.is_empty_language());
    }

    #[test]
    fn intersect_requires_both() {
        // ends with a AND contains b somewhere before: Σ*a ∩ Σ*bΣ*a
        let a = ends_with(2, 0);
        let contains_b_then_a = determinize(
            &Nfa::sigma_star(2)
                .concat(&Nfa::symbol(2, 1))
                .concat(&Nfa::ends_with(2, &[0])),
        );
        let d = a.intersect(&contains_b_then_a);
        assert!(d.run([1, 0]));
        assert!(!d.run([0]));
        assert!(!d.run([1]));
    }

    #[test]
    fn union_accepts_either() {
        let d = ends_with(2, 0).union(&ends_with(2, 1));
        assert!(d.run([0]));
        assert!(d.run([1]));
        assert!(!d.run([]));
    }

    #[test]
    fn difference_removes() {
        // ends-with-a minus (a as the only symbol) = Σ⁺aΣ*a-ish check
        let a = ends_with(2, 0);
        let only_a = determinize(&Nfa::symbol(2, 0));
        let d = a.difference(&only_a);
        assert!(!d.run([0]));
        assert!(d.run([0, 0]));
        assert!(d.run([1, 0]));
    }

    #[test]
    fn complement_sigma_plus_excludes_epsilon() {
        let a = ends_with(2, 0);
        let not_a = a.complement_sigma_plus();
        assert!(!not_a.run([])); // ε never in an occurrence language
        assert!(!not_a.run([0]));
        assert!(not_a.run([1]));
        assert!(not_a.run([0, 1]));
    }

    #[test]
    fn double_complement_is_identity_on_sigma_plus() {
        let a = ends_with(3, 1);
        let back = a.complement_sigma_plus().complement_sigma_plus();
        assert!(back.equivalent(&a));
    }

    #[test]
    fn equivalent_detects_difference() {
        let a = ends_with(2, 0);
        let b = ends_with(2, 1);
        assert!(!a.equivalent(&b));
        assert!(a.equivalent(&a.clone()));
    }

    #[test]
    fn shortest_accepted_finds_minimal_witness() {
        let d = ends_with(2, 1);
        assert_eq!(d.shortest_accepted(), Some(vec![1]));
        assert_eq!(Dfa::reject(2).shortest_accepted(), None);
    }

    #[test]
    fn trim_unreachable_preserves_language() {
        // Build a DFA with an unreachable state by hand.
        let d = Dfa::from_parts(
            1,
            0,
            vec![false, true, true],
            vec![
                1, // 0 --0--> 1
                1, // 1 --0--> 1
                2, // 2 --0--> 2 (unreachable)
            ],
        );
        let t = d.trim_unreachable();
        assert_eq!(t.num_states(), 2);
        assert!(t.equivalent(&d));
    }

    #[test]
    fn to_nfa_round_trip_preserves_language() {
        let d = ends_with(2, 0).complement_sigma_plus();
        let back = determinize(&d.to_nfa());
        assert!(back.equivalent(&d));
    }

    #[test]
    fn run_to_state_steps_correctly() {
        let d = ends_with(2, 0);
        let s = d.run_to_state([1, 1, 0]);
        assert!(d.is_accepting(s));
        let s2 = d.step(s, 1);
        assert!(!d.is_accepting(s2));
    }
}
