//! The Section 6 "Claim" construction: monitoring the **committed**
//! history with an automaton that reads the **full** history.
//!
//! > *Claim: Any event expression `E` made with respect to operations of
//! > only committed transactions, with an object scope, can be converted
//! > into an event expression with respect to the whole history,
//! > including the operations of aborted transactions.*
//!
//! The proof converts the detection automaton `A` into `A'` whose states
//! are pairs `(a, b)` of `A`-states: `a` is the state `A` "is really in"
//! (assuming the running transaction commits) and `b` is the state `A`
//! was in before the most recent `after tbegin`. On `after tcommit` the
//! snapshot is refreshed; on `after tabort` the automaton rolls back to
//! the snapshot, expunging every event of the aborted transaction —
//! including its own `tbegin` marker — from the committed view.
//!
//! This mirrors the two implementation options the paper describes: an
//! automaton state stored *inside* the object (restored by transaction
//! rollback — the committed view) versus stored *outside* it (never
//! restored — the full-history view). `A'` lets an implementation keep
//! the state outside the object and still monitor the committed view.

use std::collections::HashMap;

use crate::dfa::Dfa;
use crate::{StateId, Symbol};

/// Transaction-marker symbols used by [`committed_view`].
#[derive(Clone, Copy, Debug)]
pub struct TxnSymbols {
    /// The `after tbegin` symbol.
    pub tbegin: Symbol,
    /// The `after tcommit` symbol.
    pub tcommit: Symbol,
    /// The `after tabort` symbol.
    pub tabort: Symbol,
}

/// Build `A'` from `A` per the Section 6 pair construction. Only
/// reachable pairs are materialized, so the result has at most
/// `|Q|²` states (the bound the paper's proof implies) and usually far
/// fewer.
///
/// Assumptions (the paper's): object-level locking, so the events a
/// single object observes from different transactions never interleave —
/// each object sees `… tbegin (ops)* (tcommit | tabort) …` well
/// nested-free sequences. The construction is still total on arbitrary
/// inputs (stray commits/aborts refresh or restore the snapshot), but the
/// equivalence guarantee only holds for well-formed histories.
pub fn committed_view(a: &Dfa, syms: TxnSymbols) -> Dfa {
    let k = a.alphabet_len();
    assert!((syms.tbegin as usize) < k);
    assert!((syms.tcommit as usize) < k);
    assert!((syms.tabort as usize) < k);

    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let mut table: Vec<StateId> = Vec::new();

    let start = (a.start(), a.start());
    index.insert(start, 0);
    pairs.push(start);
    accepting.push(a.is_accepting(a.start()));
    table.resize(k, 0);

    let mut next = 0usize;
    while next < pairs.len() {
        let (q, p) = pairs[next];
        for sym in 0..k as Symbol {
            let target = if sym == syms.tbegin {
                // Snapshot the pre-tbegin state so an abort also expunges
                // the tbegin marker itself from the committed view.
                (a.step(q, sym), q)
            } else if sym == syms.tcommit {
                let r = a.step(q, sym);
                (r, r)
            } else if sym == syms.tabort {
                (p, p)
            } else {
                (a.step(q, sym), p)
            };
            let id = *index.entry(target).or_insert_with(|| {
                let id = pairs.len() as StateId;
                pairs.push(target);
                accepting.push(a.is_accepting(target.0));
                table.resize(table.len() + k, 0);
                id
            });
            table[next * k + sym as usize] = id;
        }
        next += 1;
    }

    Dfa::from_parts(k, 0, accepting, table)
}

/// Project a full history down to its committed view: drop every event of
/// an aborted transaction (including its `tbegin`/`tabort` markers);
/// events of the currently-open transaction are *kept* (they are
/// provisionally committed, matching the optimistic `a`-component of the
/// pair construction). Used by tests and benches as the reference
/// "filter-then-run-A" implementation.
pub fn committed_filter(history: &[Symbol], syms: TxnSymbols) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = Vec::new();
    let mut txn_start: Option<usize> = None; // index in `out` of current tbegin
    for &sym in history {
        if sym == syms.tbegin {
            txn_start = Some(out.len());
            out.push(sym);
        } else if sym == syms.tabort {
            if let Some(s) = txn_start.take() {
                out.truncate(s);
            }
        } else if sym == syms.tcommit {
            out.push(sym);
            txn_start = None;
        } else {
            out.push(sym);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determinize, Nfa};

    // Alphabet: 0 = a (an update), 1 = tbegin, 2 = tcommit, 3 = tabort.
    const SY: TxnSymbols = TxnSymbols {
        tbegin: 1,
        tcommit: 2,
        tabort: 3,
    };

    fn atom_a() -> Dfa {
        determinize(&Nfa::ends_with(4, &[0]))
    }

    /// `relative(a, a)` — two a's, committed view.
    fn two_as() -> Dfa {
        determinize(&Nfa::ends_with(4, &[0]).concat(&Nfa::ends_with(4, &[0])))
    }

    #[test]
    fn aborted_updates_are_expunged() {
        let ap = committed_view(&two_as(), SY);
        // txn1 does an `a` then aborts; txn2 does one `a` then commits:
        // committed view has only ONE a — must not accept.
        let h = [1, 0, 3, 1, 0];
        assert!(!ap.run(h.iter().copied()));
        // and the filter agrees:
        let f = committed_filter(&h, SY);
        assert!(!two_as().run(f.iter().copied()));
        // but two committed a's do fire
        let h2 = [1, 0, 2, 1, 0];
        assert!(ap.run(h2.iter().copied()));
    }

    #[test]
    fn open_transaction_counts_provisionally() {
        let ap = committed_view(&atom_a(), SY);
        // `a` inside a still-open transaction: provisional occurrence.
        assert!(ap.run([1, 0].iter().copied()));
        // …and if that txn aborts, a later check shows no occurrence.
        let s = ap.run_to_state([1, 0, 3].iter().copied());
        assert!(!ap.is_accepting(s));
    }

    #[test]
    fn abort_expunges_tbegin_marker_too() {
        // Event = committed-view occurrence of tbegin itself.
        let tb = determinize(&Nfa::ends_with(4, &[1]));
        let ap = committed_view(&tb, SY);
        let s = ap.run_to_state([1, 3].iter().copied());
        // after the abort, the committed view contains no tbegin at all
        assert!(!ap.is_accepting(s));
        let f = committed_filter(&[1, 3], SY);
        assert!(f.is_empty());
    }

    #[test]
    fn state_count_is_bounded_by_square() {
        let a = two_as();
        let ap = committed_view(&a, SY);
        assert!(ap.num_states() <= a.num_states() * a.num_states());
    }

    #[test]
    fn matches_filter_on_random_histories() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let a = two_as();
        let ap = committed_view(&a, SY);
        for trial in 0..200 {
            // Generate a well-formed history: sequence of committed or
            // aborted transactions, each with 0..4 `a` operations.
            let mut h: Vec<Symbol> = Vec::new();
            for _ in 0..rng.random_range(0..6) {
                h.push(SY.tbegin);
                let ops = rng.random_range(0..4);
                h.extend(std::iter::repeat_n(0, ops));
                h.push(if rng.random_bool(0.4) {
                    SY.tabort
                } else {
                    SY.tcommit
                });
            }
            // Check agreement at EVERY prefix, not just the end.
            for cut in 0..=h.len() {
                let prefix = &h[..cut];
                let full = ap.run(prefix.iter().copied());
                let filtered = committed_filter(prefix, SY);
                let reference = a.run(filtered.iter().copied());
                assert_eq!(
                    full, reference,
                    "trial {trial}, prefix {prefix:?}, filtered {filtered:?}"
                );
            }
        }
    }
}
