//! Section 6 ("Dealing with Transactions"): three implementations of
//! committed-history monitoring must agree —
//!
//! 1. the **pair-construction automaton** `A'` reading the *full*
//!    history (the paper's Claim),
//! 2. the original automaton `A` reading the *filtered* committed
//!    history,
//! 3. the engine's committed-mode trigger (automaton state as object
//!    data, rolled back on abort).
//!
//! Also: full-history monitoring really does see aborted transactions'
//! events, and the `A'` state count respects the `|Q|²` bound.

use std::sync::Arc;

use ode_automata::committed::{committed_filter, committed_view, TxnSymbols};
use ode_core::{parse_event, CompiledEvent, Value};
use ode_db::{Action, ClassDef, Database, ObjectId};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Build a compiled event whose alphabet covers poke + txn markers, and
/// return (compiled, symbols for tbegin/tcommit/tabort/poke).
fn compiled_with_txn_alphabet(event_src: &str) -> (Arc<CompiledEvent>, TxnSymbols, u32) {
    // Mention the transaction events in the expression so they are part
    // of the alphabet; `& !empty` keeps the language unchanged.
    let padded =
        format!("({event_src}) & !(empty & (after tbegin | after tcommit | after tabort))");
    let expr = parse_event(&padded).unwrap();
    let compiled = Arc::new(CompiledEvent::compile(&expr).unwrap());
    let alphabet = compiled.alphabet();
    let sym = |src: &str| {
        let e = parse_event(src).unwrap();
        let le = match e {
            ode_core::EventExpr::Logical(le) => le,
            other => panic!("not logical: {other:?}"),
        };
        alphabet.symbols_for_logical(&le)[0]
    };
    let syms = TxnSymbols {
        tbegin: sym("after tbegin"),
        tcommit: sym("after tcommit"),
        tabort: sym("after tabort"),
    };
    let poke = sym("after poke");
    (compiled, syms, poke)
}

#[test]
fn pair_construction_agrees_with_filtering_on_random_histories() {
    let mut rng = StdRng::seed_from_u64(1992);
    for src in [
        "relative(after poke, after poke)",
        "choose 3 (after poke)",
        "after poke; after poke",
        "prior(after tbegin, after poke)",
    ] {
        let (compiled, syms, poke) = compiled_with_txn_alphabet(src);
        let a = compiled.dfa();
        let a_prime = committed_view(a, syms);
        assert!(
            a_prime.num_states() <= a.num_states() * a.num_states(),
            "{src}: A' has {} states, A has {}",
            a_prime.num_states(),
            a.num_states()
        );

        for trial in 0..100 {
            // well-formed per-object serial transaction history
            let mut h = Vec::new();
            for _ in 0..rng.random_range(0..6) {
                h.push(syms.tbegin);
                for _ in 0..rng.random_range(0..4) {
                    h.push(poke);
                }
                h.push(if rng.random_bool(0.4) {
                    syms.tabort
                } else {
                    syms.tcommit
                });
            }
            for cut in 0..=h.len() {
                let prefix = &h[..cut];
                let via_pair = a_prime.run(prefix.iter().copied());
                let filtered = committed_filter(prefix, syms);
                let via_filter = a.run(filtered.iter().copied());
                assert_eq!(
                    via_pair, via_filter,
                    "{src}, trial {trial}, prefix {prefix:?} (filtered {filtered:?})"
                );
            }
        }
    }
}

/// The engine's committed-mode trigger must fire exactly when `A` over
/// the committed (filtered) history accepts.
#[test]
fn engine_committed_mode_matches_filtered_replay() {
    let mut rng = StdRng::seed_from_u64(77);

    for _ in 0..20 {
        let mut db = Database::new();
        db.define_class(
            ClassDef::builder("w")
                .update_method("poke", &[])
                .trigger(
                    "two",
                    true,
                    "relative(after poke, after poke)",
                    Action::Emit("fired".into()),
                )
                .build()
                .unwrap(),
        )
        .unwrap();
        let setup = db.begin();
        let obj = db.create_object(setup, "w", &[]).unwrap();
        db.activate_trigger(setup, obj, "two", &[]).unwrap();
        db.commit(setup).unwrap();
        db.take_output();

        // Random serial transactions; track committed pokes ourselves.
        let mut committed_pokes = 0u32;
        let mut expected_firings = 0u32;
        for _ in 0..rng.random_range(1..8) {
            let txn = db.begin();
            let pokes = rng.random_range(0..4);
            for _ in 0..pokes {
                db.call(txn, obj, "poke", &[]).unwrap();
            }
            if rng.random_bool(0.4) {
                db.abort(txn).unwrap();
            } else {
                db.commit(txn).unwrap();
                // each committed poke beyond the first fires the
                // (perpetual) trigger: relative(poke, poke) labels every
                // poke from the second onward.
                for _ in 0..pokes {
                    committed_pokes += 1;
                    if committed_pokes >= 2 {
                        expected_firings += 1;
                    }
                }
            }
        }
        let fired = db.output().iter().filter(|l| l.contains("fired")).count() as u32;
        // Provisional firings inside aborted transactions execute (their
        // data effects roll back, but the Emit log is diagnostics), so
        // the engine may log extra firings from aborted txns; committed
        // ones must match exactly. Recompute: filter output lines by the
        // txn that would have committed is intractable here, so assert
        // the lower bound and the post-state instead.
        assert!(
            fired >= expected_firings,
            "fired {fired} < {expected_firings}"
        );
        // The decisive check: after everything, post two committed pokes
        // and make sure the monitor state reflects only committed events.
        let probe = db.begin();
        db.take_output();
        db.call(probe, obj, "poke", &[]).unwrap();
        let fired_now = db.output().iter().any(|l| l.contains("fired"));
        db.commit(probe).unwrap();
        let should_fire_now = committed_pokes >= 1;
        assert_eq!(
            fired_now, should_fire_now,
            "committed_pokes={committed_pokes}"
        );
    }
}

/// Full-history monitoring counts aborted events; committed monitoring
/// does not. Drive both side by side.
#[test]
fn committed_and_full_history_modes_diverge_exactly_on_aborts() {
    let mut db = Database::new();
    db.define_class(
        ClassDef::builder("w")
            .update_method("poke", &[])
            .trigger(
                "committedTwo",
                true,
                "relative(after poke, after poke)",
                Action::Emit("committed-mode fired".into()),
            )
            .trigger(
                "fullTwo",
                true,
                "relative(after poke, after poke)",
                Action::Emit("full-mode fired".into()),
            )
            .full_history()
            .activate_on_create(&["committedTwo", "fullTwo"])
            .build()
            .unwrap(),
    )
    .unwrap();
    let setup = db.begin();
    let obj = db.create_object(setup, "w", &[]).unwrap();
    db.commit(setup).unwrap();

    // poke in an aborted txn
    let t1 = db.begin();
    db.call(t1, obj, "poke", &[]).unwrap();
    db.abort(t1).unwrap();
    db.take_output();

    // poke in a committed txn: full-history sees 2 pokes, committed sees 1
    let t2 = db.begin();
    db.call(t2, obj, "poke", &[]).unwrap();
    db.commit(t2).unwrap();
    assert!(db.output().iter().any(|l| l.contains("full-mode fired")));
    assert!(!db
        .output()
        .iter()
        .any(|l| l.contains("committed-mode fired")));

    // one more committed poke: now committed-mode fires too
    db.take_output();
    let t3 = db.begin();
    db.call(t3, obj, "poke", &[]).unwrap();
    db.commit(t3).unwrap();
    assert!(db
        .output()
        .iter()
        .any(|l| l.contains("committed-mode fired")));
}

/// The per-object record of history statuses matches the object-level
/// committed view used by tooling.
#[test]
fn object_history_statuses_reflect_txn_outcomes() {
    let mut db = Database::new();
    // A committed-history monitor keeps the engine recording the posted
    // history (classes with no reader skip the records entirely).
    db.define_class(
        ClassDef::builder("w")
            .update_method("poke", &[])
            .trigger("audit", true, "after tcommit", Action::Emit("c".into()))
            .activate_on_create(&["audit"])
            .build()
            .unwrap(),
    )
    .unwrap();
    let setup = db.begin();
    let obj: ObjectId = db.create_object(setup, "w", &[]).unwrap();
    db.commit(setup).unwrap();

    let t = db.begin_as(Value::Str("u".into()));
    db.call(t, obj, "poke", &[]).unwrap();
    db.abort(t).unwrap();

    let o = db.object(obj).unwrap();
    let committed = o.committed_history(None);
    assert!(
        committed
            .iter()
            .all(|r| !r.basic.to_string().contains("poke")),
        "aborted poke must be filtered from the committed view"
    );
    assert!(
        o.history
            .iter()
            .any(|r| r.basic.to_string().contains("poke")),
        "but it stays in the complete history"
    );
}
