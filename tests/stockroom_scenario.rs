//! Integration test of the paper's Section 3.5 stockroom: all eight
//! triggers, with the exact firing schedule asserted over a scripted
//! two-day workload.

use ode_core::event::calendar;
use ode_core::Value;
use ode_db::demo::{deposit_withdraw_txn, setup, withdraw_txn};
use ode_db::Database;

fn count(db: &Database, needle: &str) -> usize {
    db.output().iter().filter(|l| l.contains(needle)).count()
}

#[test]
fn t1_unauthorized_withdrawals_abort() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR);
    assert!(!withdraw_txn(&mut db, "mallory", room, "bolt", 10).unwrap());
    // state untouched
    assert_eq!(
        db.peek_field(room, "items").unwrap().member("bolt"),
        Some(&Value::Int(500))
    );
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 10).unwrap());
    assert_eq!(
        db.peek_field(room, "items").unwrap().member("bolt"),
        Some(&Value::Int(490))
    );
    assert_eq!(db.stats().txns_aborted, 1);
}

#[test]
fn t2_reorders_when_stock_falls_below_eoq() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR);
    // shim: 30 in stock, EOQ 10. Withdraw 25 -> 5 < 10 -> order.
    assert!(withdraw_txn(&mut db, "alice", room, "shim", 25).unwrap());
    assert_eq!(count(&db, "order("), 1);
    // T2 reactivated itself: the next below-EOQ withdrawal orders again.
    assert!(withdraw_txn(&mut db, "alice", room, "shim", 1).unwrap());
    assert_eq!(count(&db, "order("), 2);
    // bolt stays far above its EOQ: no order.
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 10).unwrap());
    assert_eq!(count(&db, "order("), 2);
}

#[test]
fn t3_day_end_summary_fires_daily() {
    let (mut db, _room) = setup();
    db.advance_clock_to(3 * calendar::DAY);
    assert_eq!(count(&db, "summary()"), 3);
}

#[test]
fn t4_reports_every_transaction_after_the_fifth_same_day() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR); // dayBegin
    for _ in 0..8 {
        assert!(withdraw_txn(&mut db, "alice", room, "bolt", 1).unwrap());
    }
    // transactions 6, 7, 8 of the day are reported
    assert_eq!(count(&db, "report()"), 3);

    // next day the count restarts
    db.take_output();
    db.advance_clock_to(calendar::DAY + 9 * calendar::HR);
    for _ in 0..5 {
        assert!(withdraw_txn(&mut db, "alice", room, "bolt", 1).unwrap());
    }
    assert_eq!(count(&db, "report()"), 0, "only 5 txns on day 2");
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 1).unwrap());
    assert_eq!(count(&db, "report()"), 1, "the 6th is reported");
}

#[test]
fn t5_updates_averages_every_five_accesses() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR);
    // Trigger actions are accesses too: `updateAverages` itself and the
    // `report()` calls T4 makes from the 6th commit onwards all count
    // toward T5's every-5 counter. Access tally:
    //   w1..w5            = accesses 1..5  -> fire #1 (uA = access 6)
    //   w6, report        = 7, 8
    //   w7, report        = 9, 10          -> fire #2 (uA = 11)
    //   w8, report        = 12, 13
    //   w9, report        = 14, 15         -> fire #3 (uA = 16)
    for _ in 0..5 {
        assert!(withdraw_txn(&mut db, "alice", room, "bolt", 1).unwrap());
    }
    assert_eq!(count(&db, "updateAverages()"), 1);
    for _ in 0..4 {
        assert!(withdraw_txn(&mut db, "alice", room, "bolt", 1).unwrap());
    }
    assert_eq!(count(&db, "updateAverages()"), 3);
}

#[test]
fn t6_logs_large_withdrawals_only() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR);
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 100).unwrap()); // not > 100
    assert_eq!(count(&db, "log()"), 0);
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 101).unwrap());
    assert_eq!(count(&db, "log()"), 1);
    assert!(withdraw_txn(&mut db, "bob", room, "bolt", 250).unwrap());
    assert_eq!(count(&db, "log()"), 2);
}

#[test]
fn t7_fifth_large_withdrawal_in_a_day_prints_summary() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR);
    for k in 0..5 {
        assert_eq!(count(&db, "summary()"), 0, "not before the 5th (k={k})");
        assert!(withdraw_txn(&mut db, "alice", room, "bolt", 150).unwrap());
    }
    assert_eq!(count(&db, "summary()"), 1);
    // the 6th large withdrawal does not re-fire (choose, not every)
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 150).unwrap());
    assert_eq!(count(&db, "summary()"), 1);

    // a new day restarts the count (fa relative to dayBegin); pass
    // through day 1's 17:00 first so T3's summary doesn't pollute the
    // day-2 tally.
    db.advance_clock_to(18 * calendar::HR);
    db.take_output();
    db.advance_clock_to(calendar::DAY + 9 * calendar::HR);
    for _ in 0..4 {
        assert!(withdraw_txn(&mut db, "alice", room, "bolt", 150).unwrap());
    }
    // day-2 summaries: only T3's day-end hasn't happened yet; T7 needs 5
    assert_eq!(count(&db, "summary()"), 0);
    assert!(withdraw_txn(&mut db, "alice", room, "bolt", 150).unwrap());
    assert_eq!(count(&db, "summary()"), 1);
}

#[test]
fn t8_deposit_immediately_followed_by_withdrawal() {
    let (mut db, room) = setup();
    db.advance_clock_to(9 * calendar::HR);
    // deposit and withdrawal in one transaction, adjacent: fires.
    assert!(deposit_withdraw_txn(&mut db, "alice", room, "shim", 2).unwrap());
    assert_eq!(count(&db, "printLog()"), 1);

    // separate transactions: the deposit's commit envelope events do not
    // break T8 (they are not in its alphabet), so adjacency holds across
    // transactions too — the paper's trigger is defined purely on the
    // deposit/withdraw logical events.
    db.take_output();
    let t = db.begin_as(Value::Str("alice".into()));
    db.call(
        t,
        room,
        "deposit",
        &[Value::Str("shim".into()), Value::Int(1)],
    )
    .unwrap();
    db.commit(t).unwrap();
    assert!(withdraw_txn(&mut db, "alice", room, "shim", 1).unwrap());
    assert_eq!(count(&db, "printLog()"), 1);

    // but an intervening deposit DOES break the "immediately" adjacency:
    db.take_output();
    let t = db.begin_as(Value::Str("alice".into()));
    db.call(
        t,
        room,
        "deposit",
        &[Value::Str("shim".into()), Value::Int(1)],
    )
    .unwrap();
    db.call(
        t,
        room,
        "deposit",
        &[Value::Str("shim".into()), Value::Int(1)],
    )
    .unwrap();
    db.commit(t).unwrap();
    // history ends …deposit, deposit; now withdraw: before-withdraw
    // follows after-deposit immediately -> fires
    assert!(withdraw_txn(&mut db, "alice", room, "shim", 1).unwrap());
    assert_eq!(count(&db, "printLog()"), 1);
}

#[test]
fn full_two_day_run_is_deterministic() {
    let run = || {
        let (mut db, room) = setup();
        db.advance_clock_to(9 * calendar::HR);
        let _ = withdraw_txn(&mut db, "mallory", room, "bolt", 10);
        for k in 0..7 {
            withdraw_txn(&mut db, "alice", room, "bolt", 20 + k).unwrap();
        }
        for _ in 0..5 {
            withdraw_txn(&mut db, "bob", room, "gear", 150).unwrap();
        }
        deposit_withdraw_txn(&mut db, "alice", room, "shim", 5).unwrap();
        withdraw_txn(&mut db, "bob", room, "shim", 28).unwrap();
        db.advance_clock_to(17 * calendar::HR);
        db.advance_clock_to(calendar::DAY + 17 * calendar::HR);
        db.output().to_vec()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the simulation must be deterministic");
    assert!(!a.is_empty());
}
