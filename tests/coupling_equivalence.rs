//! Section 7 equivalence: the paper's E-A *event encodings* of the
//! E-C-A coupling modes fire at exactly the phases an operational
//! E-C-A engine schedules — over committing transactions, aborting
//! transactions, and conditions that change value mid-transaction.

use std::cell::Cell;
use std::sync::Arc;

use ode_baselines::{Coupling, EcaEngine, EcaRule, Phase};
use ode_core::{
    BasicEvent, CompiledEvent, Detector, EventExpr, EventKind, MaskEnv, MaskExpr, Value,
};
use ode_db::coupling;

/// A mutable single-flag environment: the condition `armed`.
struct ArmedEnv {
    armed: Cell<bool>,
}

impl MaskEnv for ArmedEnv {
    fn param(&self, _: &str) -> Option<Value> {
        None
    }
    fn field(&self, name: &str) -> Option<Value> {
        (name == "armed").then(|| Value::Bool(self.armed.get()))
    }
    fn call(&self, _: &str, _: &[Value]) -> Option<Value> {
        None
    }
}

/// One step of a transaction script.
#[derive(Clone, Copy, Debug)]
enum Step {
    Begin,
    Poke,
    /// Change the condition's value.
    SetArmed(bool),
    Commit,
    Abort,
}

use Step::*;

/// Drive an E-A detector over the script; record the phases at which the
/// compiled coupling event occurs.
fn run_ea(expr: &EventExpr, script: &[Step]) -> Vec<Phase> {
    let env = ArmedEnv {
        armed: Cell::new(true),
    };
    let compiled = Arc::new(CompiledEvent::compile(expr).expect("compiles"));
    let mut d = Detector::new(compiled);
    d.activate(&env).unwrap();
    let mut phases = Vec::new();
    let mut post = |d: &mut Detector, ev: BasicEvent, phase: Phase| {
        if d.post(&ev, &[], &env).unwrap() {
            phases.push(phase);
        }
    };
    for step in script {
        match step {
            Begin => post(&mut d, BasicEvent::after(EventKind::TBegin), Phase::During),
            Poke => post(&mut d, BasicEvent::after_method("poke"), Phase::During),
            SetArmed(v) => env.armed.set(*v),
            Commit => {
                post(
                    &mut d,
                    BasicEvent::before(EventKind::TComplete),
                    Phase::BeforeCommit,
                );
                post(
                    &mut d,
                    BasicEvent::after(EventKind::TCommit),
                    Phase::AfterCommit,
                );
            }
            Abort => {
                post(
                    &mut d,
                    BasicEvent::after(EventKind::TAbort),
                    Phase::AfterAbort,
                );
            }
        }
    }
    phases.sort();
    phases.dedup();
    phases
}

/// Drive the operational E-C-A engine over the same script.
fn run_eca(ec: Coupling, ca: Coupling, script: &[Step]) -> Vec<Phase> {
    let env = ArmedEnv {
        armed: Cell::new(true),
    };
    let mut eng = EcaEngine::new(vec![EcaRule {
        name: "r".into(),
        event: EventExpr::after_method("poke"),
        condition: MaskExpr::name("armed"),
        ec,
        ca,
    }])
    .unwrap();
    eng.activate(&env).unwrap();
    for step in script {
        match step {
            Begin => {
                eng.begin();
                eng.post(&BasicEvent::after(EventKind::TBegin), &[], &env)
                    .unwrap();
            }
            Poke => eng
                .post(&BasicEvent::after_method("poke"), &[], &env)
                .unwrap(),
            SetArmed(v) => env.armed.set(*v),
            Commit => {
                eng.complete(&env).unwrap();
                eng.commit(&env).unwrap();
            }
            Abort => eng.abort(&env).unwrap(),
        }
    }
    let mut phases: Vec<Phase> = eng.firing_set().into_iter().map(|f| f.phase).collect();
    phases.sort();
    phases.dedup();
    phases
}

/// The mode-pair → encoding table from Section 7.
fn encodings() -> Vec<(Coupling, Coupling, ode_db::coupling::CouplingFn)> {
    vec![
        (
            Coupling::Immediate,
            Coupling::Immediate,
            coupling::immediate_immediate,
        ),
        (
            Coupling::Immediate,
            Coupling::Deferred,
            coupling::immediate_deferred,
        ),
        (
            Coupling::Immediate,
            Coupling::SeparateDependent,
            coupling::immediate_dependent,
        ),
        (
            Coupling::Immediate,
            Coupling::SeparateIndependent,
            coupling::immediate_independent,
        ),
        (
            Coupling::Deferred,
            Coupling::Immediate,
            coupling::deferred_immediate,
        ),
        (
            Coupling::Deferred,
            Coupling::Deferred,
            coupling::deferred_immediate, // the paper folds these together
        ),
        (
            Coupling::Deferred,
            Coupling::SeparateDependent,
            coupling::deferred_dependent,
        ),
        (
            Coupling::Deferred,
            Coupling::SeparateIndependent,
            coupling::deferred_independent,
        ),
        (
            Coupling::SeparateDependent,
            Coupling::Immediate,
            coupling::dependent_immediate,
        ),
        (
            Coupling::SeparateIndependent,
            Coupling::Immediate,
            coupling::independent_immediate,
        ),
    ]
}

fn scripts() -> Vec<(&'static str, Vec<Step>)> {
    vec![
        ("commit", vec![Begin, Poke, Commit]),
        ("abort", vec![Begin, Poke, Abort]),
        ("no-event-commit", vec![Begin, Commit]),
        (
            "disarm-before-commit",
            vec![Begin, Poke, SetArmed(false), Commit],
        ),
        (
            "disarm-before-abort",
            vec![Begin, Poke, SetArmed(false), Abort],
        ),
        ("two-txns", vec![Begin, Poke, Commit, Begin, Poke, Abort]),
        (
            "rearm-mid-txn",
            vec![Begin, SetArmed(false), Poke, SetArmed(true), Commit],
        ),
    ]
}

#[test]
fn ea_encodings_match_operational_eca_engine() {
    for (ec, ca, encode) in encodings() {
        for (label, script) in scripts() {
            // reset armed per run (scripts may end disarmed)
            let ea = run_ea(
                &encode(EventExpr::after_method("poke"), MaskExpr::name("armed")),
                &script,
            );
            let eca = run_eca(ec, ca, &script);
            assert_eq!(
                ea, eca,
                "coupling ({ec:?}, {ca:?}) diverges on script `{label}`:\n  E-A  fired {ea:?}\n  E-C-A fired {eca:?}"
            );
        }
    }
}

#[test]
fn condition_evaluation_time_differs_between_couplings() {
    // immediate EC: C read at the poke (armed) -> fires even though the
    // txn later disarms.
    let script = vec![Begin, Poke, SetArmed(false), Commit];
    let ea = run_ea(
        &coupling::immediate_deferred(EventExpr::after_method("poke"), MaskExpr::name("armed")),
        &script,
    );
    assert_eq!(ea, vec![Phase::BeforeCommit]);

    // deferred EC: C read at the commit point (disarmed) -> no firing.
    let ea = run_ea(
        &coupling::deferred_immediate(EventExpr::after_method("poke"), MaskExpr::name("armed")),
        &script,
    );
    assert!(ea.is_empty(), "{ea:?}");
}

#[test]
fn dependent_vs_independent_on_abort() {
    let script = vec![Begin, Poke, Abort];
    let dep = run_ea(
        &coupling::immediate_dependent(EventExpr::after_method("poke"), MaskExpr::name("armed")),
        &script,
    );
    assert!(dep.is_empty(), "dependent must not fire on abort: {dep:?}");
    let ind = run_ea(
        &coupling::immediate_independent(EventExpr::after_method("poke"), MaskExpr::name("armed")),
        &script,
    );
    assert_eq!(ind, vec![Phase::AfterAbort]);
}
