//! Property test for the class-level event router: the engine now
//! classifies each posted basic event **once per class** and fans
//! precomputed symbol remaps out to the relevant triggers. That fast
//! path must be observationally identical to the seed path — every
//! trigger running its own independent `Detector` over the object's
//! posted event stream.
//!
//! We build classes with random trigger subsets (mixed perpetual and
//! one-shot, parameterized masks included), drive them with random
//! call streams interleaved with activate/deactivate toggles, and
//! after every operation replay the freshly recorded history through
//! the per-trigger oracle detectors, comparing firing counts and
//! active flags at each step.

use std::sync::Arc;

use ode_core::{BasicEvent, Detector, EmptyEnv, Value};
use ode_db::{Action, ClassDef, Database};
use proptest::prelude::*;

/// Candidate trigger expressions over the class's three methods. Masks
/// read only event parameters, so the oracle can replay them with an
/// empty environment.
const POOL: &[&str] = &[
    "after m0",
    "before m1",
    "relative(after m0, after m1)",
    "after m0 | after m2",
    "after m0 & !after m1",
    "choose 2 (after m2)",
    "every 2 (after m1)",
    "after m2(i, q) && q > 100",
    "after m2(i, q) && q > 50",
    "after m1; after m2",
    "prior(after m0, after m2)",
];

/// One step of the simulated workload.
#[derive(Clone, Debug)]
enum Op {
    M0,
    M1,
    /// `m2(i, q)` with a random quantity (drives the parameter masks).
    M2(i64),
    /// Flip the activation of trigger `n % trigger_count`.
    Toggle(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::M0),
        Just(Op::M1),
        (0i64..200).prop_map(Op::M2),
        (0i64..200).prop_map(Op::M2),
        (0usize..16).prop_map(Op::Toggle),
    ]
}

/// The seed-path reference: one independent detector per trigger.
struct Oracle {
    det: Detector,
    active: bool,
    fired: u64,
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        ..ProptestConfig::default()
    })]

    #[test]
    fn router_matches_independent_per_trigger_detectors(
        picks in prop::collection::vec((0..POOL.len(), any::<bool>()), 1..=POOL.len()),
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        // -- class with the picked trigger subset ---------------------
        let mut builder = ClassDef::builder("acct")
            .update_method("m0", &[])
            .update_method("m1", &[])
            .update_method("m2", &["i", "q"])
            // Any registered mask function marks the class as
            // history-reading, which keeps the engine recording
            // `PostedRecord`s for the oracle replay below (classes with
            // no reader skip the records entirely).
            .mask_fn("unusedProbe", |_, _| Some(Value::Bool(true)));
        let mut names = Vec::new();
        for (i, &(p, perpetual)) in picks.iter().enumerate() {
            let name = format!("t{i}");
            builder = builder.trigger(
                name.clone(),
                perpetual,
                POOL[p],
                Action::Emit(format!("{name} fired")),
            );
            names.push(name);
        }
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let class_def = builder
            .activate_on_create(&name_refs)
            .build()
            .map_err(|e| TestCaseError::fail(format!("class build failed: {e}")))?;

        let mut db = Database::new();
        db.define_class(class_def).unwrap();
        let setup = db.begin();
        let obj = db.create_object(setup, "acct", &[]).unwrap();
        db.commit(setup).unwrap();

        // -- oracle: fresh per-trigger detectors ----------------------
        // The pool has no global (parameterless composite) masks, so
        // activation and replay need no field environment.
        let class = Arc::clone(db.class(db.object(obj).unwrap().class));
        let mut oracle: Vec<Oracle> = class
            .triggers
            .iter()
            .map(|t| {
                let mut det = Detector::new(Arc::clone(&t.event));
                det.activate(&EmptyEnv).unwrap();
                Oracle { det, active: true, fired: 0 }
            })
            .collect();
        // Skip the setup records (create / txn markers): they are
        // outside every pool alphabet, so neither side steps on them.
        let mut cursor = db.object(obj).unwrap().history.len();

        // -- random workload, lock-step comparison --------------------
        let txn = db.begin();
        for op in &ops {
            match op {
                Op::M0 => {
                    db.call(txn, obj, "m0", &[]).unwrap();
                }
                Op::M1 => {
                    db.call(txn, obj, "m1", &[]).unwrap();
                }
                Op::M2(q) => {
                    db.call(txn, obj, "m2", &[Value::Str("i".into()), Value::Int(*q)])
                        .unwrap();
                }
                Op::Toggle(n) => {
                    let i = n % oracle.len();
                    if oracle[i].active {
                        db.deactivate_trigger(txn, obj, &names[i]).unwrap();
                        oracle[i].active = false;
                    } else {
                        db.activate_trigger(txn, obj, &names[i], &[]).unwrap();
                        let mut det = Detector::new(Arc::clone(&class.triggers[i].event));
                        det.activate(&EmptyEnv).unwrap();
                        oracle[i].det = det;
                        oracle[i].active = true;
                    }
                }
            }

            // Replay whatever this operation appended to the history.
            let fresh: Vec<(BasicEvent, Vec<Value>)> = {
                let o = db.object(obj).unwrap();
                let recs = o.history[cursor..]
                    .iter()
                    .map(|r| (r.basic.clone(), r.args.clone()))
                    .collect();
                cursor = o.history.len();
                recs
            };
            for (basic, args) in &fresh {
                for (i, orc) in oracle.iter_mut().enumerate() {
                    if !orc.active {
                        continue;
                    }
                    if orc.det.post(basic, args, &EmptyEnv).unwrap() {
                        orc.fired += 1;
                        if !class.triggers[i].perpetual {
                            orc.active = false;
                        }
                    }
                }
            }

            // Compare every trigger after every operation.
            let o = db.object(obj).unwrap();
            for (i, orc) in oracle.iter().enumerate() {
                let inst = o.trigger_instance(i).unwrap();
                prop_assert_eq!(
                    inst.active,
                    orc.active,
                    "active flag diverged: trigger {} (`{}`) after {:?}",
                    i,
                    POOL[picks[i].0],
                    op
                );
                prop_assert_eq!(
                    inst.fired,
                    orc.fired,
                    "firing count diverged: trigger {} (`{}`) after {:?}",
                    i,
                    POOL[picks[i].0],
                    op
                );
            }
        }
        db.commit(txn).unwrap();
    }
}
