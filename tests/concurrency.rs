//! Concurrency stress test: object-level locking (the paper's Section 6
//! assumption) under real threads.
//!
//! The engine is single-writer (`&mut Database`), so threads coordinate
//! through a mutex — but transactions stay open *across* lock releases,
//! so transactions genuinely interleave and contend for object locks.
//! The test checks that lock conflicts are reported (never silently
//! interleaved), that aborted increments leave no trace, and that the
//! final counter equals exactly the number of committed increments.

use std::sync::Mutex;

use ode_core::Value;
use ode_db::{Action, ClassDef, Database, MethodKind, ObjectId, OdeError};

fn counter_class() -> ClassDef {
    ClassDef::builder("counter")
        .field("n", 0i64)
        .method("incr", MethodKind::Update, &[], |ctx| {
            let n = ctx.get_required("n")?.as_int().unwrap_or(0);
            ctx.set("n", n + 1);
            Ok(Value::Null)
        })
        .trigger(
            "every10",
            true,
            "every 10 (after incr)",
            Action::Emit("decade".into()),
        )
        .activate_on_create(&["every10"])
        .build()
        .unwrap()
}

#[test]
fn interleaved_transactions_respect_object_locks() {
    let mut db = Database::new();
    db.define_class(counter_class()).unwrap();
    let setup = db.begin();
    let objs: Vec<ObjectId> = (0..4)
        .map(|_| db.create_object(setup, "counter", &[]).unwrap())
        .collect();
    db.commit(setup).unwrap();

    let db = Mutex::new(db);
    let committed = Mutex::new(vec![0i64; objs.len()]);
    let conflicts = Mutex::new(0u64);

    crossbeam::scope(|s| {
        for t in 0..8 {
            let db = &db;
            let committed = &committed;
            let conflicts = &conflicts;
            let objs = &objs;
            s.spawn(move |_| {
                let mut rng = t as u64; // cheap xorshift seed
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                for _ in 0..50 {
                    let obj_idx = (next() % objs.len() as u64) as usize;
                    let obj = objs[obj_idx];
                    // begin while holding the engine lock
                    let txn = db.lock().unwrap().begin();
                    // interleave: release the engine between operations
                    std::thread::yield_now();
                    let call = db.lock().unwrap().call(txn, obj, "incr", &[]);
                    match call {
                        Ok(_) => {
                            std::thread::yield_now();
                            let commit_or_abort = next() % 4 != 0;
                            if commit_or_abort {
                                db.lock().unwrap().commit(txn).unwrap();
                                committed.lock().unwrap()[obj_idx] += 1;
                            } else {
                                db.lock().unwrap().abort(txn).unwrap();
                            }
                        }
                        Err(OdeError::LockConflict { .. }) => {
                            *conflicts.lock().unwrap() += 1;
                            let _ = db.lock().unwrap().abort(txn);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    })
    .unwrap();

    let db = db.into_inner().unwrap();
    let committed = committed.into_inner().unwrap();
    for (i, obj) in objs.iter().enumerate() {
        assert_eq!(
            db.peek_field(*obj, "n"),
            Some(Value::Int(committed[i])),
            "object {i}: committed increments must equal the final counter"
        );
    }
    // With 8 threads × 50 attempts over 4 objects and yields in between,
    // at least some lock conflicts must have been observed (the locks
    // are doing something). This is probabilistic but overwhelmingly so.
    let total: i64 = committed.iter().sum();
    let conflicts = conflicts.into_inner().unwrap();
    assert!(total > 0, "some transactions must commit");
    eprintln!("committed {total} increments, observed {conflicts} lock conflicts");

    // The perpetual every-10 trigger counted only committed increments.
    let decades: usize = db.output().iter().filter(|l| l.contains("decade")).count();
    let expected: usize = committed.iter().map(|&c| (c / 10) as usize).sum();
    // Counting-trigger firings inside aborted txns also log; committed
    // count is a lower bound and the exact committed tally must hold on
    // the monitor state, which the per-object counters above verify.
    assert!(
        decades >= expected,
        "decades {decades} < expected {expected}"
    );
}
