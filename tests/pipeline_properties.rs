//! Property-based tests over the whole specification→detection pipeline:
//!
//! * **Semantics ⟺ automaton** — for random event expressions and random
//!   event streams (with masked, parameterized events and composite
//!   masks over mutable state), the naive reference detector (full
//!   Section 4 re-evaluation) and the compiled one-word automaton
//!   detector agree at every point.
//! * **Print/parse round trip** — `parse(display(e)) == e`.
//! * **Compilation is total and minimal** — every generated expression
//!   compiles; minimization is idempotent on the result.

use std::cell::Cell;
use std::sync::Arc;

use ode_baselines::NaiveDetector;
use ode_core::{
    parse_event, BasicEvent, CompiledEvent, Detector, EventExpr, LogicalEvent, MaskEnv, MaskExpr,
    TimeSpec, Value,
};
use proptest::prelude::*;

/// Leaf logical events: three plain methods, one masked/parameterized
/// method, a time event.
fn leaf() -> impl Strategy<Value = EventExpr> {
    prop_oneof![
        Just(EventExpr::after_method("a")),
        Just(EventExpr::before_method("a")),
        Just(EventExpr::after_method("b")),
        Just(EventExpr::after_method("c")),
        Just(EventExpr::Logical(
            LogicalEvent::bare(BasicEvent::after_method("w"))
                .with_params(["i", "q"])
                .with_mask(MaskExpr::gt("q", 50i64)),
        )),
        Just(EventExpr::Logical(
            LogicalEvent::bare(BasicEvent::after_method("w"))
                .with_params(["i", "q"])
                .with_mask(MaskExpr::gt("q", 100i64)),
        )),
        Just(EventExpr::basic(BasicEvent::Time(ode_core::TimeEvent::At(
            TimeSpec::at_hour(9)
        )))),
    ]
}

fn expr_strategy() -> impl Strategy<Value = EventExpr> {
    leaf().prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            inner.clone().prop_map(EventExpr::not),
            prop::collection::vec(inner.clone(), 2..4).prop_map(EventExpr::Relative),
            inner.clone().prop_map(EventExpr::relative_plus),
            (1u32..4, inner.clone()).prop_map(|(n, e)| e.relative_n(n)),
            prop::collection::vec(inner.clone(), 2..4).prop_map(EventExpr::Prior),
            (1u32..4, inner.clone()).prop_map(|(n, e)| e.prior_n(n)),
            prop::collection::vec(inner.clone(), 2..4).prop_map(EventExpr::Sequence),
            (1u32..4, inner.clone()).prop_map(|(n, e)| e.sequence_n(n)),
            (1u32..5, inner.clone()).prop_map(|(n, e)| e.choose(n)),
            (1u32..5, inner.clone()).prop_map(|(n, e)| e.every(n)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| EventExpr::fa(a, b, c)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| EventExpr::fa_abs(a, b, c)),
            inner
                .clone()
                .prop_map(|e| e.masked(MaskExpr::lt("level", 3i64))),
        ]
    })
}

/// A posted step in the simulated stream.
#[derive(Clone, Debug)]
enum Op {
    A(bool), // after/before a
    B,
    C,
    W(i64),     // withdraw with quantity (drives the q-masks)
    Level(i64), // change the field the composite mask reads
    Nine,       // the 9 o'clock time event
    Unrelated,  // an event outside every alphabet
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<bool>().prop_map(Op::A),
        Just(Op::B),
        Just(Op::C),
        (0i64..200).prop_map(Op::W),
        (0i64..6).prop_map(Op::Level),
        Just(Op::Nine),
        Just(Op::Unrelated),
    ]
}

struct LevelEnv {
    level: Cell<i64>,
}

impl MaskEnv for LevelEnv {
    fn param(&self, _: &str) -> Option<Value> {
        None
    }
    fn field(&self, name: &str) -> Option<Value> {
        (name == "level").then(|| Value::Int(self.level.get()))
    }
    fn call(&self, _: &str, _: &[Value]) -> Option<Value> {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The central pipeline property: reference semantics == automaton.
    #[test]
    fn naive_and_automaton_detectors_agree(
        expr in expr_strategy(),
        ops in prop::collection::vec(op_strategy(), 0..30),
    ) {
        let compiled = match CompiledEvent::compile(&expr) {
            Ok(c) => Arc::new(c),
            Err(e) => return Err(TestCaseError::fail(format!("compile failed: {e}"))),
        };
        let env = LevelEnv { level: Cell::new(0) };
        let mut naive = NaiveDetector::from_compiled(Arc::clone(&compiled), &expr).unwrap();
        let mut auto = Detector::new(compiled);
        naive.activate(&env).unwrap();
        auto.activate(&env).unwrap();

        for (i, op) in ops.iter().enumerate() {
            let (basic, args): (BasicEvent, Vec<Value>) = match op {
                Op::A(true) => (BasicEvent::after_method("a"), vec![]),
                Op::A(false) => (BasicEvent::before_method("a"), vec![]),
                Op::B => (BasicEvent::after_method("b"), vec![]),
                Op::C => (BasicEvent::after_method("c"), vec![]),
                Op::W(q) => (
                    BasicEvent::after_method("w"),
                    vec![Value::Null, Value::Int(*q)],
                ),
                Op::Level(l) => {
                    env.level.set(*l);
                    continue;
                }
                Op::Nine => (
                    BasicEvent::Time(ode_core::TimeEvent::At(TimeSpec::at_hour(9))),
                    vec![],
                ),
                Op::Unrelated => (BasicEvent::after_method("zzz"), vec![]),
            };
            let n = naive.post(&basic, &args, &env).unwrap();
            let a = auto.post(&basic, &args, &env).unwrap();
            prop_assert_eq!(
                n, a,
                "disagreement at step {} ({:?}) for `{}`", i, op, expr
            );
        }
    }

    /// Pretty-printing an expression and re-parsing it yields the same
    /// AST.
    #[test]
    fn print_parse_round_trip(expr in expr_strategy()) {
        let printed = expr.to_string();
        let reparsed = parse_event(&printed)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{printed}` failed: {e}")))?;
        prop_assert_eq!(reparsed, expr, "round trip changed `{}`", printed);
    }

    /// Compilation is total on validated expressions and minimization is
    /// a fixpoint.
    #[test]
    fn compilation_is_total_and_minimal(expr in expr_strategy()) {
        let compiled = CompiledEvent::compile(&expr)
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        let dfa = compiled.dfa();
        let re_min = ode_automata::minimize(dfa);
        prop_assert_eq!(re_min.num_states(), dfa.num_states());
        prop_assert!(re_min.equivalent(dfa));
    }

    /// The algebraic simplifier preserves the occurrence language on
    /// arbitrary expressions.
    #[test]
    fn simplify_preserves_language(expr in expr_strategy()) {
        let simplified = ode_core::simplify(&expr);
        prop_assert!(simplified.size() <= expr.size());
        let alphabet = ode_core::Alphabet::build(&expr)
            .map_err(|e| TestCaseError::fail(format!("alphabet failed: {e}")))?;
        let c1 = CompiledEvent::compile_with_alphabet(&expr, alphabet.clone())
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        let c2 = CompiledEvent::compile_with_alphabet(&simplified, alphabet)
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        prop_assert!(
            c1.dfa().equivalent(c2.dfa()),
            "simplify changed `{}` -> `{}`", expr, simplified
        );
    }

    /// The automaton state is always a single word regardless of the
    /// expression; only the shared table grows.
    #[test]
    fn monitoring_state_is_one_word(expr in expr_strategy()) {
        let compiled = CompiledEvent::compile(&expr)
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        let d = Detector::new(Arc::new(compiled));
        prop_assert_eq!(std::mem::size_of_val(&d.state()), 4);
    }
}
