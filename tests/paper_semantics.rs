//! The paper's own worked semantic examples, checked end to end through
//! parse → compile → detect.

use std::sync::Arc;

use ode_core::{parse_event, BasicEvent, CompiledEvent, Detector, EmptyEnv, Value};

/// Run a spec over a stream of `(method, Option<q>)` postings; return
/// the 0-based indices at which the composite event occurred.
fn occurrences_of(spec: &str, stream: &[(&str, Option<i64>)]) -> Vec<usize> {
    let expr = parse_event(spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
    let compiled = Arc::new(CompiledEvent::compile(&expr).unwrap());
    let mut d = Detector::new(compiled);
    d.activate(&EmptyEnv).unwrap();
    let mut out = Vec::new();
    for (i, (m, q)) in stream.iter().enumerate() {
        use ode_core::EventKind;
        let kind_of = |name: &str| match name {
            "update" => EventKind::Update,
            "read" => EventKind::Read,
            "access" => EventKind::Access,
            other => EventKind::Method(other.to_string()),
        };
        let (ev, args) = match *m {
            "tbegin" => (BasicEvent::after(EventKind::TBegin), vec![]),
            "tcommit" => (BasicEvent::after(EventKind::TCommit), vec![]),
            "tabort" => (BasicEvent::after(EventKind::TAbort), vec![]),
            "tcomplete" => (BasicEvent::before(EventKind::TComplete), vec![]),
            name if name.starts_with("before ") => (
                BasicEvent::before(kind_of(name.trim_start_matches("before "))),
                vec![],
            ),
            name => {
                let args = q
                    .map(|v| vec![Value::Null, Value::Int(v)])
                    .unwrap_or_default();
                (BasicEvent::after(kind_of(name)), args)
            }
        };
        if d.post(&ev, &args, &EmptyEnv).unwrap() {
            out.push(i);
        }
    }
    out
}

/// §3.4: the discriminating example for `prior` vs `relative` over the
/// history `F1 E1 E2 F2` with `E = relative(E1, E2)`, `F = relative(F1,
/// F2)`: `prior(E, F)` occurs at F2 but `relative(E, F)` does not.
#[test]
fn prior_vs_relative_paper_example() {
    let stream = [("f1", None), ("e1", None), ("e2", None), ("f2", None)];
    let prior = "prior(relative(after e1, after e2), relative(after f1, after f2))";
    assert_eq!(occurrences_of(prior, &stream), vec![3]);
    let relative = "relative(relative(after e1, after e2), relative(after f1, after f2))";
    assert_eq!(occurrences_of(relative, &stream), Vec::<usize>::new());
    // …and when the sequence is E1 E2 F1 F2, both occur.
    let stream2 = [("e1", None), ("e2", None), ("f1", None), ("f2", None)];
    assert_eq!(occurrences_of(prior, &stream2), vec![3]);
    assert_eq!(occurrences_of(relative, &stream2), vec![3]);
}

/// §3.4: `relative 5 (after deposit)` — the fifth and any subsequent
/// deposits.
#[test]
fn relative_five_deposits() {
    let stream: Vec<(&str, Option<i64>)> = (0..8).map(|_| ("deposit", None)).collect();
    assert_eq!(
        occurrences_of("relative 5 (after deposit)", &stream),
        vec![4, 5, 6, 7]
    );
}

/// §3.4: `choose 5 (after tcommit)` — posted by the commit of the fifth
/// transaction, and only that one.
#[test]
fn choose_five_commits() {
    let stream: Vec<(&str, Option<i64>)> = (0..8).map(|_| ("tcommit", None)).collect();
    assert_eq!(occurrences_of("choose 5 (after tcommit)", &stream), vec![4]);
}

/// §3.4: `every 5 (after tcommit)` — the 5th, 10th, 15th, ….
#[test]
fn every_five_commits() {
    let stream: Vec<(&str, Option<i64>)> = (0..15).map(|_| ("tcommit", None)).collect();
    assert_eq!(
        occurrences_of("every 5 (after tcommit)", &stream),
        vec![4, 9, 14]
    );
}

/// §3.4: the fa example — "the commit of a transaction that updated an
/// object, since there are no intervening aborts or commits after the
/// tbegin".
#[test]
fn fa_commit_of_updating_transaction() {
    let spec = "fa(after tbegin, prior(after update, after tcommit), \
                (after tcommit | after tabort))";
    // txn that updates and commits: fires at the tcommit.
    let s1 = [("tbegin", None), ("update", None), ("tcommit", None)];
    assert_eq!(occurrences_of(spec, &s1), vec![2]);
    // txn that updates and aborts: no commit, no firing.
    let s2 = [("tbegin", None), ("update", None), ("tabort", None)];
    assert_eq!(occurrences_of(spec, &s2), Vec::<usize>::new());
    // txn that commits WITHOUT updating: prior(update, tcommit) never
    // holds, no firing.
    let s3 = [("tbegin", None), ("tcommit", None)];
    assert_eq!(occurrences_of(spec, &s3), Vec::<usize>::new());
}

/// §3.3: the sequence example — "a transaction attempting to commit
/// after accessing an object, and causing no other events to be posted
/// to the object".
#[test]
fn sequence_of_transaction_envelope() {
    let spec = "sequence(after tbegin, before access, after access, before tcomplete)";
    let expr_alt = "after tbegin; before access; after access; before tcomplete";
    for s in [spec, expr_alt] {
        let fires = occurrences_of(
            s,
            &[
                ("tbegin", None),
                ("before access", None),
                ("access", None),
                ("tcomplete", None),
            ],
        );
        assert_eq!(fires, vec![3], "{s}");
        // a second access in between breaks the adjacency
        let no = occurrences_of(
            s,
            &[
                ("tbegin", None),
                ("before access", None),
                ("access", None),
                ("before access", None),
                ("access", None),
                ("tcomplete", None),
            ],
        );
        assert_eq!(no, Vec::<usize>::new(), "{s}");
    }
}

/// §3.2: the "large withdrawal" mask.
#[test]
fn large_withdrawal_mask() {
    let spec = "after withdraw(Item i, int q) && q > 1000";
    let stream = [
        ("withdraw", Some(500)),
        ("withdraw", Some(1500)),
        ("withdraw", Some(1000)),
        ("withdraw", Some(1001)),
    ];
    assert_eq!(occurrences_of(spec, &stream), vec![1, 3]);
}

/// §3.3: `!deposit` is shorthand for `!(before deposit | after deposit)`.
/// Complement is judged against the trigger's own alphabet ("for each
/// active trigger for which a logical event has occurred, we move the
/// automaton" — §5), so the expression must mention the other events
/// for them to be visible points.
#[test]
fn method_shorthand_negation() {
    let a = parse_event("!deposit").unwrap();
    let b = parse_event("!(before deposit | after deposit)").unwrap();
    assert_eq!(a, b);
    // with `after audit` in the alphabet, !deposit labels the audit point
    let stream = [("deposit", None), ("audit", None), ("deposit", None)];
    assert_eq!(
        occurrences_of("!deposit & (after audit | after deposit)", &stream),
        vec![1]
    );
    // alone, every visible point IS a deposit event: never occurs
    assert_eq!(occurrences_of("!deposit", &stream), Vec::<usize>::new());
}

/// Footnote 3/§5: disjointness — two masked variants of the same basic
/// event land on disjoint minterm symbols, so a single posting advances
/// the automaton exactly once.
#[test]
fn overlapping_masks_are_rewritten_disjointly() {
    let spec = "sequence(after withdraw(i, q) && q > 10, after withdraw(i, q) && q > 100)";
    // q=500 satisfies both masks at once — but it is ONE point; the
    // sequence needs two separate withdrawals.
    let one = occurrences_of(spec, &[("withdraw", Some(500))]);
    assert_eq!(one, Vec::<usize>::new());
    let two = occurrences_of(spec, &[("withdraw", Some(50)), ("withdraw", Some(500))]);
    assert_eq!(two, vec![1]);
}

/// Footnote 4: `relative(E, E)` for the self-referential
/// `E = F & !prior(F, F)` occurs at the second F but not the first.
#[test]
fn footnote_four_self_reference() {
    let spec = "relative(after f & !prior(after f, after f), \
                after f & !prior(after f, after f))";
    let stream = [("f", None), ("f", None)];
    assert_eq!(occurrences_of(spec, &stream), vec![1]);
    let inner = "after f & !prior(after f, after f)";
    assert_eq!(occurrences_of(inner, &stream), vec![0]);
}

/// §4: `prior(E)` ≡ `relative(E)` ≡ `sequence(E)` ≡ `E` for singleton
/// argument lists.
#[test]
fn singleton_operator_identity() {
    let base = CompiledEvent::compile(&parse_event("after a").unwrap()).unwrap();
    for wrapped in ["prior(after a)", "relative(after a)", "sequence(after a)"] {
        let c = CompiledEvent::compile(&parse_event(wrapped).unwrap()).unwrap();
        assert!(c.dfa().equivalent(base.dfa()), "{wrapped}");
    }
}

/// §3.4: curried operators — `prior(E, F, G)` ≡ `prior(prior(E, F), G)`.
#[test]
fn curried_operators_fold_left() {
    for (curried, nested) in [
        (
            "prior(after a, after b, after c)",
            "prior(prior(after a, after b), after c)",
        ),
        (
            "relative(after a, after b, after c)",
            "relative(relative(after a, after b), after c)",
        ),
    ] {
        let c1 = CompiledEvent::compile(&parse_event(curried).unwrap()).unwrap();
        let c2 = CompiledEvent::compile(&parse_event(nested).unwrap()).unwrap();
        assert!(c1.dfa().equivalent(c2.dfa()), "{curried} vs {nested}");
    }
}

/// §3.4: `prior+(E) ≡ E` and `sequence+(E) ≡ E` — which is why the
/// parser rejects the forms; verify the law that justifies it.
#[test]
fn plus_laws_for_prior_and_sequence() {
    let e_src = "relative(after a, after b)";
    let e = CompiledEvent::compile(&parse_event(e_src).unwrap()).unwrap();
    // prior(E, E) | E ≡ E (each further disjunct is a specialization)
    let pe = CompiledEvent::compile(
        &parse_event(&format!("prior({e_src}, {e_src}) | {e_src}")).unwrap(),
    )
    .unwrap();
    assert!(pe.dfa().equivalent(e.dfa()));
    let se = CompiledEvent::compile(
        &parse_event(&format!("sequence({e_src}, {e_src}) | {e_src}")).unwrap(),
    )
    .unwrap();
    assert!(se.dfa().equivalent(e.dfa()));
    // relative+ genuinely adds power: for E = choose 1 (after a), E is
    // "the first a" but relative+(E) is "every a".
    let first = CompiledEvent::compile(&parse_event("choose 1 (after a)").unwrap()).unwrap();
    let chained =
        CompiledEvent::compile(&parse_event("relative+(choose 1 (after a))").unwrap()).unwrap();
    assert!(!chained.dfa().equivalent(first.dfa()));
    let every_a = CompiledEvent::compile(&parse_event("after a").unwrap()).unwrap();
    assert!(chained.dfa().equivalent(every_a.dfa()));
}
